//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the proptest 1.x API its tests use: the [`Strategy`] trait
//! with [`Strategy::prop_map`], range / tuple / [`collection::vec`] /
//! [`any`] strategies, the [`prop_oneof!`] union, and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   ordinary `assert!` panic message instead of a minimized counterexample;
//! * **fixed seeding** — each test function derives its case seeds from a
//!   constant, so runs are fully deterministic (CI-friendly) rather than
//!   OS-entropy seeded;
//! * `.proptest-regressions` files are ignored.

pub use rand;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps simulator-heavy properties quick
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe façade over [`Strategy`], used by [`prop_oneof!`].
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut SmallRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy for the full domain of `T`; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Weighted-equal union of strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate_dyn(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Derives the per-case RNG for `(test hash, case index)`.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Asserts a property holds (plain `assert!` under the hood — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (plain `assert_eq!` — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::DynStrategy<_>>),+])
    };
}

/// Defines property tests: each `fn` runs its body over random inputs drawn
/// from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            (a, b) in (0u64..10, 0.0f64..1.0),
            v in crate::collection::vec(1usize..5, 2..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (1..5).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..5).prop_map(u64::from),
            (10u32..15).prop_map(u64::from),
        ]) {
            prop_assert!(x < 5u64 || (10u64..15).contains(&x));
        }

        #[test]
        fn any_generates(flag in any::<bool>(), word in any::<u16>()) {
            let _ = flag;
            prop_assert_eq!(u32::from(word) >> 16, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
