//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API surface the workspace's benches use — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`] — backed by a simple warm-up + timed-batch loop that prints
//! mean per-iteration time. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (forwarding to
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let (value, unit) = scale_ns(b.mean_ns);
        println!("{:<50} time: {value:>9.3} {unit}  ({} iters)", name.to_string(), b.iters);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, prefix: name.to_string() }
    }
}

fn scale_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.to_string());
        self.c.bench_function(full, f);
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to drive the timing loop.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called repeatedly: a warm-up phase sizes the batch, then
    /// `sample_size` timed batches run within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to size the timed batches.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let batch = ((per_sample / per_iter).round() as u64).max(1);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let sampling = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += t0.elapsed().as_nanos() as f64;
            total_iters += batch;
            if sampling.elapsed() > self.budget * 2 {
                break; // budget blown (slow target) — report what we have
            }
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
