//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`rngs::SmallRng`] (xoshiro256++, the same generator family the real
//! `SmallRng` uses on 64-bit targets), [`SeedableRng::seed_from_u64`]
//! (SplitMix64 expansion, as in `rand_core`), [`Rng::gen_range`] /
//! [`Rng::gen_bool`] / [`Rng::gen`], and [`seq::SliceRandom`] (Fisher–Yates
//! `shuffle`, `choose`).
//!
//! Streams are deterministic for a given seed, which is all the simulator
//! requires; they are *not* bit-compatible with the real crate.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random generators and samplers over [`RngCore`] sources.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open / inclusive ranges.
///
/// Mirrors real rand's single blanket `SampleRange` impl so a literal range
/// like `0.0..1.0` unifies its element type with `gen_range`'s return type
/// (float-literal fallback to `f64` then applies).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the simulations can observe.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64) + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(lo as f64, hi as f64, rng) as f32
    }
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related randomness: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_is_covered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u = rng.gen_range(0.0f64..1.0);
            if u < 0.1 {
                lo = true;
            }
            if u > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "samples never reached the interval edges");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
