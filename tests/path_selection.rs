//! Reproduces the paper's §II critique of energy-aware *path selection*
//! (Pluntke et al.; eMPTCP): restricting MPTCP to the cheapest path saves
//! device energy but forfeits the aggregation benefit — the motivation for
//! doing energy awareness inside congestion control instead.

use congestion::AlgorithmKind;
use mptcp_energy::path_select::{run_wireless_with_policy, PathPolicy};
use mptcp_energy::scenarios::{run_wireless, CcChoice, WirelessOptions};

fn opts() -> WirelessOptions {
    WirelessOptions { duration_s: 40.0, ..WirelessOptions::default() }
}

#[test]
fn cheapest_only_selection_saves_energy_but_loses_aggregation() {
    let lia = CcChoice::Base(AlgorithmKind::Lia);
    let mptcp = run_wireless(&lia, &opts());
    let selected = run_wireless_with_policy(&lia, &opts(), PathPolicy::CheapestOnly);
    // The selector saves power (one radio instead of two)...
    assert!(
        selected.energy.mean_power_w < mptcp.energy.mean_power_w,
        "selector power {} should undercut MPTCP {}",
        selected.energy.mean_power_w,
        mptcp.energy.mean_power_w
    );
    // ...but throws away the second path's throughput (the paper's point).
    assert!(
        selected.goodput_bps < 0.85 * mptcp.goodput_bps,
        "selector goodput {} vs MPTCP {}",
        selected.goodput_bps,
        mptcp.goodput_bps
    );
}

#[test]
fn all_paths_policy_is_plain_mptcp() {
    let lia = CcChoice::Base(AlgorithmKind::Lia);
    let plain = run_wireless(&lia, &opts());
    let all = run_wireless_with_policy(&lia, &opts(), PathPolicy::AllPaths);
    assert_eq!(plain.rexmits, all.rexmits);
    assert!((plain.goodput_bps - all.goodput_bps).abs() < 1.0);
    assert!((plain.energy.joules - all.energy.joules).abs() < 1e-6);
}

#[test]
fn dts_keeps_aggregation_while_approaching_selector_energy() {
    // The paper's pitch: congestion-control-level energy awareness (DTS-Φ)
    // should land between plain MPTCP and the path selector — most of the
    // selector's energy saving, much more of MPTCP's throughput.
    let lia = run_wireless(&CcChoice::Base(AlgorithmKind::Lia), &opts());
    let phi = run_wireless(&CcChoice::dts_phi(), &opts());
    let selector = run_wireless_with_policy(
        &CcChoice::Base(AlgorithmKind::Lia),
        &opts(),
        PathPolicy::CheapestOnly,
    );
    assert!(
        phi.goodput_bps > selector.goodput_bps,
        "DTS-Φ throughput {} must beat the selector's {}",
        phi.goodput_bps,
        selector.goodput_bps
    );
    // Energy-per-bit ordering: selector ≤ DTS-Φ ≤ LIA (tolerances for noise).
    let jpb = |r: &mptcp_energy::scenarios::FlowResult| r.energy.joules / (r.goodput_bps + 1.0);
    assert!(jpb(&phi) <= jpb(&lia) * 1.05, "phi {} lia {}", jpb(&phi), jpb(&lia));
}
