//! Pins the sweep runner's central guarantee: running the same cells with
//! `--jobs 1` and `--jobs 8` yields *byte-identical* summaries, including
//! their order. Each cell owns a whole `Simulator`, so thread scheduling can
//! decide only *when* a cell runs, never *what* it computes.
//!
//! Comparison is on `format!("{:?}")` of the full result vector: `f64`'s
//! `Debug` is the shortest round-trip representation, so two outputs render
//! identically iff every float is bit-equal.

use bench_harness::runner::{run_sweep_jobs, RunSummary, SweepCell};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{
    run_two_path_bursty, run_two_path_bursty_traced, BurstyOptions, CcChoice, FlowResult,
};
use netsim::{EngineConfig, QueueKind};
use obs::TraceEvent;
use std::sync::{Arc, Mutex};

fn cells(seeds: &[u64]) -> Vec<SweepCell<'static, FlowResult>> {
    let choices = [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()];
    seeds
        .iter()
        .flat_map(|&seed| {
            choices.into_iter().map(move |cc| {
                let opts = BurstyOptions {
                    seed,
                    transfer_bytes: Some(2_000_000),
                    duration_s: 60.0,
                    ..BurstyOptions::default()
                };
                SweepCell::new(format!("{}-seed{}", cc.label(), seed), seed, move || {
                    run_two_path_bursty(&cc, &opts)
                })
            })
        })
        .collect()
}

fn render(results: &[RunSummary<FlowResult>]) -> String {
    format!("{results:?}")
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let seeds = [1u64, 2, 3];
    let serial = run_sweep_jobs(cells(&seeds), 1);
    let parallel = run_sweep_jobs(cells(&seeds), 8);
    assert_eq!(serial.len(), parallel.len());
    // Labels come back in input order under both job counts.
    let labels: Vec<&str> = serial.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, parallel.iter().map(|r| r.label.as_str()).collect::<Vec<_>>());
    assert_eq!(
        render(&serial),
        render(&parallel),
        "jobs=1 and jobs=8 sweeps must produce byte-identical summaries"
    );
    // And the runs themselves must have done real work.
    for r in &serial {
        assert!(r.output.finish_s.is_some(), "{}: transfer did not finish", r.label);
    }
}

/// The second half of the determinism contract: installing a trace sink must
/// not perturb the simulation. Sinks only observe — they never consume RNG
/// draws or schedule events — so a traced run's `FlowResult` renders
/// byte-identical to the untraced run's.
#[test]
fn tracing_on_and_off_are_byte_identical() {
    let opts = BurstyOptions {
        seed: 11,
        transfer_bytes: Some(2_000_000),
        duration_s: 60.0,
        ..BurstyOptions::default()
    };
    for cc in [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()] {
        let untraced = run_two_path_bursty(&cc, &opts);
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let (traced, counters) =
            run_two_path_bursty_traced(&cc, &opts, Some(Box::new(events.clone())));
        assert_eq!(
            format!("{untraced:?}"),
            format!("{traced:?}"),
            "{}: tracing changed the simulation",
            cc.label()
        );
        // The comparison is meaningful only if the sink actually saw the run.
        let n = events.lock().unwrap().len();
        assert!(n > 1_000, "{}: trace sink saw only {n} events", cc.label());
        assert!(
            counters.links.iter().any(|l| l.tx_pkts > 0),
            "{}: counter snapshot is empty",
            cc.label()
        );
    }
}

/// The third leg of the determinism contract, added with the event-loop
/// overhaul: the engine configuration (timer wheel vs binary heap, pooled vs
/// boxed packets, batched vs per-event delivery) changes only *speed*. Every
/// engine combination must produce a `FlowResult`, trace stream, and counter
/// snapshot byte-identical to the reference engine's, across seeds and
/// algorithms.
#[test]
fn all_engines_are_byte_identical_to_the_reference() {
    for seed in [5u64, 23] {
        for cc in [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()] {
            let run = |engine: EngineConfig| {
                let opts = BurstyOptions {
                    seed,
                    transfer_bytes: Some(2_000_000),
                    duration_s: 60.0,
                    engine,
                    ..BurstyOptions::default()
                };
                let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
                let (result, counters) =
                    run_two_path_bursty_traced(&cc, &opts, Some(Box::new(events.clone())));
                let trace = std::mem::take(&mut *events.lock().unwrap());
                (format!("{result:?}"), format!("{counters:?}"), format!("{trace:?}"))
            };
            let reference = run(EngineConfig::reference());
            for queue in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
                for pool_packets in [true, false] {
                    for batch_acks in [true, false] {
                        let engine = EngineConfig { queue, pool_packets, batch_acks };
                        assert_eq!(
                            run(engine),
                            reference,
                            "{}/seed {seed}: engine {engine:?} diverged from reference",
                            cc.label()
                        );
                    }
                }
            }
        }
    }
}
