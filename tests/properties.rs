//! Property-based tests (proptest) over the core data structures and
//! invariants: congestion-control window safety, the DTS sigmoid, summary
//! statistics, the fluid solver's floors, and workload samplers.

use congestion::{AlgorithmKind, SubflowCc, MAX_CWND, MIN_CWND};
use mptcp_energy::{epsilon_exact, epsilon_fixed_point, CcModel, FiveNumber, FlowView, Psi};
use proptest::prelude::*;

/// A random but valid subflow state.
fn subflow_strategy() -> impl Strategy<Value = SubflowCc> {
    (1.0f64..5000.0, 1e-4f64..2.0, 0.1f64..1.0).prop_map(|(cwnd, rtt, base_frac)| {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = (cwnd / 2.0).max(congestion::MIN_CWND); // congestion avoidance
        f.observe_rtt(rtt * base_frac);
        f.observe_rtt(rtt);
        f
    })
}

/// A random event script: per-subflow ack/loss/timeout choices.
#[derive(Clone, Debug)]
enum Event {
    Ack { r: usize, n: u64, ecn: bool },
    Loss { r: usize },
    Timeout { r: usize },
}

fn event_strategy(n_subflows: usize) -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..n_subflows, 1u64..4, any::<bool>()).prop_map(|(r, n, ecn)| Event::Ack { r, n, ecn }),
        (0..n_subflows).prop_map(|r| Event::Loss { r }),
        (0..n_subflows).prop_map(|r| Event::Timeout { r }),
    ]
}

proptest! {
    /// No algorithm ever drives a window out of [MIN_CWND, MAX_CWND] or
    /// produces NaN, for any event sequence.
    #[test]
    fn windows_stay_valid_under_any_event_sequence(
        flows in proptest::collection::vec(subflow_strategy(), 2..5),
        seed_events in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        for kind in AlgorithmKind::ALL {
            let mut fs = flows.clone();
            let n = fs.len();
            let mut cc = kind.build(n);
            for (i, &e) in seed_events.iter().enumerate() {
                let r = (e as usize) % n;
                match e % 5 {
                    0..=2 => cc.on_ack(r, &mut fs, 1 + (i as u64 % 3), e % 7 == 0),
                    3 => cc.on_loss(r, &mut fs),
                    _ => cc.on_timeout(r, &mut fs),
                }
                for (j, f) in fs.iter().enumerate() {
                    prop_assert!(f.cwnd.is_finite(), "{kind} produced non-finite cwnd");
                    prop_assert!(
                        (MIN_CWND..=MAX_CWND).contains(&f.cwnd),
                        "{kind} subflow {j} cwnd {} out of range", f.cwnd
                    );
                    prop_assert!(f.ssthresh >= MIN_CWND || f.ssthresh.is_infinite());
                }
            }
        }
    }

    /// DTS and DTS-Φ obey the same window-safety invariant.
    #[test]
    fn dts_windows_stay_valid(
        flows in proptest::collection::vec(subflow_strategy(), 2..5),
        events in proptest::collection::vec(event_strategy(2), 1..200),
    ) {
        use mptcp_energy::scenarios::CcChoice;
        for choice in [CcChoice::dts(), CcChoice::dts_phi()] {
            let mut fs = flows.clone();
            let n = fs.len();
            let mut cc = choice.build(n);
            for ev in &events {
                match *ev {
                    Event::Ack { r, n: acked, ecn } if r < fs.len() =>
                        cc.on_ack(r % fs.len(), &mut fs, acked, ecn),
                    Event::Loss { r } => cc.on_loss(r % n.min(fs.len()), &mut fs),
                    Event::Timeout { r } => cc.on_timeout(r % fs.len(), &mut fs),
                    _ => {}
                }
                for f in &fs {
                    prop_assert!(f.cwnd.is_finite() && f.cwnd >= MIN_CWND && f.cwnd <= MAX_CWND);
                }
            }
        }
    }

    /// ε ∈ (0, 2) for every ratio, and it is monotone in the ratio.
    #[test]
    fn epsilon_bounded_and_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = epsilon_exact(lo, 10.0, 0.5);
        let e_hi = epsilon_exact(hi, 10.0, 0.5);
        prop_assert!(e_lo > 0.0 && e_lo < 2.0);
        prop_assert!(e_hi > 0.0 && e_hi < 2.0);
        prop_assert!(e_lo <= e_hi + 1e-12);
        // The fixed-point port stays within [0, 2] everywhere.
        let fp = epsilon_fixed_point(a);
        prop_assert!((0.0..=2.0).contains(&fp));
    }

    /// Five-number summaries are ordered and fence outliers correctly.
    #[test]
    fn five_number_is_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let f = FiveNumber::of(&values);
        prop_assert!(f.min <= f.q1 + 1e-9);
        prop_assert!(f.q1 <= f.median + 1e-9);
        prop_assert!(f.median <= f.q3 + 1e-9);
        prop_assert!(f.q3 <= f.max + 1e-9);
        let iqr = f.q3 - f.q1;
        for o in &f.outliers {
            prop_assert!(*o < f.q1 - 1.5 * iqr || *o > f.q3 + 1.5 * iqr);
        }
    }

    /// Every ψ decomposition is positive on positive states.
    #[test]
    fn psi_decompositions_are_positive(
        x in proptest::collection::vec(1.0f64..1e5, 2..5),
        rtt_base in 1e-4f64..0.5,
    ) {
        let rtt: Vec<f64> = (0..x.len()).map(|i| rtt_base * (1.0 + i as f64 * 0.3)).collect();
        let v = FlowView { x: &x, rtt: &rtt, base_rtt: &rtt };
        for psi in [Psi::Ewtcp, Psi::Coupled, Psi::Lia, Psi::Olia, Psi::Balia, Psi::EcMtcp] {
            for r in 0..x.len() {
                let val = psi.eval(r, &v);
                prop_assert!(val.is_finite() && val > 0.0, "{} gave {val}", psi.name());
            }
        }
    }

    /// The fluid solver never lets a rate fall below its floor, whatever the
    /// capacities.
    #[test]
    fn fluid_rates_respect_floor(
        caps in proptest::collection::vec(10.0f64..10_000.0, 2..4),
        x0 in proptest::collection::vec(1.0f64..500.0, 2..4),
    ) {
        let n = caps.len().min(x0.len());
        let rtts = vec![0.05; n];
        let net = mptcp_energy::disjoint_paths_net(
            CcModel::loss_based(Psi::Olia), &caps[..n], &rtts);
        let x = net.run(vec![x0[..n].to_vec()], 1e-3, 5_000);
        for rate in &x[0] {
            prop_assert!(*rate >= mptcp_energy::fluid::X_MIN);
            prop_assert!(rate.is_finite());
        }
    }

    /// Pareto samples never fall below the scale parameter and exponential
    /// samples are non-negative.
    #[test]
    fn workload_samplers_are_sane(seed in any::<u64>(), mean in 0.5f64..50.0) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let shape = 1.5;
        let scale = mean * (shape - 1.0) / shape;
        for _ in 0..50 {
            let p = workload::pareto_sample(&mut rng, shape, mean);
            prop_assert!(p >= scale * (1.0 - 1e-12));
            prop_assert!(p.is_finite());
            let e = workload::exp_sample(&mut rng, mean);
            prop_assert!(e >= 0.0 && e.is_finite());
        }
    }

    /// Permutation pairs never map a host to itself and cover every source.
    #[test]
    fn permutations_have_no_fixed_points(seed in any::<u64>(), n in 2usize..200) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = workload::permutation_pairs(n, &mut rng);
        prop_assert_eq!(pairs.len(), n);
        for (s, d) in pairs {
            prop_assert!(s != d);
            prop_assert!(d < n);
        }
    }
}
