//! Error-path contract of the repro artifact pipeline
//! (`bench_harness::repro`): a truncated, corrupt, or hand-mangled artifact
//! must come back as a descriptive `Err`, never a panic — quarantine
//! artifacts are read by humans mid-incident, and the `replay` binary must
//! degrade to a message, not a backtrace.

use bench_harness::repro::{parse_artifact, replay_artifact, run_repro_cell, ReproSpec};
use netsim::FaultScript;

const SPEC: &str = "{\"repro\":\"spec\",\"seed\":7,\"transfer_pkts\":100,\"cc\":\"dts\",\
                    \"dead_after_backoffs\":4,\"horizon_ns\":2000000000}";

fn spec(cc: &str) -> ReproSpec {
    ReproSpec {
        seed: 7,
        transfer_pkts: 50,
        cc: cc.into(),
        dead_after_backoffs: None,
        horizon_s: 1.0,
        fail_at_s: None,
        script: FaultScript::new(),
    }
}

#[test]
fn empty_and_spec_free_artifacts_are_rejected() {
    let err = parse_artifact("").unwrap_err();
    assert!(err.contains("no spec line"), "{err}");
    // Trace-tail noise without a spec is still spec-free.
    let err = parse_artifact("{\"ev\":\"send\",\"t\":1}\nnot json at all\n").unwrap_err();
    assert!(err.contains("no spec line"), "{err}");
}

#[test]
fn truncated_spec_line_is_an_error_not_a_panic() {
    // A SIGKILL mid-write can leave the spec line cut after the marker
    // field: the marker parses, the payload fields are gone.
    let cut = &SPEC[..SPEC.len() / 2];
    let err = parse_artifact(cut).unwrap_err();
    assert!(err.contains("spec missing"), "{err}");
}

#[test]
fn fault_line_before_spec_is_rejected() {
    let text = "{\"repro\":\"fault\",\"at_ns\":5,\"link\":0,\"kind\":\"blackout_on\"}\n";
    let err = parse_artifact(text).unwrap_err();
    assert!(err.contains("fault line before spec"), "{err}");
}

#[test]
fn corrupt_fault_and_violation_lines_are_rejected() {
    let bad_fault = format!("{SPEC}\n{{\"repro\":\"fault\",\"at_ns\":5}}\n");
    let err = parse_artifact(&bad_fault).unwrap_err();
    assert!(err.contains("fault line missing link"), "{err}");

    let bad_violation = format!("{SPEC}\n{{\"repro\":\"violation\",\"message\":\"x\"}}\n");
    let err = parse_artifact(&bad_violation).unwrap_err();
    assert!(err.contains("violation missing at_ns"), "{err}");
}

#[test]
fn well_formed_spec_still_parses_after_the_error_paths() {
    // Sanity: the fixture the error tests mangle is itself valid.
    let (spec, violation) = parse_artifact(SPEC).unwrap();
    assert_eq!(spec.seed, 7);
    assert_eq!(spec.transfer_pkts, 100);
    assert_eq!(spec.cc, "dts");
    assert_eq!(spec.dead_after_backoffs, Some(4));
    assert!(violation.is_none());
}

#[test]
fn unknown_congestion_control_is_an_error_not_a_panic() {
    let err = run_repro_cell(&spec("cubic")).unwrap_err();
    assert!(err.contains("unknown congestion control"), "{err}");
    assert!(err.contains("cubic"), "{err}");
}

#[test]
fn known_congestion_control_executes() {
    // The guard above must not be overeager: a real cc runs to completion.
    let outcome = run_repro_cell(&spec("reno")).unwrap();
    assert!(outcome.finished, "50-packet clean transfer must finish");
    assert_eq!(outcome.acked, 50);
}

#[test]
fn replaying_a_missing_artifact_is_an_error_not_a_panic() {
    let path = std::env::temp_dir()
        .join(format!("repro-errors-{}-definitely-missing.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let err = replay_artifact(&path).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn replaying_a_corrupt_artifact_is_an_error_not_a_panic() {
    let path =
        std::env::temp_dir().join(format!("repro-errors-{}-corrupt.jsonl", std::process::id()));
    std::fs::write(&path, "{\"repro\":\"violation\"").unwrap();
    let err = replay_artifact(&path).unwrap_err();
    assert!(err.contains("violation missing at_ns") || err.contains("no spec line"), "{err}");
    let _ = std::fs::remove_file(&path);
}
