//! Chaos soak: many seeds, each driving a randomized `FaultScript` (loss,
//! bursty loss, bandwidth and delay changes, short blackouts) against a
//! two-path transfer. Every flow must complete, the stall watchdog must stay
//! quiet, and the same seed must reproduce byte-identical results.
//!
//! The seeds fan out across the deterministic sweep runner
//! (`bench_harness::runner`) — each soak owns its whole `Simulator`, so
//! parallel execution cannot perturb outcomes, and the reproducibility test
//! asserts exactly that by comparing a serial sweep against a parallel one.
//! The big ignored soak additionally runs under the crash-safe fabric
//! (`bench_harness::fabric`): a panicking or wedged seed is deadline-killed
//! and quarantined with a self-contained repro artifact (replayable via the
//! `replay` binary) instead of aborting the other 39 cells — retries are
//! disabled because every cell is deterministic, so a second attempt could
//! only reproduce the first.
//!
//! When the `SWEEP_TRACE` env var names a directory, every soak cell streams
//! its JSONL event trace to `<dir>/soak-<seed>.jsonl`; passing cells delete
//! their file afterwards, so on a failure only the offending traces remain
//! (CI uploads them as artifacts — see `.github/workflows/ci.yml`).

use bench_harness::fabric::{
    run_fabric_ephemeral, FabricCell, FabricOptions, Fingerprint, RetryPolicy,
};
use bench_harness::repro::ReproSpec;
use bench_harness::runner::{run_sweep_jobs, SweepCell};
use congestion::AlgorithmKind;
use mptcp_energy::CcChoice;
use netsim::{
    EngineConfig, FaultAction, FaultScript, LossModel, QueueKind, ReorderModel, SimDuration,
    SimTime, Simulator,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig};

const SEEDS: u64 = 20;
// Big enough that the transfer is still in flight while the fault timeline
// (roughly t = 1 s .. 14 s) plays out, for every seed.
const TRANSFER_PKTS: u64 = 20_000;

/// Builds a randomized but per-seed deterministic fault timeline. Path 1
/// never goes down and never loses more than a few percent, so the transfer
/// is always completable; path 2 takes the heavier abuse, including short
/// blackouts.
fn random_script(tp: &TwoPath, rng: &mut SmallRng) -> FaultScript {
    let mut script = FaultScript::new();
    // Mild random loss on the "good" path, heavier (possibly bursty) loss on
    // the other, applied at staggered times.
    for burst in 0..3 {
        let at = SimTime::from_secs_f64(1.0 + burst as f64 * 4.0 + rng.gen_range(0.0..1.0));
        let model = if rng.gen_bool(0.5) {
            LossModel::iid(rng.gen_range(0.0..0.05))
        } else {
            LossModel::gilbert_elliott(0.05, 0.3, 0.0, rng.gen_range(0.1..0.4))
        };
        script = script.at(at, FaultAction::SetLoss { link: tp.p2.fwd, model }).at(
            at,
            FaultAction::SetLoss {
                link: tp.p1.fwd,
                model: LossModel::iid(rng.gen_range(0.0..0.02)),
            },
        );
    }
    // Bandwidth and delay wobble on both paths.
    for shake in 0..2 {
        let at = SimTime::from_secs_f64(2.0 + shake as f64 * 5.0 + rng.gen_range(0.0..1.0));
        script = script
            .at(
                at,
                FaultAction::SetBandwidth {
                    link: tp.p2.fwd,
                    bps: rng.gen_range(10u64..25) * 1_000_000,
                },
            )
            .at(
                at,
                FaultAction::SetPropagation {
                    link: tp.p1.fwd,
                    propagation: SimDuration::from_millis(rng.gen_range(5..30)),
                },
            );
    }
    // Two short blackouts on path 2 only (both directions, non-overlapping).
    for window in 0..2 {
        let from = SimTime::from_secs_f64(3.0 + window as f64 * 4.0 + rng.gen_range(0.0..1.0));
        let until = from + SimDuration::from_secs_f64(rng.gen_range(0.5..1.5));
        script = script.blackout(tp.p2.fwd, from, until).blackout(tp.p2.rev, from, until);
    }
    // Clear all loss near the end so the tail always drains.
    let heal = SimTime::from_secs_f64(14.0);
    script
        .at(heal, FaultAction::SetLoss { link: tp.p1.fwd, model: LossModel::None })
        .at(heal, FaultAction::SetLoss { link: tp.p2.fwd, model: LossModel::None })
}

/// Layers delivery impairments (reordering jitter, duplication, corrupted
/// ACKs) on top of the base fault timeline — the `soak-adv-*` cells. The
/// instants are distinct per wave, the action kinds are distinct per
/// instant, and everything heals by t = 14.5 s so the tail always drains.
fn adversarial_script(tp: &TwoPath, rng: &mut SmallRng) -> FaultScript {
    let mut script = random_script(tp, rng);
    for wave in 0..2 {
        let at = SimTime::from_secs_f64(1.5 + wave as f64 * 5.0 + rng.gen_range(0.0..1.0));
        script = script
            .at(
                at,
                FaultAction::SetReorder {
                    link: tp.p1.fwd,
                    model: ReorderModel::uniform(
                        rng.gen_range(0.05..0.4),
                        SimDuration::from_millis(rng.gen_range(1..6)),
                    ),
                },
            )
            .at(at, FaultAction::SetDuplicate { link: tp.p2.fwd, p: rng.gen_range(0.01..0.15) })
            .at(at, FaultAction::SetCorrupt { link: tp.p2.rev, p: rng.gen_range(0.005..0.05) });
    }
    let heal = SimTime::from_secs_f64(14.5);
    script
        .at(heal, FaultAction::SetReorder { link: tp.p1.fwd, model: ReorderModel::None })
        .at(heal, FaultAction::SetDuplicate { link: tp.p2.fwd, p: 0.0 })
        .at(heal, FaultAction::SetCorrupt { link: tp.p2.rev, p: 0.0 })
}

/// The `SWEEP_TRACE` trace directory, if tracing is requested.
fn trace_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("SWEEP_TRACE").map(Into::into)
}

/// One soak run; returns everything that must be bit-identical across reruns.
#[derive(Debug, PartialEq)]
struct SoakOutcome {
    finished: bool,
    stalled: bool,
    finish: Option<SimTime>,
    acked: u64,
    per_path: (u64, u64),
    failover_reinjections: u64,
    random_losses: u64,
    blackout_drops: u64,
    counters: obs::CounterSnapshot,
}

fn soak_with(seed: u64, adversarial: bool) -> SoakOutcome {
    soak_on_engine(seed, adversarial, EngineConfig::default())
}

fn soak_on_engine(seed: u64, adversarial: bool, engine: EngineConfig) -> SoakOutcome {
    let label = if adversarial { format!("soak-adv-{seed}") } else { format!("soak-{seed}") };
    let mut sim = Simulator::with_engine(seed, engine);
    if let Some(dir) = trace_dir() {
        if let Some(sink) = obs::jsonl_sink_in(&dir, &label) {
            sim.set_trace_sink(sink);
        }
    }
    let tp = TwoPath::dual_nic(&mut sim, 20_000_000, SimDuration::from_millis(10));
    let mut script_rng = SmallRng::seed_from_u64(seed ^ 0xC4A05);
    let script = if adversarial {
        adversarial_script(&tp, &mut script_rng)
    } else {
        random_script(&tp, &mut script_rng)
    };
    script.clone().install(&mut sim);
    #[cfg(feature = "check-invariants")]
    netsim::install_default_invariants(&mut sim);
    let cc_name = if seed.is_multiple_of(2) { "lia" } else { "dts" };
    let cc =
        if seed.is_multiple_of(2) { CcChoice::Base(AlgorithmKind::Lia) } else { CcChoice::dts() };
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(seed).transfer_pkts(TRANSFER_PKTS).dead_after_backoffs(Some(4)),
        cc.build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.enable_watchdog(SimDuration::from_secs_f64(10.0));
    sim.watch(flow.sender);
    sim.run_until(SimTime::from_secs_f64(120.0));
    drop(sim.take_trace_sink());
    // A halted invariant checker aborts the cell: dump the self-contained
    // repro artifact (spec + fault timeline + violation) first, then panic so
    // the sweep runner propagates the failure verbatim.
    #[cfg(feature = "check-invariants")]
    if let Some(v) = sim.invariant_violation() {
        use bench_harness::repro::{dump_artifact, ReproOutcome, ReproSpec, ViolationRecord};
        let spec = ReproSpec {
            seed,
            transfer_pkts: TRANSFER_PKTS,
            cc: cc_name.into(),
            dead_after_backoffs: Some(4),
            horizon_s: 120.0,
            fail_at_s: None,
            script,
        };
        let outcome = ReproOutcome {
            finished: flow.is_finished(&sim),
            acked: flow.sender_ref(&sim).data_acked(),
            violation: Some(ViolationRecord { at_ns: v.at.as_nanos(), message: v.message.clone() }),
            trace_tail: Vec::new(),
        };
        let dumped = bench_harness::repro::artifact_dir()
            .and_then(|dir| dump_artifact(&dir, &spec, &outcome).ok());
        panic!(
            "{label}: {v}{}",
            dumped.map_or(String::new(), |p| format!(" (repro artifact: {})", p.display()))
        );
    }
    let _ = cc_name;
    let counters = mptcp_energy::scenarios::counters_of(&sim, std::slice::from_ref(&flow));
    let s = flow.sender_ref(&sim);
    SoakOutcome {
        finished: flow.is_finished(&sim),
        stalled: sim.stalled(),
        finish: flow.finish_time(&sim),
        acked: s.data_acked(),
        per_path: (s.subflow(0).acked_pkts, s.subflow(1).acked_pkts),
        failover_reinjections: s.failover_reinjections,
        random_losses: sim.world().random_losses,
        blackout_drops: sim.world().blackout_drops,
        counters,
    }
}

/// One sweep cell per seed; labels carry the seed for failure messages.
fn soak_cells(seeds: impl IntoIterator<Item = u64>) -> Vec<SweepCell<'static, SoakOutcome>> {
    seeds
        .into_iter()
        .map(|seed| SweepCell::new(format!("soak-{seed}"), seed, move || soak_with(seed, false)))
        .collect()
}

/// The adversarial-impairment cells: same grid, plus reorder/dup/corrupt.
fn adv_cells(seeds: impl IntoIterator<Item = u64>) -> Vec<SweepCell<'static, SoakOutcome>> {
    seeds
        .into_iter()
        .map(|seed| SweepCell::new(format!("soak-adv-{seed}"), seed, move || soak_with(seed, true)))
        .collect()
}

/// Rebuilds the exact fault timeline a soak cell will see, as a
/// self-contained repro spec: `dual_nic` is the first deterministic thing
/// `soak_with` does with its fresh `Simulator`, so a scratch sim assigns
/// identical link ids and the script RNG replays identically.
fn spec_for(seed: u64, adversarial: bool) -> ReproSpec {
    let mut sim = Simulator::new(seed);
    let tp = TwoPath::dual_nic(&mut sim, 20_000_000, SimDuration::from_millis(10));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A05);
    let script =
        if adversarial { adversarial_script(&tp, &mut rng) } else { random_script(&tp, &mut rng) };
    ReproSpec {
        seed,
        transfer_pkts: TRANSFER_PKTS,
        cc: if seed.is_multiple_of(2) { "lia".into() } else { "dts".into() },
        dead_after_backoffs: Some(4),
        horizon_s: 120.0,
        fail_at_s: None,
        script,
    }
}

/// The soak grid as crash-contained fabric cells: each carries a repro spec
/// so a quarantined seed leaves a replayable artifact behind.
fn fabric_soak_cells(
    seeds: std::ops::Range<u64>,
    adversarial: bool,
) -> Vec<FabricCell<SoakOutcome>> {
    seeds
        .map(|seed| {
            let label =
                if adversarial { format!("soak-adv-{seed}") } else { format!("soak-{seed}") };
            FabricCell::new(label, seed, move || soak_with(seed, adversarial))
                .config(Fingerprint::new().str("chaos-soak").bool(adversarial).u64(seed))
                .repro(spec_for(seed, adversarial))
        })
        .collect()
}

#[test]
#[ignore = "20-seed soak — run via `cargo test -- --ignored` (CI soak job)"]
fn chaos_soak_completes_under_randomized_faults() {
    let dir = trace_dir();
    let mut failures = Vec::new();
    let mut cells = fabric_soak_cells(0..SEEDS, false);
    cells.extend(fabric_soak_cells(0..SEEDS, true));
    // Crash containment, not masking: retries are off (the cells are
    // deterministic — a retry can only repeat the failure), the deadline is
    // far above any healthy soak, and quarantined seeds surface as failures
    // below with their repro artifact paths.
    let opts = FabricOptions {
        deadline: Some(std::time::Duration::from_secs(600)),
        retry: RetryPolicy::none(),
        ..FabricOptions::default()
    };
    let report = run_fabric_ephemeral(cells, &opts).expect("fabric sweep failed");
    eprintln!("{}", report.counters.render());
    for q in report.quarantined() {
        failures.push(format!("{q}"));
    }
    for r in report.results() {
        let (seed, out) = (r.seed, &r.output);
        let adversarial = r.label.starts_with("soak-adv-");
        let mut problems = Vec::new();
        if out.stalled {
            problems.push("watchdog fired");
        }
        if !out.finished {
            problems.push("transfer incomplete");
        }
        if out.acked != TRANSFER_PKTS {
            problems.push("acked != transfer size");
        }
        if out.random_losses + out.blackout_drops == 0 {
            problems.push("the fault script never bit — soak is vacuous");
        }
        if adversarial {
            let (reordered, duplicated, corrupted) =
                out.counters.links.iter().fold((0, 0, 0), |(r, d, c), l| {
                    (r + l.reordered, d + l.duplicated, c + l.corrupted)
                });
            if reordered == 0 || duplicated == 0 || corrupted == 0 {
                problems.push("an adversarial impairment never bit — adv soak is vacuous");
            }
        }
        if problems.is_empty() {
            // Passing cells clean up their trace, leaving only the traces
            // that explain a failure for the CI artifact upload.
            if let Some(dir) = dir.as_deref() {
                let _ = std::fs::remove_file(obs::trace_path(dir, &r.label));
            }
        } else {
            failures.push(format!("seed {seed}: {}: {out:?}", problems.join("; ")));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn chaos_runs_are_reproducible_per_seed() {
    // The same cells through a serial and an 8-way parallel sweep: outcomes
    // (and their order) must be identical — thread scheduling must never
    // leak into a simulation.
    let seeds = [0u64, 7, 13];
    let serial = run_sweep_jobs(soak_cells(seeds), 1);
    let parallel = run_sweep_jobs(soak_cells(seeds), 8);
    assert_eq!(serial, parallel, "serial vs parallel soak outcomes diverged");
    for r in &serial {
        assert!(r.output.finished, "{}: transfer incomplete: {:?}", r.label, r.output);
    }
}

#[test]
fn chaos_outcomes_identical_across_engines() {
    // The event-loop overhaul's contract under fire: with faults, blackouts,
    // reordering, duplication, and corruption all active, every engine
    // combination still produces the same `SoakOutcome` bit-for-bit. Seeds
    // pick one LIA (even) and one DTS (odd) cell, plain and adversarial.
    for seed in [4u64, 9] {
        for adversarial in [false, true] {
            let reference = soak_on_engine(seed, adversarial, EngineConfig::reference());
            assert!(reference.finished, "seed {seed}: reference run incomplete");
            for queue in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
                for pool_packets in [true, false] {
                    for batch_acks in [true, false] {
                        let engine = EngineConfig { queue, pool_packets, batch_acks };
                        assert_eq!(
                            soak_on_engine(seed, adversarial, engine),
                            reference,
                            "seed {seed} (adversarial={adversarial}): engine {engine:?} \
                             diverged from reference"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn adversarial_chaos_runs_are_reproducible_per_seed() {
    // Same contract for the reorder/dup/corrupt cells: the impairment RNG
    // draws live inside each cell's own simulator, so thread scheduling must
    // not perturb them either — and the impairments must actually fire.
    let seeds = [2u64, 5];
    let serial = run_sweep_jobs(adv_cells(seeds), 1);
    let parallel = run_sweep_jobs(adv_cells(seeds), 8);
    assert_eq!(serial, parallel, "serial vs parallel adversarial outcomes diverged");
    for r in &serial {
        assert!(r.output.finished, "{}: transfer incomplete: {:?}", r.label, r.output);
        assert_eq!(r.output.acked, TRANSFER_PKTS, "{}: exactly-once broken", r.label);
        let touched: u64 =
            r.output.counters.links.iter().map(|l| l.reordered + l.duplicated + l.corrupted).sum();
        assert!(touched > 0, "{}: adversarial impairments never fired", r.label);
    }
}
