//! The §V-C hierarchical-Internet scenario: the compensative parameter φ
//! must relieve the backbone concentration point (shorter queues) without
//! giving up utilization — the design goal of Equations (6)–(9).

use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_hierarchy, CcChoice, HierarchyOptions};
use mptcp_energy::DtsPhiConfig;

fn opts() -> HierarchyOptions {
    HierarchyOptions { duration_s: 20.0, ..HierarchyOptions::default() }
}

#[test]
fn backbone_is_the_concentration_point_under_lia() {
    let lia = run_hierarchy(&CcChoice::Base(AlgorithmKind::Lia), &opts());
    assert!(lia.backbone_utilization > 0.7, "backbone should be hot: {}", lia.backbone_utilization);
    assert!(
        lia.backbone_mean_queue > 5.0,
        "backbone should be queueing: {}",
        lia.backbone_mean_queue
    );
}

#[test]
fn phi_drains_the_backbone_queue_without_losing_utilization() {
    let lia = run_hierarchy(&CcChoice::Base(AlgorithmKind::Lia), &opts());
    // κ_s and the delay target are per-user knobs in Equation (7); the WAN
    // hierarchy uses a tight 2 ms target so the backbone queue (≈ 0.08 ms
    // per packet) is visible against 40 ms propagation, and a strong κ so
    // the drain beats the loss-driven refill of an overloaded DropTail
    // queue.
    let phi_cfg = DtsPhiConfig { kappa: 8e-3, queue_target_s: 2e-3, ..DtsPhiConfig::default() };
    let phi = run_hierarchy(&CcChoice::DtsPhi(phi_cfg), &opts());
    assert!(
        phi.backbone_mean_queue < 0.8 * lia.backbone_mean_queue,
        "phi queue {} vs lia {}",
        phi.backbone_mean_queue,
        lia.backbone_mean_queue
    );
    assert!(
        phi.fleet.aggregate_goodput_bps > 0.85 * lia.fleet.aggregate_goodput_bps,
        "phi goodput {} vs lia {}",
        phi.fleet.aggregate_goodput_bps,
        lia.fleet.aggregate_goodput_bps
    );
    // Queue relief shows up as energy relief through the inflation charge.
    assert!(
        phi.fleet.total_energy_j < lia.fleet.total_energy_j * 1.02,
        "phi energy {} vs lia {}",
        phi.fleet.total_energy_j,
        lia.fleet.total_energy_j
    );
}

#[test]
// Bit-reproducibility check: two identical runs must agree exactly, so the
// float comparison is deliberately strict.
#[allow(clippy::float_cmp)]
fn deterministic_per_seed() {
    let a = run_hierarchy(&CcChoice::dts(), &opts());
    let b = run_hierarchy(&CcChoice::dts(), &opts());
    assert_eq!(a.fleet.total_energy_j, b.fleet.total_energy_j);
    assert_eq!(a.backbone_mean_queue, b.backbone_mean_queue);
}
