//! Dead-subflow failover and revival: black out one of two paths mid-transfer
//! and verify the connection finishes over the survivor, strands nothing, and
//! puts the revived subflow back to work after the link returns — all driven
//! by a single deterministic `FaultScript`.

use congestion::AlgorithmKind;
use mptcp_energy::CcChoice;
use netsim::{FaultAction, FaultScript, SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig};

const TRANSFER_PKTS: u64 = 30_000;

/// Path 2 goes dark from t = 5 s to t = 17 s (a 12 s blackout). The sender
/// must declare the subflow dead, reinject its stranded segments onto path 1,
/// finish the transfer, and — once the link is back — revive the subflow in
/// slow start and move real traffic over it again.
#[test]
fn blackout_fails_over_and_revives() {
    let mut sim = Simulator::new(42);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let down = SimTime::from_secs_f64(5.0);
    let up = SimTime::from_secs_f64(17.0);
    FaultScript::new()
        .blackout(tp.p2.fwd, down, up)
        .blackout(tp.p2.rev, down, up)
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_pkts(TRANSFER_PKTS)
            // Death after ~7 × RTO ≈ 1.6 s of silence, so the 12 s blackout
            // exercises both death and a long probing phase.
            .dead_after_backoffs(Some(3)),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.enable_watchdog(SimDuration::from_secs_f64(5.0));
    sim.watch(flow.sender);

    // Run in small steps so we can observe the subflow right as it revives.
    let mut revival_cwnd = None;
    let mut acked_at_revival = 0;
    while sim.now() < SimTime::from_secs_f64(30.0) && revival_cwnd.is_none() {
        sim.run_until(sim.now() + SimDuration::from_millis(10));
        let s = flow.sender_ref(&sim);
        if s.subflow(1).revivals > 0 {
            revival_cwnd = Some(s.cc_states()[1].cwnd);
            acked_at_revival = s.subflow(1).acked_pkts;
        }
    }
    sim.run_until(SimTime::from_secs_f64(60.0));

    let s = flow.sender_ref(&sim);
    assert!(flow.is_finished(&sim), "transfer did not finish: {}", s.data_acked());
    assert_eq!(s.data_acked(), TRANSFER_PKTS);
    assert!(sim.stall_report().is_none(), "watchdog fired: {}", sim.stall_report().unwrap());

    // The blackout killed path 2 exactly once, and probes detected revival.
    assert_eq!(s.subflow(1).deaths, 1, "expected one death");
    assert_eq!(s.subflow(1).revivals, 1, "expected one revival");
    assert!(s.subflow(1).probes >= 1, "dead subflow never probed");
    assert_eq!(s.subflow(0).deaths, 0, "survivor must stay alive");

    // Every segment stranded on the dead path was reinjected onto the
    // survivor exactly once: at most one reinjection per packet that could
    // have been in flight (bounded by the receive window), at least one for
    // the head-of-line hole.
    assert!(s.failover_reinjections >= 1, "no failover reinjection happened");
    assert!(
        s.failover_reinjections <= s.config().rcv_buf_pkts,
        "more reinjections ({}) than could ever be stranded",
        s.failover_reinjections
    );

    // Revival restarted congestion control from slow start.
    let cwnd = revival_cwnd.expect("subflow never revived within 30 s");
    assert!(cwnd < 8.0, "revived subflow should restart near initial cwnd, got {cwnd}");
    // …and the revived path then carried real traffic, not just the probe.
    let post_revival = s.subflow(1).acked_pkts - acked_at_revival;
    assert!(post_revival > 100, "revived subflow moved only {post_revival} pkts");

    // The blackout itself was accounted by the link, not DropTail.
    let drops = sim.world().link(tp.p2.fwd).stats().blackout_drops
        + sim.world().link(tp.p2.rev).stats().blackout_drops;
    assert!(drops > 0, "blackout swallowed no packets");
}

/// With failover disabled, a permanent blackout freezes the connection — and
/// the stall watchdog turns the would-be CI hang into a diagnosable report.
#[test]
fn permanent_blackout_without_failover_trips_watchdog() {
    let mut sim = Simulator::new(43);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let at = SimTime::from_secs_f64(3.0);
    FaultScript::new()
        .at(at, FaultAction::LinkDown { link: tp.p2.fwd })
        .at(at, FaultAction::LinkDown { link: tp.p2.rev })
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(TRANSFER_PKTS).dead_after_backoffs(None),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.enable_watchdog(SimDuration::from_secs_f64(5.0));
    sim.watch(flow.sender);
    sim.run_until(SimTime::from_secs_f64(120.0));

    // The run aborted early with a report instead of spinning to the horizon.
    let report = sim.stall_report().expect("watchdog should have fired");
    assert!(report.at < SimTime::from_secs_f64(30.0), "fired late: {}", report.at);
    assert!(sim.now() < SimTime::from_secs_f64(30.0), "run was not aborted");
    assert_eq!(report.stalled.len(), 1);
    assert!(
        report.stalled[0].diagnostics.contains("conn 0"),
        "diagnostics missing flow identity: {}",
        report.stalled[0].diagnostics
    );
    let s = flow.sender_ref(&sim);
    assert!(!flow.is_finished(&sim));
    assert_eq!(s.subflow(1).deaths, 0, "failover disabled, nothing may die");
}
