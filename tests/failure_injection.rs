//! Failure-injection tests: degrade a path mid-run and verify the
//! delay-based traffic shifting reacts — the operational behaviour the
//! paper's §V-B designs DTS for.

use congestion::AlgorithmKind;
use mptcp_energy::CcChoice;
use netsim::{FaultAction, FaultScript, SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig, FlowHandle, Scheduler};

fn acked_per_path(sim: &Simulator, flow: FlowHandle) -> (u64, u64) {
    let s = flow.sender_ref(sim);
    (s.subflow(0).acked_pkts, s.subflow(1).acked_pkts)
}

/// Two equal 50 Mb/s paths; at t = 8 s path 1's propagation jumps from 10 ms
/// to 150 ms (a mobility / reroute event). DTS must move traffic to path 0.
#[test]
fn dts_shifts_away_from_suddenly_slow_path() {
    let mut sim = Simulator::new(21);
    let tp = TwoPath::dual_nic(&mut sim, 50_000_000, SimDuration::from_millis(10));
    // Degrade path 1 (both directions) at t = 8 s, declaratively.
    let slow = SimDuration::from_millis(150);
    FaultScript::new()
        .at(
            SimTime::from_secs_f64(8.0),
            FaultAction::SetPropagation { link: tp.p2.fwd, propagation: slow },
        )
        .at(
            SimTime::from_secs_f64(8.0),
            FaultAction::SetPropagation { link: tp.p2.rev, propagation: slow },
        )
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).rcv_buf_pkts(2048),
        CcChoice::dts().build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(8.0));
    let (a0, a1) = acked_per_path(&sim, flow);
    // Symmetric phase: both paths carry substantial traffic.
    assert!(a1 > a0 / 4, "before degradation: {a0} vs {a1}");

    sim.run_until(SimTime::from_secs_f64(10.0)); // let estimators catch up
    let (b0, b1) = acked_per_path(&sim, flow);
    sim.run_until(SimTime::from_secs_f64(25.0));
    let (c0, c1) = acked_per_path(&sim, flow);

    let good_path_delta = c0 - b0;
    let bad_path_delta = c1 - b1;
    assert!(
        good_path_delta > 4 * bad_path_delta,
        "after degradation DTS should shift traffic: good {good_path_delta} vs bad {bad_path_delta}"
    );
}

/// A path whose bandwidth collapses by 10× must not deadlock the
/// connection: the scoreboard recovers, and the connection keeps moving
/// data over the healthy path.
#[test]
fn bandwidth_collapse_does_not_deadlock() {
    let mut sim = Simulator::new(22);
    let tp = TwoPath::dual_nic(&mut sim, 50_000_000, SimDuration::from_millis(10));
    FaultScript::new()
        .at(
            SimTime::from_secs_f64(5.0),
            FaultAction::SetBandwidth { link: tp.p2.fwd, bps: 5_000_000 },
        )
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).rcv_buf_pkts(1024),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(5.0));
    let before = flow.sender_ref(&sim).data_acked();
    sim.run_until(SimTime::from_secs_f64(20.0));
    let after = flow.sender_ref(&sim).data_acked();
    // ≥ 50 Mb/s available on path 0 alone for 15 s ≈ 62k packets ideal;
    // demand well over half of that.
    assert!(
        after - before > 30_000,
        "connection stalled after bandwidth collapse: {} pkts in 15 s",
        after - before
    );
}

/// Round-robin scheduling splits evenly on symmetric paths, while
/// lowest-SRTT concentrates on the faster path when RTTs differ.
#[test]
fn schedulers_differ_as_designed() {
    // Symmetric paths, round-robin: ~50/50 split.
    let mut sim = Simulator::new(23);
    let tp = TwoPath::dual_nic(&mut sim, 20_000_000, SimDuration::from_millis(10));
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).scheduler(Scheduler::RoundRobin),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(10.0));
    let (a0, a1) = acked_per_path(&sim, flow);
    let ratio = a0 as f64 / a1.max(1) as f64;
    assert!((0.7..1.4).contains(&ratio), "round-robin split {a0}/{a1}");

    // Asymmetric RTT, lowest-SRTT: the fast path dominates.
    let mut sim = Simulator::new(23);
    let fast_slow = TwoPath::asymmetric(
        &mut sim,
        topology::LinkParams::new(20_000_000, SimDuration::from_millis(5)),
        topology::LinkParams::new(20_000_000, SimDuration::from_millis(80)),
    );
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).scheduler(Scheduler::LowestSrtt).rcv_buf_pkts(64),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &fast_slow.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(10.0));
    let (f0, f1) = acked_per_path(&sim, flow);
    assert!(f0 > 2 * f1, "lowest-SRTT should prefer the fast path: {f0} vs {f1}");
}
