//! The online invariant checker end to end (`check-invariants` feature):
//! registered checks are observe-only (byte-identical results), a seeded
//! violation halts the run and round-trips through a repro artifact, and the
//! replay entrypoint re-executes it to the same failure.

#![cfg(feature = "check-invariants")]

use bench_harness::repro::{dump_artifact, replay_artifact, run_repro_cell, ReproSpec};
use netsim::{FaultAction, FaultScript, LossModel, ReorderModel, SimDuration, SimTime};

fn impaired_spec(seed: u64) -> ReproSpec {
    ReproSpec {
        seed,
        transfer_pkts: 2_000,
        cc: "lia".into(),
        dead_after_backoffs: Some(4),
        horizon_s: 60.0,
        fail_at_s: None,
        script: FaultScript::new()
            .at(
                SimTime::from_secs_f64(0.5),
                FaultAction::SetLoss { link: 0, model: LossModel::iid(0.02) },
            )
            .at(
                SimTime::from_secs_f64(0.5),
                FaultAction::SetReorder {
                    link: 0,
                    model: ReorderModel::uniform(0.2, SimDuration::from_millis(2)),
                },
            )
            .at(SimTime::from_secs_f64(0.5), FaultAction::SetDuplicate { link: 2, p: 0.1 })
            .at(SimTime::from_secs_f64(0.5), FaultAction::SetCorrupt { link: 1, p: 0.02 })
            .at(
                SimTime::from_secs_f64(8.0),
                FaultAction::SetLoss { link: 0, model: LossModel::None },
            )
            .at(
                SimTime::from_secs_f64(8.0),
                FaultAction::SetReorder { link: 0, model: ReorderModel::None },
            )
            .at(SimTime::from_secs_f64(8.0), FaultAction::SetDuplicate { link: 2, p: 0.0 })
            .at(SimTime::from_secs_f64(8.0), FaultAction::SetCorrupt { link: 1, p: 0.0 }),
    }
}

#[test]
fn checked_impaired_runs_complete_exactly_once_and_deterministically() {
    // The checker watches a fully impaired transfer without firing, and two
    // executions are byte-identical (trace tail included) — the checks are
    // observe-only by construction (&Simulator) and must stay that way.
    let a = run_repro_cell(&impaired_spec(3)).expect("repro cell failed");
    let b = run_repro_cell(&impaired_spec(3)).expect("repro cell failed");
    assert!(a.violation.is_none(), "invariants fired on a healthy run: {:?}", a.violation);
    assert!(a.finished, "impaired transfer did not complete");
    assert_eq!(a.acked, 2_000);
    assert_eq!(a.finished, b.finished);
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.trace_tail, b.trace_tail, "checked runs diverged across executions");
}

#[test]
fn seeded_violation_halts_dumps_an_artifact_and_replays_to_the_same_failure() {
    let mut spec = impaired_spec(11);
    // Deliberately seed a violation mid-transfer: the checker must halt the
    // run there instead of letting it finish.
    spec.fail_at_s = Some(1.25);
    let outcome = run_repro_cell(&spec).expect("repro cell failed");
    let v = outcome.violation.as_ref().expect("seeded violation did not fire");
    assert!(v.at_ns >= 1_250_000_000, "violation before its seeding time: {v:?}");
    assert!(!outcome.finished, "the run must halt at the violation, not complete");
    assert!(!outcome.trace_tail.is_empty(), "artifact needs a trace tail for context");

    let dir = std::env::temp_dir().join(format!("repro-online-{}", std::process::id()));
    let path = dump_artifact(&dir, &spec, &outcome).expect("artifact write failed");
    let report = replay_artifact(&path).expect("artifact replay failed");
    assert_eq!(report.original.as_ref(), Some(v));
    assert!(
        report.reproduced(),
        "replay diverged: recorded {:?}, replayed {:?}",
        report.original,
        report.replayed
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn replay_detects_a_spec_that_no_longer_violates() {
    // An artifact whose recorded violation cannot recur (the spec carries no
    // seeded failure and the run is healthy) must report non-reproduction —
    // the replay entrypoint's honesty check.
    let spec = impaired_spec(5);
    let mut outcome = run_repro_cell(&spec).expect("repro cell failed");
    outcome.violation = Some(bench_harness::repro::ViolationRecord {
        at_ns: 1,
        message: "stale violation from an older build".into(),
    });
    let dir = std::env::temp_dir().join(format!("repro-stale-{}", std::process::id()));
    let path = dump_artifact(&dir, &spec, &outcome).expect("artifact write failed");
    let report = replay_artifact(&path).expect("artifact replay failed");
    assert!(report.original.is_some());
    assert!(report.replayed.is_none());
    assert!(!report.reproduced());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
