//! Acceptance test for the trace pipeline end to end: a chaos-style cell
//! streams its events to a JSONL file through `obs::jsonl_sink_in`, and the
//! `trace_dump` summarizer (`obs::summarize`, the library behind the binary)
//! reads the file back showing the drops by cause and recovery counts the
//! run actually experienced — with zero malformed lines.

use congestion::AlgorithmKind;
use mptcp_energy::CcChoice;
use netsim::{FaultAction, FaultScript, LossModel, SimDuration, SimTime, Simulator};
use std::io::BufReader;
use topology::TwoPath;
use transport::{attach_flow, FlowConfig};

#[test]
fn chaos_cell_trace_round_trips_through_the_summarizer() {
    let dir = std::env::temp_dir().join(format!("mptcp-trace-rt-{}", std::process::id()));
    let label = "chaos-cell";

    // A faulted two-path transfer: random loss on path 1 (fault_loss drops),
    // a mid-transfer blackout on path 2 (blackout drops, RTO recoveries,
    // death + revival), and tight queues (queue_overflow drops).
    let mut sim = Simulator::new(9);
    let sink = obs::jsonl_sink_in(&dir, label).expect("trace sink must open");
    sim.set_trace_sink(sink);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let down = SimTime::from_secs_f64(5.0);
    let up = SimTime::from_secs_f64(12.0);
    FaultScript::new()
        .at(
            SimTime::from_secs_f64(1.0),
            FaultAction::SetLoss { link: tp.p1.fwd, model: LossModel::iid(0.02) },
        )
        .blackout(tp.p2.fwd, down, up)
        .blackout(tp.p2.rev, down, up)
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(20_000).dead_after_backoffs(Some(3)),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert!(flow.is_finished(&sim), "cell did not finish");
    drop(sim.take_trace_sink()); // flush

    let path = obs::trace_path(&dir, label);
    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    let lines = text.lines().count();
    let summary = obs::summarize(BufReader::new(text.as_bytes())).unwrap();

    // Every line parsed; nothing dropped on the floor.
    assert_eq!(summary.malformed_lines, 0);
    assert_eq!(summary.events as usize, lines);
    assert!(summary.events > 1_000, "only {} events traced", summary.events);

    // Drops by cause: the blackout and the injected loss both bit.
    assert!(summary.drops_by_cause.get("blackout").copied().unwrap_or(0) > 0, "{summary:?}");
    assert!(summary.drops_by_cause.get("fault_loss").copied().unwrap_or(0) > 0, "{summary:?}");

    // Recovery counts: the blackout forced RTO-driven recovery episodes, and
    // the file's counts agree with the sender's own counters.
    let counters = flow.sender_ref(&sim).subflow_counters();
    let traced_rtos: u64 = summary.rtos_by_subflow.values().sum();
    assert!(traced_rtos > 0, "no RTOs in trace: {summary:?}");
    assert_eq!(traced_rtos, counters.iter().map(|c| c.rtos).sum::<u64>());
    assert!(summary.recoveries_by_subflow.values().sum::<u64>() > 0, "{summary:?}");

    // And the human-readable report carries both tables.
    let report = summary.render();
    assert!(report.contains("drops by cause"), "{report}");
    assert!(report.contains("recoveries"), "{report}");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
