//! Short-flow (mice) workload over a FatTree with elephant background
//! traffic: completion-time sanity across algorithms — the mixed traffic of
//! real fabrics that motivates the paper's burstiness concerns.

use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{run_short_flows, CcChoice, ShortFlowOptions};
use workload::ShortFlowConfig;

fn opts() -> ShortFlowOptions {
    ShortFlowOptions {
        mice: ShortFlowConfig { rate_per_s: 10.0, horizon_s: 5.0, ..Default::default() },
        ..ShortFlowOptions::default()
    }
}

#[test]
fn mice_complete_under_elephant_pressure() {
    for cc in [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()] {
        let r = run_short_flows(&cc, &opts());
        assert!(r.completion_rate > 0.95, "{}: completion {}", r.label, r.completion_rate);
        assert!(!r.fct_s.is_empty());
        // Median mouse (≤ 1 MB on a 100 Mb/s fabric) finishes in well under
        // a second even with elephants around.
        assert!(r.fct_percentile(0.5) < 1.0, "{}: median fct {}", r.label, r.fct_percentile(0.5));
        // Percentiles are ordered.
        assert!(r.fct_percentile(0.5) <= r.fct_percentile(0.99));
    }
}

#[test]
fn dts_mice_latency_tradeoff_is_bounded() {
    let lia = run_short_flows(&CcChoice::Base(AlgorithmKind::Lia), &opts());
    let dts = run_short_flows(&CcChoice::dts(), &opts());
    // Measured tradeoff: DTS's delay-based caution slows tail mice when
    // elephants keep queues inflated (ε < 1 during their congestion-avoidance
    // ramp). The paper's responsiveness/energy tradeoff (§V-A) predicts
    // exactly this; the bound pins it from growing. The exact ratio is
    // sensitive to the seeded arrival/size stream (currently ~2.4× under the
    // vendored RNG), so the bound carries headroom above the measured point.
    assert!(
        dts.fct_percentile(0.9) <= lia.fct_percentile(0.9) * 3.0,
        "dts p90 {} vs lia p90 {}",
        dts.fct_percentile(0.9),
        lia.fct_percentile(0.9)
    );
    assert!(dts.completion_rate > 0.95);
}

#[test]
fn deterministic_per_seed() {
    let a = run_short_flows(&CcChoice::dts(), &opts());
    let b = run_short_flows(&CcChoice::dts(), &opts());
    assert_eq!(a.fct_s, b.fct_s);
}
