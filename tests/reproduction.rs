//! Cross-crate integration tests pinning the paper's headline claims at
//! reduced scale. Each test asserts the *direction* of a published result
//! (who wins, roughly by how much); EXPERIMENTS.md tracks the quantitative
//! comparison at full scale.
//!
//! Each test's scenario runs are independent whole-simulator cells, so they
//! fan out across the deterministic sweep runner (`bench_harness::runner`):
//! on a multi-core machine the wall clock of a test is its slowest single
//! run, not the sum of all of them.

use bench_harness::runner::{run_sweep, SweepCell};
use congestion::AlgorithmKind;
use mptcp_energy::scenarios::{
    run_datacenter, run_ec2, run_shared_bottleneck, run_two_path_bursty, run_wireless,
    BurstyOptions, CcChoice, DcKind, DcOptions, Ec2Options, FlowResult, SharedOptions,
    WirelessOptions,
};

fn bursty_opts() -> BurstyOptions {
    BurstyOptions { transfer_bytes: Some(8_000_000), duration_s: 120.0, ..BurstyOptions::default() }
}

/// Fans `run_two_path_bursty` over a list of congestion-control choices.
fn bursty_sweep(choices: Vec<CcChoice>, opts: BurstyOptions) -> Vec<FlowResult> {
    let cells: Vec<SweepCell<FlowResult>> = choices
        .into_iter()
        .map(|cc| SweepCell::new(cc.label(), opts.seed, move || run_two_path_bursty(&cc, &opts)))
        .collect();
    run_sweep(cells).into_iter().map(|r| r.output).collect()
}

#[test]
fn fig9_dts_uses_less_energy_than_lia_on_bursty_paths() {
    let results =
        bursty_sweep(vec![CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()], bursty_opts());
    let (lia, dts) = (&results[0], &results[1]);
    assert!(lia.finish_s.is_some() && dts.finish_s.is_some());
    assert!(
        dts.energy.joules < lia.energy.joules,
        "dts {} J should beat lia {} J",
        dts.energy.joules,
        lia.energy.joules
    );
    // ...without degrading throughput (the paper's Fig. 8 claim).
    assert!(
        dts.goodput_bps >= 0.95 * lia.goodput_bps,
        "dts tput {} vs lia {}",
        dts.goodput_bps,
        lia.goodput_bps
    );
}

#[test]
// completion_rate is finished/total; exactly 1.0 is the all-finished
// sentinel, so the strict comparison is intended.
#[allow(clippy::float_cmp)]
fn fig10_multipath_saves_energy_over_single_path_on_ec2() {
    let opts = Ec2Options {
        n_hosts: 4,
        transfer_bytes: 8 * 1024 * 1024,
        horizon_s: 120.0,
        ..Ec2Options::default()
    };
    let choices =
        [CcChoice::Base(AlgorithmKind::Reno), CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts()];
    let cells: Vec<_> = choices
        .into_iter()
        .map(|cc| SweepCell::new(cc.label(), opts.seed, move || run_ec2(&cc, &opts)))
        .collect();
    let results = run_sweep(cells);
    let (tcp, lia, dts) = (&results[0].output, &results[1].output, &results[2].output);
    assert_eq!(tcp.completion_rate, 1.0);
    assert_eq!(lia.completion_rate, 1.0);
    // Multipath finishes ~4x sooner on 4 ENIs and saves a large energy
    // fraction (the paper reports up to 70%).
    assert!(
        lia.total_energy_j < 0.6 * tcp.total_energy_j,
        "lia {} vs tcp {}",
        lia.total_energy_j,
        tcp.total_energy_j
    );
    // DTS behaves like LIA in this benign network (paper Fig. 10).
    let ratio = dts.total_energy_j / lia.total_energy_j;
    assert!((0.8..1.2).contains(&ratio), "dts/lia energy ratio {ratio}");
}

#[test]
fn fig6_four_friendly_algorithms_complete_with_bounded_energy_spread() {
    // At reduced scale the paper's OLIA-first ordering is inside the noise
    // (see EXPERIMENTS.md); what must hold is that all four TCP-friendly
    // algorithms finish every transfer and land in the same energy regime.
    let opts =
        SharedOptions { n_users: 10, transfer_bytes: 2 * 1024 * 1024, ..SharedOptions::default() };
    let cells: Vec<_> = AlgorithmKind::PAPER_FOUR
        .into_iter()
        .map(|kind| {
            SweepCell::new(kind.to_string(), opts.seed, move || {
                run_shared_bottleneck(&CcChoice::Base(kind), &opts)
            })
        })
        .collect();
    let mut means = Vec::new();
    for (r, kind) in run_sweep(cells).iter().zip(AlgorithmKind::PAPER_FOUR) {
        let energies = &r.output;
        assert_eq!(energies.len(), opts.n_users, "{kind}: all users must finish");
        assert!(energies.iter().all(|e| e.is_finite() && *e > 0.0), "{kind}");
        means.push(mptcp_energy::mean(energies));
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    assert!(hi / lo < 1.4, "energy spread too wide: {means:?}");
}

/// Fans `run_datacenter` over subflow counts for one fabric.
fn dc_sweep(
    kind: DcKind,
    subflows: &[usize],
    base: DcOptions,
) -> Vec<mptcp_energy::scenarios::FleetResult> {
    let cells: Vec<_> = subflows
        .iter()
        .map(|&n| {
            SweepCell::new(format!("{n}-subflow"), base.seed, move || {
                run_datacenter(
                    kind,
                    &CcChoice::Base(AlgorithmKind::Lia),
                    &DcOptions { n_subflows: n, ..base },
                )
            })
        })
        .collect();
    run_sweep(cells).into_iter().map(|r| r.output).collect()
}

#[test]
fn fig12_more_subflows_reduce_bcube_energy_overhead() {
    let base = DcOptions { duration_s: 3.0, ..DcOptions::default() };
    // The energy-proportional server model applies to the DC scenarios.
    let results = dc_sweep(DcKind::BCube { n: 4, k: 2 }, &[1, 3], base);
    let (one, three) = (&results[0], &results[1]);
    assert!(
        three.joules_per_gbit < one.joules_per_gbit,
        "3 subflows {} J/Gb should beat 1 subflow {} J/Gb in BCube",
        three.joules_per_gbit,
        one.joules_per_gbit
    );
    assert!(three.aggregate_goodput_bps > one.aggregate_goodput_bps);
}

#[test]
fn fig13_fattree_gains_little_from_extra_subflows() {
    let base = DcOptions { duration_s: 3.0, ..DcOptions::default() };
    let results = dc_sweep(DcKind::FatTree { k: 4 }, &[1, 4], base);
    let (one, four) = (&results[0], &results[1]);
    // FatTree hosts have one NIC, so aggregate goodput is capped by host
    // access capacity regardless of subflow count (extra subflows only
    // resolve core collisions — the Raiciu et al. effect).
    let capacity = 16.0 * 100e6;
    assert!(one.aggregate_goodput_bps <= capacity * 1.01);
    assert!(four.aggregate_goodput_bps <= capacity * 1.01);
    let gain = four.aggregate_goodput_bps / one.aggregate_goodput_bps;
    assert!(gain < 2.5, "FatTree subflow goodput gain {gain} bounded by one NIC");
}

#[test]
fn fig16_dts_matches_lia_utilization_in_fattree() {
    let kind = DcKind::FatTree { k: 4 };
    let opts = DcOptions { n_subflows: 2, duration_s: 3.0, ..DcOptions::default() };
    let cells = vec![
        SweepCell::new("lia", opts.seed, move || {
            run_datacenter(kind, &CcChoice::Base(AlgorithmKind::Lia), &opts)
        }),
        SweepCell::new("dts", opts.seed, move || run_datacenter(kind, &CcChoice::dts(), &opts)),
    ];
    let results = run_sweep(cells);
    let ratio = results[1].output.aggregate_goodput_bps / results[0].output.aggregate_goodput_bps;
    assert!(ratio > 0.9, "dts/lia aggregate throughput {ratio}");
}

#[test]
fn fig17_wireless_runs_and_phi_trades_throughput_for_energy() {
    let opts = WirelessOptions { duration_s: 60.0, ..WirelessOptions::default() };
    let cells = vec![
        SweepCell::new("lia", opts.seed, move || {
            run_wireless(&CcChoice::Base(AlgorithmKind::Lia), &opts)
        }),
        SweepCell::new("phi", opts.seed, move || run_wireless(&CcChoice::dts_phi(), &opts)),
    ];
    let results = run_sweep(cells);
    let (lia, phi) = (&results[0].output, &results[1].output);
    assert!(lia.goodput_bps > 1_000_000.0, "lia should move traffic");
    assert!(phi.goodput_bps > 1_000_000.0, "phi should move traffic");
    // Energy per bit must improve even where total energy is noisy.
    let lia_jpb = lia.energy.joules / (lia.goodput_bps * opts.duration_s);
    let phi_jpb = phi.energy.joules / (phi.goodput_bps * opts.duration_s);
    assert!(phi_jpb < lia_jpb * 1.05, "phi J/bit {phi_jpb} should not exceed lia {lia_jpb}");
}

#[test]
fn fig17_wireless_loss_knob_costs_goodput() {
    let clean = WirelessOptions { duration_s: 30.0, ..WirelessOptions::default() };
    let lossy = WirelessOptions { wifi_loss: 0.05, lte_loss: 0.03, ..clean };
    let cells = vec![
        SweepCell::new("clean", clean.seed, move || {
            run_wireless(&CcChoice::Base(AlgorithmKind::Lia), &clean)
        }),
        SweepCell::new("lossy", lossy.seed, move || {
            run_wireless(&CcChoice::Base(AlgorithmKind::Lia), &lossy)
        }),
    ];
    let results = run_sweep(cells);
    let (a, b) = (&results[0].output, &results[1].output);
    assert!(b.goodput_bps > 0.0, "lossy run must still move traffic");
    assert!(
        b.goodput_bps < a.goodput_bps,
        "random wireless loss should cost goodput: {} vs {}",
        b.goodput_bps,
        a.goodput_bps
    );
    // Losses show up as repairs, not as a stalled connection. (Absolute
    // counts can go either way — the clean run pushes more packets into the
    // DropTail queues — so compare repairs per delivered bit.)
    let rate = |r: &FlowResult| r.rexmits as f64 / r.goodput_bps.max(1.0);
    assert!(rate(b) > rate(a), "lossy run should repair at a higher rate");
}

#[test]
// Bit-reproducibility check: identical runs must agree exactly.
#[allow(clippy::float_cmp)]
fn scenarios_are_deterministic() {
    // Two identical cells through the (possibly parallel) sweep must agree;
    // tests/sweep_determinism.rs pins the stronger jobs=1 vs jobs=N claim.
    let results = bursty_sweep(vec![CcChoice::dts(), CcChoice::dts()], bursty_opts());
    let (a, b) = (&results[0], &results[1]);
    assert_eq!(a.finish_s, b.finish_s);
    assert_eq!(a.energy.joules, b.energy.joules);
    assert_eq!(a.rexmits, b.rexmits);
}
