//! End-to-end crash-safety contract of the sweep fabric
//! (`bench_harness::fabric`): a journaled sweep that is interrupted and
//! resumed must produce **byte-identical** results to an uninterrupted run,
//! replaying finished cells from the journal instead of re-executing them;
//! panicking and hanging cells must be retried, quarantined with repro
//! stubs, and must never disturb their neighbours' outputs; and a
//! quarantined cell must be re-attempted (not skipped) on the next resume,
//! so a fixed environment heals the sweep.
//!
//! The interruption here is simulated by truncating the journal file —
//! exactly the on-disk state a SIGKILL leaves behind (whole checkpoint
//! lines plus at most one torn tail line, which the loader tolerates).
//! CI's `fabric` job drills the same contract with a real `timeout -s KILL`
//! against the `fabric_smoke` binary.

use bench_harness::fabric::{
    run_fabric, run_fabric_ephemeral, FabricCell, FabricOptions, FailCause, Fingerprint,
    RetryPolicy,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fabric-resume-{}-{name}", std::process::id()))
}

/// A 12-cell grid of pure functions of the seed. The f64 member exercises
/// bit-exact float journaling (payloads round-trip through `to_bits`);
/// `runs` counts real executions so replays are observable.
fn grid(runs: &Arc<AtomicU64>) -> Vec<FabricCell<(u64, f64)>> {
    (0..12u64)
        .map(|s| {
            let runs = Arc::clone(runs);
            FabricCell::new(format!("cell-{s:02}"), s, move || {
                runs.fetch_add(1, Ordering::SeqCst);
                (s.wrapping_mul(0x9e37_79b9).wrapping_add(7), s as f64 / 3.0 + 0.125)
            })
            .config(Fingerprint::new().str("resume-grid").u64(s))
        })
        .collect()
}

/// Renders a report's results as one stable line per cell — the
/// byte-identity currency of these tests.
fn render(report: &bench_harness::fabric::FabricReport<(u64, f64)>) -> String {
    report
        .results()
        .map(|r| format!("{:?} {} {:?}\n", r.label, r.seed, (r.output.0, r.output.1.to_bits())))
        .collect()
}

#[test]
fn interrupted_then_resumed_sweep_is_byte_identical() {
    let dir = tmp("identical");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Reference: one uninterrupted journaled run.
    let full = dir.join("full.jsonl");
    let opts = FabricOptions {
        jobs: 3,
        journal: Some(full.clone()),
        artifacts: None,
        ..FabricOptions::default()
    };
    let runs = Arc::new(AtomicU64::new(0));
    let reference = run_fabric(grid(&runs), &opts).unwrap();
    assert!(reference.is_complete());
    assert_eq!(runs.load(Ordering::SeqCst), 12);
    let want = render(&reference);

    // Simulate a SIGKILL: keep the run header plus the first 5 checkpoint
    // lines, then a torn half of the 6th — the state a kill mid-write
    // leaves on disk.
    let text = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 13, "run header + 12 done lines");
    let mut cut = lines[..6].join("\n");
    cut.push('\n');
    cut.push_str(&lines[6][..lines[6].len() / 2]); // torn tail, no newline
    let interrupted = dir.join("interrupted.jsonl");
    std::fs::write(&interrupted, &cut).unwrap();

    // Resume from the truncated journal: only the 7 missing cells execute,
    // the 5 checkpointed ones replay, and the merged output is identical.
    let runs2 = Arc::new(AtomicU64::new(0));
    let opts2 = FabricOptions { journal: Some(interrupted), ..opts };
    let resumed = run_fabric(grid(&runs2), &opts2).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.counters.replayed, 5, "{}", resumed.counters.render());
    assert_eq!(resumed.counters.executed, 7, "{}", resumed.counters.render());
    assert_eq!(runs2.load(Ordering::SeqCst), 7, "replayed cells must not re-execute");
    assert_eq!(render(&resumed), want, "resumed output diverged from the uninterrupted run");

    // A second resume on the now-complete journal executes nothing at all.
    let runs3 = Arc::new(AtomicU64::new(0));
    let replay_only = run_fabric(grid(&runs3), &opts2).unwrap();
    assert_eq!(runs3.load(Ordering::SeqCst), 0);
    assert_eq!(replay_only.counters.replayed, 12);
    assert_eq!(render(&replay_only), want);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_cell_is_retried_on_resume_and_heals() {
    let dir = tmp("heal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    // "flaky" panics until the environment is fixed (the flag flips).
    let fixed = Arc::new(AtomicBool::new(false));
    let cells = |fixed: &Arc<AtomicBool>| -> Vec<FabricCell<u64>> {
        let mut v: Vec<FabricCell<u64>> = (0..3u64)
            .map(|s| {
                FabricCell::new(format!("ok-{s}"), s, move || s + 100)
                    .config(Fingerprint::new().str("heal").u64(s))
            })
            .collect();
        let fixed = Arc::clone(fixed);
        v.push(
            FabricCell::new("flaky", 9, move || {
                assert!(fixed.load(Ordering::SeqCst), "environment still broken");
                999
            })
            .config(Fingerprint::new().str("heal").str("flaky")),
        );
        v
    };
    let opts = FabricOptions {
        jobs: 2,
        journal: Some(journal),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        artifacts: Some(dir.join("artifacts")),
        ..FabricOptions::default()
    };

    // First run: flaky exhausts its attempts and is quarantined with an
    // artifact; the three healthy cells are checkpointed.
    let first = run_fabric(cells(&fixed), &opts).unwrap();
    assert!(!first.is_complete());
    let q = first.quarantined().next().unwrap();
    assert_eq!(q.label, "flaky");
    assert_eq!(q.attempts, 2);
    assert_eq!(q.cause, FailCause::Panic);
    assert!(q.message.contains("environment still broken"), "{}", q.message);
    let artifact = q.artifact.as_ref().expect("quarantine must leave an artifact stub");
    assert!(artifact.exists(), "{}", artifact.display());
    assert!(first.partial_note().contains("flaky"), "{}", first.partial_note());
    assert_eq!(first.counters.quarantined, 1);

    // Fix the environment and resume on the same journal: the healthy cells
    // replay, the quarantined one is re-attempted — and now succeeds.
    fixed.store(true, Ordering::SeqCst);
    let second = run_fabric(cells(&fixed), &opts).unwrap();
    assert!(second.is_complete(), "{}", second.partial_note());
    assert_eq!(second.counters.replayed, 3, "{}", second.counters.render());
    assert_eq!(second.counters.executed, 1, "{}", second.counters.render());
    let healed = second.results().find(|r| r.label == "flaky").unwrap();
    assert_eq!(healed.output, 999);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_kills_hung_cell_and_preserves_neighbours() {
    let dir = tmp("deadline");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cells: Vec<FabricCell<u64>> = (0..4u64)
        .map(|s| {
            FabricCell::new(format!("quick-{s}"), s, move || s * 11)
                .config(Fingerprint::new().str("deadline").u64(s))
        })
        .collect();
    cells.push(
        FabricCell::new("hung", 4, || {
            std::thread::sleep(Duration::from_secs(120));
            0
        })
        .config(Fingerprint::new().str("deadline").str("hung")),
    );
    let opts = FabricOptions {
        jobs: 3,
        journal: None,
        deadline: Some(Duration::from_millis(200)),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        artifacts: Some(dir.clone()),
    };
    let report = run_fabric_ephemeral(cells, &opts).unwrap();
    assert!(!report.is_complete());
    let quick: Vec<(String, u64)> = report.results().map(|r| (r.label.clone(), r.output)).collect();
    assert_eq!(
        quick,
        vec![
            ("quick-0".into(), 0),
            ("quick-1".into(), 11),
            ("quick-2".into(), 22),
            ("quick-3".into(), 33)
        ],
        "healthy cells must be unaffected by the hung neighbour"
    );
    let q = report.quarantined().next().unwrap();
    assert_eq!(q.label, "hung");
    assert_eq!(q.cause, FailCause::Deadline);
    assert_eq!(q.attempts, 2);
    assert_eq!(report.counters.deadline_kills, 2, "{}", report.counters.render());
    assert_eq!(report.counters.retries, 1);
    assert!(report.partial_note().contains("hung"), "{}", report.partial_note());
    // No repro spec attached → an identity-only quarantine stub is written.
    let stub = q.artifact.as_ref().expect("deadline quarantine must leave a stub");
    let text = std::fs::read_to_string(stub).unwrap();
    assert!(text.contains("\"hung\""), "{text}");
    assert!(text.contains("deadline"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
