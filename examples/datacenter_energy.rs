//! Datacenter energy audit: how subflow count and algorithm choice change
//! joules-per-gigabit in FatTree vs BCube fabrics — the workload the paper's
//! §VI-C motivates (Figs. 12–16).
//!
//! ```sh
//! cargo run --release --example datacenter_energy
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::paper::scenarios::{run_datacenter, CcChoice, DcKind, DcOptions};

fn main() {
    let fabrics = [
        ("FatTree(k=4), 16 hosts", DcKind::FatTree { k: 4 }),
        ("BCube(4,2), 64 hosts  ", DcKind::BCube { n: 4, k: 2 }),
    ];
    println!("Permutation traffic, 5 s runs, LIA, varying subflows:\n");
    println!("{:<24} {:>9} {:>10} {:>12}", "fabric", "subflows", "J/Gbit", "agg Mb/s");
    for (name, kind) in fabrics {
        for n in [1usize, 2, 3] {
            let opts = DcOptions { n_subflows: n, duration_s: 5.0, ..DcOptions::default() };
            let r = run_datacenter(kind, &CcChoice::Base(AlgorithmKind::Lia), &opts);
            println!(
                "{:<24} {:>9} {:>10.1} {:>12.1}",
                name,
                n,
                r.joules_per_gbit,
                r.aggregate_goodput_bps / 1e6
            );
        }
    }
    println!("\nBCube's extra subflows leave through extra NICs — energy per");
    println!("bit falls. FatTree subflows share one NIC — it doesn't.\n");

    println!("FatTree(k=4), 2 subflows, algorithm comparison:\n");
    println!("{:<10} {:>12} {:>10} {:>12}", "algo", "energy (J)", "J/Gbit", "agg Mb/s");
    for cc in [CcChoice::Base(AlgorithmKind::Lia), CcChoice::dts(), CcChoice::dts_phi()] {
        let opts = DcOptions { n_subflows: 2, duration_s: 5.0, ..DcOptions::default() };
        let r = run_datacenter(DcKind::FatTree { k: 4 }, &cc, &opts);
        println!(
            "{:<10} {:>12.0} {:>10.1} {:>12.1}",
            r.label,
            r.total_energy_j,
            r.joules_per_gbit,
            r.aggregate_goodput_bps / 1e6
        );
    }
}
