//! Fault injection: black out one of two paths mid-transfer, watch the
//! sender declare the subflow dead, fail over to the survivor, and revive
//! the subflow when the link returns — then re-run with failover disabled
//! and let the stall watchdog abort the hang with a diagnosis.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::netsim::{
    FaultAction, FaultScript, LossModel, SimDuration, SimTime, Simulator,
};
use mptcp_energy_repro::paper::CcChoice;
use mptcp_energy_repro::topology::TwoPath;
use mptcp_energy_repro::transport::{attach_flow, FlowConfig};

const TRANSFER_PKTS: u64 = 30_000;

fn main() {
    failover_and_revival();
    watchdog_on_permanent_blackout();
}

/// Two 10 Mb/s paths; path 2 is dark from t = 5 s to t = 17 s and lossy
/// (1 % i.i.d.) afterwards. The transfer must ride out the blackout on
/// path 1 alone.
fn failover_and_revival() {
    let mut sim = Simulator::new(7);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let down = SimTime::from_secs_f64(5.0);
    let up = SimTime::from_secs_f64(17.0);
    FaultScript::new()
        .blackout(tp.p2.fwd, down, up)
        .blackout(tp.p2.rev, down, up)
        .at(up, FaultAction::SetLoss { link: tp.p2.fwd, model: LossModel::iid(0.01) })
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(TRANSFER_PKTS).dead_after_backoffs(Some(3)),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.enable_watchdog(SimDuration::from_secs_f64(5.0));
    sim.watch(flow.sender);

    println!("Blackout on path 2 from {down} to {up}; 30k packets over LIA:\n");
    let mut deaths = 0;
    let mut revivals = 0;
    while sim.now() < SimTime::from_secs_f64(60.0) && !flow.is_finished(&sim) {
        sim.run_until(sim.now() + SimDuration::from_millis(10));
        let s = flow.sender_ref(&sim);
        if s.subflow(1).deaths > deaths {
            deaths = s.subflow(1).deaths;
            println!(
                "  {:>7}  subflow 2 declared dead ({} stranded pkts reinjected on path 1)",
                format!("{}", sim.now()),
                s.failover_reinjections
            );
        }
        if s.subflow(1).revivals > revivals {
            revivals = s.subflow(1).revivals;
            println!(
                "  {:>7}  subflow 2 revived in slow start (cwnd {:.1}, {} probes sent)",
                format!("{}", sim.now()),
                s.cc_states()[1].cwnd,
                s.subflow(1).probes
            );
        }
    }

    let s = flow.sender_ref(&sim);
    let drops = sim.world().link(tp.p2.fwd).stats().blackout_drops
        + sim.world().link(tp.p2.rev).stats().blackout_drops;
    let losses = sim.world().link(tp.p2.fwd).stats().random_losses;
    println!(
        "  {:>7}  transfer complete ({} / {} pkts acked)",
        format!("{}", sim.now()),
        s.data_acked(),
        TRANSFER_PKTS
    );
    println!(
        "\n  per-path acks: {} (path 1) + {} (path 2); blackout swallowed {} pkts,",
        s.subflow(0).acked_pkts,
        s.subflow(1).acked_pkts,
        drops
    );
    println!("  post-revival i.i.d. loss dropped {losses} more. Watchdog stayed quiet.\n");
    assert!(flow.is_finished(&sim) && sim.stall_report().is_none());
}

/// Same topology, but path 2 goes down forever and failover is disabled —
/// the connection wedges on a stranded packet. The watchdog converts what
/// would be an endless (sim-time) hang into an aborted run plus a report.
fn watchdog_on_permanent_blackout() {
    let mut sim = Simulator::new(8);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let at = SimTime::from_secs_f64(3.0);
    FaultScript::new()
        .at(at, FaultAction::LinkDown { link: tp.p2.fwd })
        .at(at, FaultAction::LinkDown { link: tp.p2.rev })
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(TRANSFER_PKTS).dead_after_backoffs(None),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.enable_watchdog(SimDuration::from_secs_f64(5.0));
    sim.watch(flow.sender);
    sim.run_until(SimTime::from_secs_f64(120.0));

    println!("Permanent blackout at {at} with failover disabled:\n");
    let report = sim.stall_report().expect("watchdog must fire");
    println!("{report}");
    println!("\n  (run aborted at {} instead of spinning to the 120 s horizon)", sim.now());
    assert!(!flow.is_finished(&sim));
}
