//! Adversarial delivery impairments and zero-window flow control: run one
//! transfer through reordering, duplication, corruption, and loss on both
//! paths while a slow application read stalls the receiver window — then
//! show the impairment/robustness counters proving every packet was still
//! delivered exactly once, in order.
//!
//! ```sh
//! cargo run --release --example adversarial_impairments
//! ```
//!
//! Build with `--features check-invariants` to run the same transfer under
//! the online invariant checker (DESIGN.md §10.3); the output is identical
//! because the checks are observe-only.

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::netsim::{LossModel, ReorderModel, SimDuration, SimTime, Simulator};
use mptcp_energy_repro::paper::CcChoice;
use mptcp_energy_repro::topology::TwoPath;
use mptcp_energy_repro::transport::{attach_flow, FlowConfig};

const TRANSFER_PKTS: u64 = 20_000;

fn main() {
    let mut sim = Simulator::new(21);
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));

    // Every data direction gets a different ailment; path 1's ACK channel
    // corrupts too, so the sender also has to discard poisoned ACKs.
    let w = sim.world_mut();
    let imp = w.link_mut(tp.p1.fwd).impairment_mut();
    imp.set_reorder(ReorderModel::uniform(0.3, SimDuration::from_millis(4)));
    imp.set_loss(LossModel::iid(0.02));
    let imp = w.link_mut(tp.p2.fwd).impairment_mut();
    imp.set_duplicate(0.1);
    imp.set_corrupt(0.02);
    w.link_mut(tp.p1.rev).impairment_mut().set_corrupt(0.01);

    // A 64-packet receive buffer drained 100 packets at a time every
    // 120 ms of simulated time: the window slams shut repeatedly
    // mid-transfer, so the sender must ride persist probes, not a pretend
    // 1-packet floor.
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .transfer_pkts(TRANSFER_PKTS)
            .dead_after_backoffs(None)
            .rcv_buf_pkts(64)
            .app_read(SimDuration::from_millis(120), 100),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    #[cfg(feature = "check-invariants")]
    mptcp_energy_repro::netsim::install_default_invariants(&mut sim);

    sim.run_until(SimTime::from_secs_f64(600.0));
    assert!(flow.is_finished(&sim), "impaired transfer must still complete");

    println!("Adversarial two-path transfer, {TRANSFER_PKTS} packets over LIA:\n");
    println!("  link impairment effects (forward = data, reverse = ACKs):");
    for (label, id) in [
        ("path 1 fwd", tp.p1.fwd),
        ("path 2 fwd", tp.p2.fwd),
        ("path 1 rev", tp.p1.rev),
        ("path 2 rev", tp.p2.rev),
    ] {
        let st = sim.world().link(id).stats();
        println!(
            "    {label}: offered {:>6}, reordered {:>5}, duplicated {:>4}, corrupted {:>3}, lost {:>3}",
            st.offered, st.reordered, st.duplicated, st.corrupted, st.random_losses
        );
    }

    let c = flow.conn_counters(&sim);
    println!("\n  endpoint robustness counters:");
    println!("    zero-window stalls   {:>6}", c.zero_window_stalls);
    println!("    persist probes       {:>6}", c.persist_probes);
    println!("    corrupt ACKs dropped {:>6}", c.corrupt_acks);
    println!("    corrupt segs dropped {:>6}", c.corrupt_discards);
    println!("    window-full drops    {:>6}", c.rwnd_dropped);
    println!("    reassembly drops     {:>6}", c.ooo_dropped);
    println!("    duplicate segments   {:>6}", c.duplicates);

    let r = flow.receiver_ref(&sim);
    println!(
        "\n  delivered in order: {} / {TRANSFER_PKTS}; drained by the app: {} (finished at {})",
        r.data_delivered(),
        r.app_delivered(),
        flow.finish_time(&sim).expect("finished")
    );
    assert_eq!(r.data_delivered(), TRANSFER_PKTS);
    assert_eq!(r.app_delivered(), TRANSFER_PKTS);
    #[cfg(feature = "check-invariants")]
    {
        assert!(sim.invariant_violation().is_none(), "checker must stay quiet on a healthy run");
        println!("  online invariant checker: active, no violations.");
    }
}
