//! Quickstart: build a two-path network, run LIA and DTS over it, and
//! compare energy to move the same data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::paper::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};

fn main() {
    // The paper's Fig. 5(b) scenario: two 100 Mb/s paths whose quality flips
    // between Good and Bad under Pareto cross-traffic bursts. We move 8 MB
    // and measure host CPU energy to completion (Equation (2)).
    let opts = BurstyOptions {
        transfer_bytes: Some(8_000_000),
        duration_s: 120.0,
        ..BurstyOptions::default()
    };

    println!("Moving 8 MB across two bursty paths:\n");
    println!("{:<8} {:>12} {:>12} {:>10}", "algo", "energy (J)", "fct (s)", "Mb/s");
    for cc in
        [CcChoice::Base(AlgorithmKind::Lia), CcChoice::Base(AlgorithmKind::Olia), CcChoice::dts()]
    {
        let r = run_two_path_bursty(&cc, &opts);
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>10.2}",
            r.label,
            r.energy.joules,
            r.finish_s.unwrap_or(f64::NAN),
            r.goodput_bps / 1e6
        );
    }
    println!("\nDTS (the paper's algorithm) shifts traffic toward the");
    println!("low-delay path, finishing sooner and drawing less energy.");
}
