//! Tournament: every congestion-control algorithm in the library, racing on
//! the same bursty two-path network — the comparison the paper's §IV model
//! analysis sets up.
//!
//! Also demonstrates the analytical layer: each algorithm's ψ decomposition
//! is checked against the paper's Condition 1 (TCP-friendliness) at a
//! symmetric equilibrium, and its fluid Pareto efficiency is reported.
//!
//! ```sh
//! cargo run --release --example algorithm_tournament
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::paper::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};
use mptcp_energy_repro::paper::{
    check_condition1, pareto_efficiency, CcModel, DtsConfig, FlowView, Psi,
};

fn psi_of(kind: AlgorithmKind) -> Option<Psi> {
    match kind {
        AlgorithmKind::Ewtcp => Some(Psi::Ewtcp),
        AlgorithmKind::Coupled => Some(Psi::Coupled),
        AlgorithmKind::Lia => Some(Psi::Lia),
        AlgorithmKind::Olia => Some(Psi::Olia),
        AlgorithmKind::Balia => Some(Psi::Balia),
        AlgorithmKind::EcMtcp => Some(Psi::EcMtcp),
        _ => None,
    }
}

fn main() {
    // Analytical pass: Condition 1 and fluid Pareto efficiency.
    let x = [100.0, 100.0];
    let rtt = [0.1, 0.1];
    let view = FlowView { x: &x, rtt: &rtt, base_rtt: &rtt };
    println!("{:<10} {:>18} {:>18}", "algo", "condition 1", "pareto efficiency");
    for kind in AlgorithmKind::ALL {
        let Some(psi) = psi_of(kind) else { continue };
        let model = CcModel::loss_based(psi);
        let friendly = match check_condition1(&model, &view, 1e-6) {
            Ok(()) => "satisfied".to_owned(),
            Err(e) => match e {
                mptcp_energy_repro::paper::conditions::Condition1Violation::PsiTooLarge {
                    psi,
                    ..
                } => format!("violated (ψ={psi:.2})"),
                other => format!("violated ({other})"),
            },
        };
        let eff = pareto_efficiency(model, &[500.0, 500.0], &[0.1, 0.1]);
        println!("{:<10} {:>18} {:>18.3}", kind.to_string(), friendly, eff);
    }
    {
        let model = CcModel::dts(DtsConfig::default());
        let base = [0.05, 0.05]; // design-point ratio 1/2 → ψ = 1
        let v = FlowView { x: &x, rtt: &rtt, base_rtt: &base };
        let friendly = match check_condition1(&model, &v, 1e-6) {
            Ok(()) => "satisfied".to_owned(),
            Err(e) => format!("violated ({e})"),
        };
        let eff = pareto_efficiency(model, &[500.0, 500.0], &[0.1, 0.1]);
        println!("{:<10} {:>18} {:>18.3}", "dts", friendly, eff);
    }

    // Packet-level tournament.
    println!("\nPacket-level: 8 MB over two bursty 100 Mb/s paths:\n");
    println!("{:<10} {:>11} {:>9} {:>9} {:>9}", "algo", "energy (J)", "fct (s)", "Mb/s", "rexmits");
    let opts = BurstyOptions {
        transfer_bytes: Some(8_000_000),
        duration_s: 180.0,
        ..BurstyOptions::default()
    };
    let mut entries: Vec<CcChoice> =
        AlgorithmKind::ALL.iter().map(|k| CcChoice::Base(*k)).collect();
    entries.push(CcChoice::dts());
    // The φ delay target is a per-deployment knob (Equation (7)); on these
    // 20 ms-base WAN paths with 100-packet buffers a 20 ms target is the
    // sensible setting (the 5 ms default suits the wireless scenario).
    entries.push(CcChoice::DtsPhi(mptcp_energy_repro::paper::DtsPhiConfig {
        queue_target_s: 0.020,
        ..Default::default()
    }));
    for cc in entries {
        let r = run_two_path_bursty(&cc, &opts);
        println!(
            "{:<10} {:>11.1} {:>9.1} {:>9.2} {:>9}",
            r.label,
            r.energy.joules,
            r.finish_s.unwrap_or(f64::NAN),
            r.goodput_bps / 1e6,
            r.rexmits
        );
    }
}
