//! Hybrid fluid/packet engine: integrate long-lived flows as the paper's
//! Equation (3) ODEs while short transfers run packet-by-packet on the
//! same FatTree, coupled each epoch through background load and queueing
//! delay (DESIGN.md §14).
//!
//! ```sh
//! cargo run --release --example hybrid_engine
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::energy::WiredCpuModel;
use mptcp_energy_repro::netsim::{SimDuration, Simulator};
use mptcp_energy_repro::paper::hybrid::{fluid_model_of, HybridConfig, HybridEngine};
use mptcp_energy_repro::paper::scenarios::CcChoice;
use mptcp_energy_repro::topology::{FatTree, LinkParams};
use mptcp_energy_repro::transport::FlowConfig;
use mptcp_energy_repro::workload::permutation_pairs;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run(cc: &CcChoice) -> (f64, f64, u64) {
    const HOST_BPS: u64 = 100_000_000;
    let mut sim = Simulator::new(7);
    let params = LinkParams::new(HOST_BPS, SimDuration::from_micros(100)).queue(32);
    let ft = FatTree::build(&mut sim, 4, params);
    let hosts = ft.hosts();

    let cfg = HybridConfig {
        epoch_s: 0.1,
        fluid_dt: 1e-3,
        // Short transfers still running after two epochs cross into the
        // fluid regime — the packet→fluid handoff in miniature.
        handoff_age_s: 0.2,
        ..HybridConfig::default()
    };
    let model = fluid_model_of(cc).expect("every model below has a fluid form");
    let mut eng = HybridEngine::new(sim, hosts, WiredCpuModel::energy_proportional_server(), cfg);

    // 16 long-lived flows (fluid, two subflows each) + 8 short transfers
    // (packet-level) over permutation traffic.
    let mut rng = SmallRng::seed_from_u64(42);
    let pairs = permutation_pairs(hosts, &mut rng);
    let x0 = HOST_BPS as f64 / (8.0 * 1500.0 * 4.0);
    for &(src, dst) in pairs.iter().take(16) {
        let paths = ft.sample_paths(src, dst, 2, &mut rng);
        eng.add_fluid_flow(model, &paths, x0, src);
    }
    let short_pairs = permutation_pairs(hosts, &mut rng);
    for (j, &(src, dst)) in short_pairs.iter().take(8).enumerate() {
        let paths = ft.sample_paths(src, dst, 2, &mut rng);
        let fc = FlowConfig::new(j as u64)
            .transfer_pkts(64 + 512 * j as u64)
            .min_rto(SimDuration::from_millis(10))
            .rcv_buf_pkts(512);
        eng.add_packet_flow_from(fc, cc, &paths, SimDuration::from_millis(5 * j as u64), src);
    }

    eng.run_epochs(4);
    (eng.joules_per_gbit(), eng.delivered_bits() / 0.4, eng.counters().handoffs)
}

fn main() {
    println!("Hybrid fluid/packet engine on FatTree(k=4), 16 fluid + 8 packet flows:\n");
    println!("{:<8} {:>10} {:>14} {:>9}", "algo", "J/Gbit", "goodput Mb/s", "handoffs");
    for cc in
        [CcChoice::Base(AlgorithmKind::Lia), CcChoice::Base(AlgorithmKind::Olia), CcChoice::dts()]
    {
        let (jpg, bps, handoffs) = run(&cc);
        let label = match &cc {
            CcChoice::Base(k) => format!("{k:?}").to_lowercase(),
            _ => "dts".into(),
        };
        println!("{:<8} {:>10.1} {:>14.1} {:>9}", label, jpg, bps / 1e6, handoffs);
    }
    println!("\nLong-lived flows advance as Equation-(3) ODEs (cheap at any");
    println!("scale); short transfers stay packet-accurate, and stragglers");
    println!("hand off to the fluid regime mid-run. The same engine drives");
    println!("the FatTree(k=32) / 100 000-flow study in `hybrid_scale`.");
}
