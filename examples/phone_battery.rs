//! Phone battery impact of multipath upload over WiFi + 4G — the mobile
//! scenario the paper's introduction motivates (ubiquitous devices with two
//! radios) and its Fig. 17 evaluates.
//!
//! Estimates how much battery a 10-minute multipath upload session costs
//! under each congestion controller.
//!
//! ```sh
//! cargo run --release --example phone_battery
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::paper::scenarios::{run_wireless, CcChoice, WirelessOptions};

/// Nexus-5-class battery: 2300 mAh at 3.8 V ≈ 31.5 kJ.
const BATTERY_J: f64 = 2300.0 * 3.8 * 3.6;

fn main() {
    let opts = WirelessOptions { duration_s: 120.0, ..WirelessOptions::default() };
    println!(
        "Uploading for {:.0} s over WiFi (10 Mb/s, 40 ms) + 4G (20 Mb/s, 100 ms)",
        opts.duration_s
    );
    println!("with bursty interference on both links.\n");
    println!(
        "{:<10} {:>11} {:>9} {:>14} {:>16}",
        "algo", "energy (J)", "Mb/s", "J per 100 Mb", "battery %/10min"
    );
    let wireless_phi = mptcp_energy_repro::paper::DtsPhiConfig {
        kappa: 2e-3, // strong price: throttle the expensive 4G path hard
        ..Default::default()
    };
    for cc in [
        CcChoice::Base(AlgorithmKind::Lia),
        CcChoice::Base(AlgorithmKind::WVegas),
        CcChoice::dts(),
        CcChoice::DtsPhi(wireless_phi),
    ] {
        let r = run_wireless(&cc, &opts);
        let delivered_mb = r.goodput_bps * opts.duration_s / 1e6;
        let j_per_100mb =
            if delivered_mb > 0.0 { r.energy.joules / delivered_mb * 100.0 } else { f64::INFINITY };
        let pct_10min = r.energy.joules / opts.duration_s * 600.0 / BATTERY_J * 100.0;
        println!(
            "{:<10} {:>11.1} {:>9.2} {:>14.1} {:>15.2}%",
            r.label,
            r.energy.joules,
            r.goodput_bps / 1e6,
            j_per_100mb,
            pct_10min
        );
    }
    println!("\nDTS-Φ throttles the expensive, congested 4G path: ~10% lower");
    println!("battery drain, paid for with some raw throughput — the energy/");
    println!("throughput tradeoff the paper's Fig. 17 reports.");
}
