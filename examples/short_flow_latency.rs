//! Mice vs elephants: flow-completion-time percentiles for short transfers
//! racing long-lived background flows in a FatTree — the mixed datacenter
//! traffic the paper's burstiness discussion motivates, and the
//! responsiveness side of DTS's energy/responsiveness tradeoff (§V-A).
//!
//! ```sh
//! cargo run --release --example short_flow_latency
//! ```

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::paper::scenarios::{run_short_flows, CcChoice, ShortFlowOptions};
use mptcp_energy_repro::workload::ShortFlowConfig;

fn main() {
    let opts = ShortFlowOptions {
        mice: ShortFlowConfig { rate_per_s: 15.0, horizon_s: 8.0, ..Default::default() },
        ..ShortFlowOptions::default()
    };
    println!("Poisson mice (10 KB – 1 MB) over FatTree(k=4) with 4 elephants:\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "algo", "done", "p50 (ms)", "p90 (ms)", "p99 (ms)"
    );
    for cc in [
        CcChoice::Base(AlgorithmKind::Reno),
        CcChoice::Base(AlgorithmKind::Lia),
        CcChoice::Base(AlgorithmKind::Olia),
        CcChoice::dts(),
        CcChoice::dts_phi(),
    ] {
        let r = run_short_flows(&cc, &opts);
        println!(
            "{:<10} {:>7.0}% {:>10.1} {:>10.1} {:>10.1}",
            r.label,
            100.0 * r.completion_rate,
            1000.0 * r.fct_percentile(0.5),
            1000.0 * r.fct_percentile(0.9),
            1000.0 * r.fct_percentile(0.99),
        );
    }
    println!("\nDTS trades some tail latency for its energy savings when queues");
    println!("stay inflated — the paper's responsiveness tradeoff, quantified.");
}
