//! Trace forensics: run a faulted two-path transfer with the `obs` layer
//! attached — a streaming JSONL trace on disk plus an in-memory ring of the
//! last few control-plane events — then read the trace back through the
//! `trace_dump` summarizer and print the counter snapshot.
//!
//! ```sh
//! cargo run --release --example trace_forensics
//! ```
//!
//! Tracing is purely observational: re-running this binary produces the
//! same numbers with or without the sink installed (DESIGN.md §9).

use mptcp_energy_repro::congestion::AlgorithmKind;
use mptcp_energy_repro::netsim::{
    FaultAction, FaultScript, LossModel, SimDuration, SimTime, Simulator,
};
use mptcp_energy_repro::obs;
use mptcp_energy_repro::paper::scenarios::counters_of;
use mptcp_energy_repro::paper::CcChoice;
use mptcp_energy_repro::topology::TwoPath;
use mptcp_energy_repro::transport::{attach_flow, FlowConfig};
use std::io::BufReader;

fn main() {
    let dir = std::env::temp_dir().join("mptcp-trace-forensics");
    let label = "demo-cell";

    // The scenario: 20 000 packets over two 10 Mb/s paths. Path 1 picks up
    // 2 % random loss at t = 1 s; path 2 goes completely dark from 5 s to
    // 12 s, long enough for the sender to declare it dead and revive it.
    let mut sim = Simulator::new(9);
    if let Some(sink) = obs::jsonl_sink_in(&dir, label) {
        sim.set_trace_sink(sink);
    }
    let tp = TwoPath::dual_nic(&mut sim, 10_000_000, SimDuration::from_millis(10));
    let down = SimTime::from_secs_f64(5.0);
    let up = SimTime::from_secs_f64(12.0);
    FaultScript::new()
        .at(
            SimTime::from_secs_f64(1.0),
            FaultAction::SetLoss { link: tp.p1.fwd, model: LossModel::iid(0.02) },
        )
        .blackout(tp.p2.fwd, down, up)
        .blackout(tp.p2.rev, down, up)
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_pkts(20_000).dead_after_backoffs(Some(3)),
        CcChoice::Base(AlgorithmKind::Lia).build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(60.0));
    drop(sim.take_trace_sink()); // detach + flush

    println!(
        "transfer finished at t = {:.2} s ({} pkts acked)\n",
        flow.finish_time(&sim).map_or(f64::NAN, netsim::SimTime::as_secs_f64),
        flow.sender_ref(&sim).data_acked(),
    );

    println!("== counter snapshot (always on, no sink needed) ==");
    print!("{}", counters_of(&sim, std::slice::from_ref(&flow)).render());

    let path = obs::trace_path(&dir, label);
    let file = std::fs::File::open(&path).expect("trace file must exist");
    let summary = obs::summarize(BufReader::new(file)).expect("trace must read back");
    println!("\n== {} (what `trace_dump` prints) ==", path.display());
    print!("{}", summary.render());

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
