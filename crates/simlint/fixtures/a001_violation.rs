// Fixture: A001 must fire on bare integer `as` casts in time/sequence
// arithmetic (the PR 2 `rto_backed_off` overflow class).
use netsim::time::SimDuration;

pub fn serialization_ns(bytes: u32, bandwidth_bps: u64) -> SimDuration {
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bandwidth_bps as u128;
    SimDuration::from_nanos(ns as u64)
}

pub fn truncate_seq(seq: u64) -> u32 {
    seq as u32
}
