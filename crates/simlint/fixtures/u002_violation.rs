//! U002 fixture: additive/comparison arithmetic across unit tags.

pub fn over_budget(used_bytes: u64, cap_bits: u64) -> bool {
    used_bytes > cap_bits // bytes compared against bits
}

pub fn drift(mut acc_ns: u64, step_ms: u64) -> u64 {
    acc_ns += step_ms; // nanoseconds accumulated from milliseconds
    acc_ns
}
