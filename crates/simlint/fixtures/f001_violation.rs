// Fixture: F001 must fire on exact comparisons against float literals.
pub fn is_disabled(p: f64) -> bool {
    p == 0.0
}

pub fn is_full(q: f64) -> bool {
    1.0 != q
}
