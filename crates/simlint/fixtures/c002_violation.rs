//! C002 fixture: `.lock().unwrap()` / `.join().unwrap()` — a poisoned
//! mutex or a panicked worker aborts the supervisor instead of being
//! quarantined.

pub fn drain(handle: JoinHandle<u32>, state: &Mutex<u32>) -> u32 {
    let got = handle.join().unwrap();
    let mut guard = state.lock().expect("state poisoned");
    *guard += got;
    *guard
}
