// Fixture: waiver hygiene. A reasonless waiver is W001; a waiver that
// matches no finding is W002; neither silences the underlying finding.

pub fn missing_reason(p: f64) -> bool {
    p == 0.0 // simlint: allow(F001)
}

pub fn unknown_rule(p: f64) -> bool {
    p == 0.0 // simlint: allow(Z999, no such rule)
}

pub fn unused(n: usize) -> bool {
    n == 0 // simlint: allow(F001, integers compare exactly so this never fires)
}
