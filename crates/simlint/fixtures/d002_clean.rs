// Fixture: simulated time is fine; "Instant" in prose must not fire.
use netsim::time::{SimDuration, SimTime};

/// Returns the instant one tick later (the word "Instant" in a comment is
/// not a wall-clock read).
pub fn next_tick(now: SimTime) -> SimTime {
    now + SimDuration::from_millis(1)
}
