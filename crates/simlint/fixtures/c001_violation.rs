//! C001 fixture: the same two locks taken in both orders — the deadlock
//! seed a unit test will never reliably reproduce.

pub struct Hub {
    spool: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Hub {
    pub fn publish(&self) -> u32 {
        let s = self.spool.lock();
        let j = self.journal.lock();
        0
    }

    pub fn merge(&self) -> u32 {
        let j = self.journal.lock();
        let s = self.spool.lock(); // reverse order of `publish`
        0
    }
}
