// Fixture: D002 must fire on wall-clock reads inside simulation crates.
use std::time::Instant;

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}
