//! U001 clean fixture: unit flows with explicit scaling or conversions.

pub fn wire_cost(len_bytes: u64) -> u64 {
    let frame_bits = len_bytes * 8; // scaling is the sanctioned conversion
    frame_bits
}

pub fn window(rate_bps: u64, budget_bytes: u64) -> u64 {
    let window_bps = bytes_to_bits(budget_bytes); // named conversion
    let same_bytes = budget_bytes; // same unit both sides
    window_bps.min(rate_bps).min(same_bytes * 8)
}
