// Fixture: error propagation, stated invariants, and test code are clean.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn invariant(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty(), "caller guarantees non-empty input");
    xs.iter().copied().fold(0, u32::max)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32, 2];
        assert_eq!(*xs.first().unwrap(), 1);
        let n: u32 = "7".parse().expect("test data");
        assert_eq!(n, 7);
    }
}
