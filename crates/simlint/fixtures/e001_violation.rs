//! E001 fixture: a wildcard arm swallowing enum variants, and an arm
//! naming a variant the enum does not have.

pub enum DropKind {
    Full,
    Corrupt,
    Seeded,
}

pub fn weight(k: DropKind) -> u32 {
    match k {
        DropKind::Full => 2,
        _ => 1, // silently swallows Corrupt and Seeded (and any new variant)
    }
}

pub fn label(k: DropKind) -> u32 {
    match k {
        DropKind::Full => 0,
        DropKind::Gone => 1, // not a variant: stale arm or typo
        DropKind::Corrupt => 2,
        DropKind::Seeded => 3,
    }
}
