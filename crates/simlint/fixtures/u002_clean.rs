//! U002 clean fixture: same-unit arithmetic, or mixes behind explicit
//! scaling.

pub fn over_budget(used_bytes: u64, cap_bits: u64) -> bool {
    used_bytes * 8 > cap_bits // the scale factor converts bytes to bits
}

pub fn drift(mut acc_ns: u64, step_ns: u64) -> u64 {
    acc_ns += step_ns;
    acc_ns
}
