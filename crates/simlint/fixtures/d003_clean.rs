// Fixture: seeded generators are the sanctioned path.
use rand::{rngs::SmallRng, Rng, SeedableRng};

pub fn roll(seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen::<f64>()
}
