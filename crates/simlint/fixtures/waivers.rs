// Fixture: well-formed waivers silence findings (same-line and
// preceding-line forms), leaving the file clean.

pub fn sentinel(p: f64) -> bool {
    p == 0.0 // simlint: allow(F001, canonical exact-zero sentinel for this fixture)
}

pub fn must(x: Option<u32>) -> u32 {
    // simlint: allow(P001, fixture demonstrates the preceding-line waiver form)
    x.unwrap()
}
