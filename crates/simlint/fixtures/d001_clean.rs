// Fixture: BTree collections are deterministic; mentions of HashMap in
// comments or strings must not fire.
use std::collections::{BTreeMap, BTreeSet};

/// Unlike a `HashMap`, iteration order here is the key order.
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn label() -> (&'static str, BTreeSet<u32>) {
    ("not a real HashSet", BTreeSet::new())
}
