// Fixture: D001 must fire on nondeterministic hash collections.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn seen() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new()
}
