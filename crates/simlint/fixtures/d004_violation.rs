//! D004 fixture: wall-clock-derived values reaching sim-state sinks
//! through intermediate bindings (the flows call-site D002 cannot see).

pub fn stamp() -> SimTime {
    let wall = SystemTime::now();
    let t: SimTime = wall; // tainted binding into a sim-state type
    t
}

pub fn pace(clock: Instant) -> SimDuration {
    let lag = clock.elapsed();
    SimDuration::from_nanos(lag) // tainted argument into a constructor
}
