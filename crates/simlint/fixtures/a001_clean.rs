// Fixture: saturating/checked conversions in time arithmetic are clean, and
// integer casts on lines without time/sequence markers are out of scope.
use netsim::time::SimDuration;

pub fn serialization_ns(bytes: u32, bandwidth_bps: u64) -> SimDuration {
    let ns = (u128::from(bytes) * 8 * 1_000_000_000) / u128::from(bandwidth_bps);
    SimDuration::from_nanos_u128(ns)
}

pub fn clamp_window(pkts: u64) -> u32 {
    u32::try_from(pkts).unwrap_or(u32::MAX)
}

pub fn index(i: u32) -> usize {
    // No time/sequence marker on this line: plain index widening is fine.
    i as usize
}
