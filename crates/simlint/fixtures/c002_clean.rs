//! C002 clean fixture: join results propagated, poison mapped through —
//! and `Path::join` (arguments in the parens) is not a thread join.

pub fn drain(handle: JoinHandle<u32>, state: &Mutex<u32>, dir: &Path) -> u32 {
    let got = match handle.join() {
        Ok(v) => v,
        Err(_) => 0,
    };
    let mut guard = state.lock().unwrap_or_else(PoisonError::into_inner);
    *guard += got;
    let _spool = dir.join(SPOOL_NAME);
    *guard
}
