// Fixture: tolerance compares and integer equality are clean.
pub fn is_disabled(p: f64) -> bool {
    p.abs() < 1e-12
}

pub fn is_close(q: f64) -> bool {
    (q - 1.0).abs() < 1e-9
}

pub fn is_zero_len(n: usize) -> bool {
    n == 0
}
