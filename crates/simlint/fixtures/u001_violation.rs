//! U001 fixture: unit-tagged values crossing tags without a conversion.

pub fn wire_cost(len_bytes: u64) -> u64 {
    let frame_bits = len_bytes; // bytes flowing into a bits binding
    frame_bits
}

pub fn window(rate_bps: u64, budget_bytes: u64) -> u64 {
    let window_bps = budget_bytes; // bytes flowing into a bps binding
    window_bps.min(rate_bps)
}
