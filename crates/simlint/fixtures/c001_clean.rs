//! C001 clean fixture: one lock-acquisition order, everywhere in the file.

pub struct Hub {
    spool: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Hub {
    pub fn publish(&self) -> u32 {
        let s = self.spool.lock();
        let j = self.journal.lock();
        0
    }

    pub fn merge(&self) -> u32 {
        let s = self.spool.lock();
        let j = self.journal.lock();
        0
    }
}
