//! E001 clean fixture: every variant listed (a wildcard after a full
//! listing is fine), and wrapped/foreign matches stay out of scope.

pub enum DropKind {
    Full,
    Corrupt,
    Seeded,
}

pub fn weight(k: DropKind) -> u32 {
    match k {
        DropKind::Full => 2,
        DropKind::Corrupt | DropKind::Seeded => 1,
    }
}

pub fn listed_with_default(k: DropKind) -> u32 {
    match k {
        DropKind::Full => 2,
        DropKind::Corrupt => 1,
        DropKind::Seeded => 1,
        _ => 0, // unreachable, but every variant is accounted for above
    }
}

pub fn wrapped(k: Option<DropKind>) -> u32 {
    match k {
        Some(DropKind::Full) => 2,
        _ => 0, // Option-wrapped patterns are out of E001's scope
    }
}
