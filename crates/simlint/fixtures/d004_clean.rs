//! D004 clean fixture: sim state built only from simulated-clock values.

pub fn pace(now_ns: u64) -> SimDuration {
    let lag_ns = now_ns;
    SimDuration::from_nanos(lag_ns)
}

pub fn stamp(start: SimTime, delta: SimDuration) -> SimTime {
    let t = start.saturating_add(delta);
    t
}
