// Fixture: P001 must fire on panicking shortcuts in library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}

pub fn forbidden() {
    panic!("library code must not panic");
}
