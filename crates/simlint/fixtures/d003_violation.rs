// Fixture: D003 must fire on every unseeded randomness source.
pub fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    let y = rand::rngs::SmallRng::from_entropy().gen::<f64>();
    let _os = rand::rngs::OsRng;
    x + y + rng.gen::<f64>()
}
