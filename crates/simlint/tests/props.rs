//! Property tests: the lexer, parser, and full pipeline are total — they
//! never panic and always terminate, on *any* input, because the linter
//! runs on every file in the workspace including ones mid-edit. A lint
//! tool that crashes on malformed source is worse than no lint tool.

use proptest::collection::vec;
use proptest::prelude::*;

use simlint::lexer::{split_lines, tokenize};
use simlint::parser::{parse, token_stream};

/// Fragments chosen to collide: every delimiter that changes lexer mode
/// (string/char/comment/raw-string starts and ends) plus ordinary code, so
/// random concatenations constantly open constructs and never close them,
/// or close ones that were never opened.
fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn f("),
        Just(") {"),
        Just("}"),
        Just("let x_ns = "),
        Just("a_bytes + b_bits"),
        Just(";"),
        Just("\n"),
        Just("\""),
        Just("\\\""),
        Just("'"),
        Just("'a"),
        Just("'\\n'"),
        Just("r#\""),
        Just("\"#"),
        Just("r##\""),
        Just("/*"),
        Just("*/"),
        Just("//"),
        Just("match x {"),
        Just("=>"),
        Just("enum E { A, B }"),
        Just("impl T {"),
        Just(".lock()"),
        Just(".unwrap()"),
        Just("::"),
        Just("𝕏"),
        Just("\u{0}"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw bytes (lossily decoded): the lexer must not panic, and the line
    /// split must agree with the naive newline count so every diagnostic
    /// line number is meaningful.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..300)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lines = split_lines(&src);
        prop_assert_eq!(lines.len(), src.split('\n').count());
        for line in &lines {
            let _ = tokenize(&line.code);
        }
    }

    /// Adversarial fragment soup: parser and full pipeline are total even
    /// when string/comment/char constructs open and never close.
    #[test]
    fn pipeline_is_total_on_fragment_soup(parts in vec(fragment(), 0..60)) {
        let src = parts.concat();
        let lines = split_lines(&src);
        let toks = token_stream(&lines);
        let items = parse(&toks);
        // Parsed spans must stay inside the token stream.
        for f in &items.fns {
            prop_assert!(f.body.end <= toks.len());
        }
        let findings = simlint::lint_source("crates/core/src/fx.rs", &src);
        for f in &findings {
            prop_assert!(f.line >= 1 && f.line <= lines.len(), "line {} of {}", f.line, lines.len());
        }
    }

    /// Prefix closure: truncating a file at any char boundary (as an editor
    /// save mid-keystroke would) still lexes, and the untruncated prefix of
    /// the line structure is unchanged — blanking decisions depend only on
    /// what came before.
    #[test]
    fn lexing_is_prefix_closed(parts in vec(fragment(), 0..40), frac in 0.0f64..1.0) {
        let src = parts.concat();
        let cut = src
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(src.len()))
            .nth((frac * src.chars().count() as f64) as usize)
            .unwrap_or(src.len());
        let prefix = &src[..cut];
        let full = split_lines(&src);
        let part = split_lines(prefix);
        prop_assert_eq!(part.len(), prefix.split('\n').count());
        // Every fully-contained line of the prefix matches the full parse.
        for (a, b) in part.iter().zip(full.iter()).take(part.len().saturating_sub(1)) {
            prop_assert_eq!(&a.code, &b.code);
        }
    }
}

/// Inputs that broke (or nearly broke) earlier lexer revisions; kept as a
/// fixed corpus so the property tests' random walk is not the only thing
/// standing between a regression and the workspace scan.
#[test]
fn regression_corpus_is_total() {
    const CORPUS: &[&str] = &[
        // Raw strings with hashes, terminated and not.
        "let s = r#\"quote \" inside\"#; let after_ns = 1;",
        "let s = r##\"sharp \"# inside\"##;",
        "let s = r#\"unterminated",
        // Nested block comments.
        "/* outer /* inner */ still outer */ let x = 1;",
        "/* unterminated /* nested",
        // Lifetime vs char literal.
        "fn f<'a>(x: &'a str) -> &'a str { x }",
        "let c = '\\n'; let l: &'static str = \"s\";",
        "let c = 'x'; struct S<'b>(&'b u8);",
        // Char literal containing a newline-ish escape, then a real newline.
        "let c = '\\'';\nlet d = 1;",
        // Unterminated string swallowing the rest of the line only.
        "let s = \"open\nlet next_line = 1;",
        // Lone openers at EOF.
        "\"",
        "'",
        "r#",
        "/*",
        "//",
        "'\\",
    ];
    for src in CORPUS {
        let lines = split_lines(src);
        assert_eq!(lines.len(), src.split('\n').count(), "line count for {src:?}");
        let toks = token_stream(&lines);
        let _ = parse(&toks);
        let _ = simlint::lint_source("crates/core/src/fx.rs", src);
    }
}
