//! The real workspace must be violation-free: this is the same scan CI runs
//! via `cargo run -p simlint -- --check`, executed as a tier-1 test so a
//! regression fails `cargo test` even before the lint job runs.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/simlint has a workspace root two levels up");
    assert!(root.join("Cargo.toml").is_file(), "bad workspace root {}", root.display());

    let report = simlint::check(root, &root.join("simlint.baseline")).expect("lint I/O");
    assert!(
        report.fresh.is_empty(),
        "workspace has unwaived simlint findings:\n{}",
        report.fresh.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.stale.is_empty(), "stale baseline entries (delete them): {:?}", report.stale);
}

#[test]
fn checked_in_baseline_is_empty() {
    // Repo policy (ISSUE 5 acceptance): all pre-existing violations were
    // fixed or inline-waived; the baseline file exists only as a documented
    // burn-down mechanism for future rules.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let text = std::fs::read_to_string(root.join("simlint.baseline"))
        .expect("simlint.baseline is checked in");
    assert!(
        simlint::baseline::parse(&text).is_empty(),
        "the checked-in baseline must stay empty; fix or inline-waive instead"
    );
}
