//! Cross-file analyses: the symbol index must make facts declared in one
//! file visible to rules running over another, and the parallel pipeline
//! must be an exact refactor of the serial one.

use std::path::Path;
use std::time::Instant;

use simlint::lint_sources;

/// Enum declared in one file, matched in another. The match lists every
/// variant with no wildcard, so it is clean — until a variant is deleted
/// from the *defining* file, at which point the stale arm in the *other*
/// file names an unknown variant and E001 fires. This is the liveness
/// property the whole index exists for: the lint moves a bug that rustc
/// only reports at the match site into the same diagnostic run that sees
/// the enum edit.
#[test]
fn e001_flips_when_variant_deleted_in_other_file() {
    let enum_src = "pub enum LinkPhase {\n    Up,\n    Down,\n    Probing,\n}\n";
    let match_src = "pub fn weight(p: LinkPhase) -> u32 {\n    match p {\n        \
                     LinkPhase::Up => 2,\n        LinkPhase::Down => 0,\n        \
                     LinkPhase::Probing => 1,\n    }\n}\n";

    let clean = lint_sources(&[
        ("crates/core/src/kind.rs".to_string(), enum_src.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), match_src.to_string()),
    ]);
    assert!(clean.findings.is_empty(), "exhaustive cross-file match flagged: {:?}", clean.findings);

    let shrunk_enum = "pub enum LinkPhase {\n    Up,\n    Down,\n}\n";
    let report = lint_sources(&[
        ("crates/core/src/kind.rs".to_string(), shrunk_enum.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), match_src.to_string()),
    ]);
    let e001: Vec<_> = report.findings.iter().filter(|f| f.rule == "E001").collect();
    assert_eq!(e001.len(), 1, "expected one E001 after variant deletion: {:?}", report.findings);
    assert_eq!(e001[0].file, "crates/netsim/src/fx.rs");
    assert!(e001[0].message.contains("LinkPhase::Probing"), "{}", e001[0].message);
}

/// A wildcard in the consuming file swallows variants of an enum it never
/// sees locally: the index supplies the variant list.
#[test]
fn e001_sees_wildcard_against_foreign_enum() {
    let enum_src = "pub enum LinkPhase {\n    Up,\n    Down,\n    Probing,\n}\n";
    let match_src = "pub fn up(p: LinkPhase) -> bool {\n    match p {\n        \
                     LinkPhase::Up => true,\n        _ => false,\n    }\n}\n";
    let report = lint_sources(&[
        ("crates/core/src/kind.rs".to_string(), enum_src.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), match_src.to_string()),
    ]);
    let e001: Vec<_> = report.findings.iter().filter(|f| f.rule == "E001").collect();
    assert_eq!(e001.len(), 1, "{:?}", report.findings);
    assert!(e001[0].message.contains("Down"), "{}", e001[0].message);
    assert!(e001[0].message.contains("Probing"), "{}", e001[0].message);
}

/// Unit tags cross files through call arguments: a function declared with a
/// `_bytes` parameter in one file, fed a `_bits` value from another.
#[test]
fn u001_crosses_files_through_call_arguments() {
    let callee = "pub fn enqueue(buf_bytes: u64) -> u64 {\n    buf_bytes\n}\n";
    let caller = "pub fn feed(frame_bits: u64) -> u64 {\n    enqueue(frame_bits)\n}\n";
    let report = lint_sources(&[
        ("crates/core/src/queue.rs".to_string(), callee.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), caller.to_string()),
    ]);
    let u001: Vec<_> = report.findings.iter().filter(|f| f.rule == "U001").collect();
    assert_eq!(u001.len(), 1, "{:?}", report.findings);
    assert_eq!(u001[0].file, "crates/netsim/src/fx.rs");

    // Converting at the call site silences it.
    let fixed = "pub fn feed(frame_bits: u64) -> u64 {\n    enqueue(frame_bits / 8)\n}\n";
    let report = lint_sources(&[
        ("crates/core/src/queue.rs".to_string(), callee.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), fixed.to_string()),
    ]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

/// Two files re-declaring the same enum differently poison the index entry;
/// rules must go silent rather than guess which definition wins.
#[test]
fn ambiguous_symbols_disable_cross_file_rules() {
    let enum_a = "pub enum LinkPhase {\n    Up,\n    Down,\n}\n";
    let enum_b = "pub enum LinkPhase {\n    Up,\n    Down,\n    Probing,\n}\n";
    let match_src = "pub fn up(p: LinkPhase) -> bool {\n    match p {\n        \
                     LinkPhase::Up => true,\n        _ => false,\n    }\n}\n";
    let report = lint_sources(&[
        ("crates/core/src/kind.rs".to_string(), enum_a.to_string()),
        ("crates/transport/src/kind.rs".to_string(), enum_b.to_string()),
        ("crates/netsim/src/fx.rs".to_string(), match_src.to_string()),
    ]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/simlint has a workspace root two levels up");
    assert!(root.join("Cargo.toml").is_file(), "bad workspace root {}", root.display());
    root
}

/// The thread-pool pipeline must produce byte-identical output to the
/// serial path over the real workspace, regardless of scheduling.
#[test]
fn parallel_and_serial_scans_agree() {
    let root = workspace_root();
    let serial = simlint::lint_workspace_with_jobs(root, 1).expect("serial scan");
    let parallel = simlint::lint_workspace_with_jobs(root, 8).expect("parallel scan");
    assert_eq!(serial.findings, parallel.findings);
    assert_eq!(serial.waived, parallel.waived);
}

/// Acceptance bound: the full three-phase scan of the real workspace stays
/// interactive. CI enforces <5s; the local bound is tighter to leave slack.
#[test]
fn workspace_scan_is_fast() {
    let root = workspace_root();
    let start = Instant::now();
    let findings = simlint::lint_workspace(root).expect("scan");
    let elapsed = start.elapsed();
    // Touch the result so the scan cannot be optimised away.
    assert!(findings.len() < 10_000);
    assert!(elapsed.as_secs_f64() < 5.0, "workspace scan took {elapsed:?} (budget 5s)");
}
