//! Fixture corpus: every rule must trip on its violating snippet and stay
//! quiet on the clean variant. Fixtures live in `crates/simlint/fixtures/`
//! (excluded from workspace scans) and are linted here under synthetic
//! workspace-relative paths that put them in each rule's scope.

use std::path::Path;

use simlint::lint_source;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn rules_hit(rel_path: &str, name: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        lint_source(rel_path, &fixture(name)).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn d001_hash_collections() {
    assert_eq!(rules_hit("crates/core/src/fx.rs", "d001_violation.rs"), ["D001"]);
    assert_eq!(rules_hit("crates/core/src/fx.rs", "d001_clean.rs"), [""; 0]);
    // D001 is workspace-wide: it fires outside the sim-core crates too.
    assert_eq!(rules_hit("crates/obs/src/fx.rs", "d001_violation.rs"), ["D001"]);
}

#[test]
fn d002_wall_clock() {
    assert_eq!(rules_hit("crates/netsim/src/fx.rs", "d002_violation.rs"), ["D002"]);
    assert_eq!(rules_hit("crates/netsim/src/fx.rs", "d002_clean.rs"), [""; 0]);
    // Out of scope: a tooling crate may time its own wall-clock runtime.
    assert_eq!(rules_hit("crates/bench/src/fx.rs", "d002_violation.rs"), [""; 0]);
}

#[test]
fn d003_unseeded_randomness() {
    assert_eq!(rules_hit("crates/workload/src/fx.rs", "d003_violation.rs"), ["D003"]);
    assert_eq!(rules_hit("crates/workload/src/fx.rs", "d003_clean.rs"), [""; 0]);
    // D003 is workspace-wide, tests included: unseeded RNG in a test makes
    // the test itself nondeterministic.
    assert_eq!(rules_hit("tests/fx.rs", "d003_violation.rs"), ["D003"]);
}

#[test]
fn a001_time_seq_casts() {
    assert_eq!(rules_hit("crates/transport/src/fx.rs", "a001_violation.rs"), ["A001"]);
    assert_eq!(rules_hit("crates/transport/src/fx.rs", "a001_clean.rs"), [""; 0]);
    // Out of scope: test files may cast known-small constants.
    assert_eq!(rules_hit("crates/transport/tests/fx.rs", "a001_violation.rs"), [""; 0]);
}

#[test]
fn f001_float_equality() {
    assert_eq!(rules_hit("crates/energy/src/fx.rs", "f001_violation.rs"), ["F001"]);
    assert_eq!(rules_hit("crates/energy/src/fx.rs", "f001_clean.rs"), [""; 0]);
}

#[test]
fn p001_library_panics() {
    assert_eq!(rules_hit("crates/obs/src/fx.rs", "p001_violation.rs"), ["P001"]);
    assert_eq!(rules_hit("crates/obs/src/fx.rs", "p001_clean.rs"), [""; 0]);
    // Out of scope: tests, benches, and binaries may panic freely.
    assert_eq!(rules_hit("crates/obs/tests/fx.rs", "p001_violation.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/obs/src/bin/fx.rs", "p001_violation.rs"), [""; 0]);
    assert_eq!(rules_hit("src/main.rs", "p001_violation.rs"), [""; 0]);
}

#[test]
fn u001_cross_unit_assignment() {
    assert_eq!(rules_hit("crates/core/src/fx.rs", "u001_violation.rs"), ["U001"]);
    assert_eq!(rules_hit("crates/core/src/fx.rs", "u001_clean.rs"), [""; 0]);
    // Out of scope: tests may wire up deliberately odd unit mixes.
    assert_eq!(rules_hit("crates/core/tests/fx.rs", "u001_violation.rs"), [""; 0]);
}

#[test]
fn u002_cross_unit_arithmetic() {
    assert_eq!(rules_hit("crates/core/src/fx.rs", "u002_violation.rs"), ["U002"]);
    assert_eq!(rules_hit("crates/core/src/fx.rs", "u002_clean.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/core/tests/fx.rs", "u002_violation.rs"), [""; 0]);
}

#[test]
fn d004_wall_clock_taint_flow() {
    // Linted under a tooling crate where call-site D002 is out of scope:
    // only the dataflow rule sees the wall-clock value reach sim state.
    assert_eq!(rules_hit("crates/bench/src/fx.rs", "d004_violation.rs"), ["D004"]);
    assert_eq!(rules_hit("crates/bench/src/fx.rs", "d004_clean.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/bench/tests/fx.rs", "d004_violation.rs"), [""; 0]);
}

#[test]
fn e001_enum_exhaustiveness() {
    assert_eq!(rules_hit("crates/netsim/src/fx.rs", "e001_violation.rs"), ["E001"]);
    assert_eq!(rules_hit("crates/netsim/src/fx.rs", "e001_clean.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/netsim/tests/fx.rs", "e001_violation.rs"), [""; 0]);
}

#[test]
fn c001_lock_order() {
    assert_eq!(rules_hit("crates/bench/src/fx.rs", "c001_violation.rs"), ["C001"]);
    assert_eq!(rules_hit("crates/bench/src/fx.rs", "c001_clean.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/bench/tests/fx.rs", "c001_violation.rs"), [""; 0]);
}

#[test]
fn c002_lock_join_unwrap() {
    // Binaries are exempt from P001, so the fixture isolates C002 there.
    assert_eq!(rules_hit("crates/bench/src/bin/fx.rs", "c002_violation.rs"), ["C002"]);
    assert_eq!(rules_hit("crates/bench/src/bin/fx.rs", "c002_clean.rs"), [""; 0]);
    assert_eq!(rules_hit("crates/bench/tests/fx.rs", "c002_violation.rs"), [""; 0]);
}

#[test]
fn findings_carry_snippets() {
    let findings = lint_source("crates/core/src/fx.rs", &fixture("u002_violation.rs"));
    assert!(!findings.is_empty());
    assert!(
        findings[0].snippet.contains("used_bytes > cap_bits"),
        "snippet missing source text: {:?}",
        findings[0].snippet
    );
}

#[test]
fn waivers_silence_findings() {
    assert_eq!(rules_hit("crates/core/src/fx.rs", "waivers.rs"), [""; 0]);
}

#[test]
fn waiver_hygiene_is_enforced() {
    let findings = lint_source("crates/obs/src/fx.rs", &fixture("waivers_bad.rs"));
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // Reasonless and unknown-rule waivers are W001 and do not suppress the
    // underlying F001; a waiver matching nothing is W002.
    assert_eq!(rules.iter().filter(|r| **r == "W001").count(), 2, "{findings:?}");
    assert_eq!(rules.iter().filter(|r| **r == "F001").count(), 2, "{findings:?}");
    assert_eq!(rules.iter().filter(|r| **r == "W002").count(), 1, "{findings:?}");
}

#[test]
fn diagnostics_have_file_line_rule_shape() {
    let findings = lint_source("crates/core/src/fx.rs", &fixture("f001_violation.rs"));
    assert!(!findings.is_empty());
    let rendered = findings[0].to_string();
    // `file:line:rule: message`, with a 1-based line number.
    assert!(
        rendered.starts_with("crates/core/src/fx.rs:3:F001: "),
        "unexpected diagnostic shape: {rendered}"
    );
}
