//! The checked-in baseline: `path:line:rule` keys for findings that predate
//! the linter and are suppressed rather than fixed.
//!
//! Policy for this repository is that the baseline stays **empty** — every
//! pre-existing violation was either fixed or carries an inline waiver with a
//! reason — but the mechanism exists so a future rule can land before its
//! fallout is fully burned down (add findings with `--write-baseline`, burn
//! them down, delete the entries).

use std::collections::BTreeSet;

use crate::rules::Finding;

/// Parses a baseline file: one `path:line:rule` key per line; blank lines and
/// `#` comments ignored. Returns the suppressed keys.
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(ToOwned::to_owned)
        .collect()
}

/// Renders findings as a baseline file body, sorted, with a header explaining
/// the burn-down policy.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# simlint baseline — suppressed pre-existing findings (path:line:rule).\n\
         # Policy: keep this file empty; fix or inline-waive instead. Entries\n\
         # here are temporary burn-down debt for newly-introduced rules.\n",
    );
    let keys: BTreeSet<String> = findings.iter().map(Finding::baseline_key).collect();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Splits findings into `(new, suppressed, stale)` against a baseline:
/// `new` are unsuppressed findings, `suppressed` were matched by the
/// baseline, and `stale` are baseline keys that matched nothing (candidates
/// for deletion).
pub fn apply(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut fresh = Vec::new();
    let mut suppressed = Vec::new();
    let mut matched: BTreeSet<&str> = BTreeSet::new();
    for f in findings {
        let key = f.baseline_key();
        if let Some(hit) = baseline.iter().find(|b| **b == key) {
            matched.insert(hit.as_str());
            suppressed.push(f);
        } else {
            fresh.push(f);
        }
    }
    let stale = baseline.iter().filter(|b| !matched.contains(b.as_str())).cloned().collect();
    (fresh, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize) -> Finding {
        Finding { file: file.into(), line, rule: "P001", message: "m".into(), snippet: "s".into() }
    }

    #[test]
    fn roundtrip_add_suppress_remove() {
        // Add: render a baseline from current findings.
        let found = vec![finding("a.rs", 3), finding("b.rs", 7)];
        let text = render(&found);
        let base = parse(&text);
        assert_eq!(base.len(), 2);

        // Suppress: the same findings are no longer "new".
        let (fresh, suppressed, stale) = apply(found.clone(), &base);
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty());

        // Remove: fixing one finding leaves its baseline entry stale.
        let (fresh, suppressed, stale) = apply(vec![finding("a.rs", 3)], &base);
        assert!(fresh.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale, vec!["b.rs:7:P001".to_owned()]);

        // A brand-new finding surfaces regardless of the baseline.
        let (fresh, _, _) = apply(vec![finding("c.rs", 1)], &base);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let base = parse("# header\n\n  a.rs:1:D001  \n");
        assert!(base.contains("a.rs:1:D001"));
        assert_eq!(base.len(), 1);
    }
}
