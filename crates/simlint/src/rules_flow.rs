//! The symbol-aware rules: what the per-line token layer cannot express.
//!
//! * **E001** — a `match` on a workspace enum whose wildcard arm swallows
//!   variants, or whose arms name variants the enum does not have. PR 9
//!   added `FaultKind`/`ChaosMode` variants and only runtime chaos drills
//!   caught the sites that silently `_`-defaulted them; E001 makes adding
//!   a variant a compile-review event, not a runtime surprise.
//! * **C001** — inconsistent `Mutex` lock-acquisition order within one
//!   file. The PR 9 dist fabric holds supervisor-side locks around spool
//!   I/O; acquiring two named locks in both orders is the textbook
//!   deadlock seed, and a linter can see it where a unit test cannot.
//! * **C002** — `.lock().unwrap()` / `.join().unwrap()` outside tests. A
//!   poisoned mutex or a panicked worker must surface as a quarantined
//!   error (`PoisonError::into_inner` or a propagated join result), not a
//!   supervisor abort mid-sweep.
//! * **U001/U002/D004** — driven here per function body; the lattice
//!   machinery lives in [`crate::dataflow`].
//!
//! All flow rules share one scope: `src/` files outside `tests/`/
//! `benches/`/`examples/` and outside `#[cfg(test)]` regions.

use std::collections::BTreeMap;

use crate::dataflow::analyze_fn;
use crate::index::SymbolIndex;
use crate::parser::{matching_close, FileItems, PTok};

/// A flow-rule diagnostic, merged into the file's findings by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDiag {
    /// 1-based line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

fn ident_at(toks: &[PTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

fn punct_at(toks: &[PTok], i: usize, p: &str) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is_punct(p))
}

/// Runs every flow rule over one analyzed file. `toks` is the file's full
/// positioned token stream, `items` its parse, `test_mask[line-1]` marks
/// `#[cfg(test)]` regions, and `index` the workspace symbols.
pub fn run(
    toks: &[PTok],
    items: &FileItems,
    test_mask: &[bool],
    index: &SymbolIndex,
) -> Vec<FlowDiag> {
    let in_test = |line: usize| test_mask.get(line - 1).copied().unwrap_or(false);
    let mut out = Vec::new();

    for f in &items.fns {
        if in_test(f.line) || f.body.is_empty() {
            continue;
        }
        for d in analyze_fn(toks, f, index) {
            out.push(FlowDiag { line: d.line, rule: d.rule, message: d.message });
        }
    }
    e001_match_exhaustiveness(toks, items, &in_test, index, &mut out);
    c001_lock_order(toks, items, &in_test, &mut out);
    c002_lock_join_unwrap(toks, &in_test, &mut out);
    out
}

/// The `Enum::Variant` (or `Self::Variant`) path a match-arm pattern starts
/// with, after stripping leading `&`/`(` — `None` for bindings, literals,
/// wrapped patterns (`Some(Enum::X)`), and paths deeper than two segments.
fn arm_head_path(toks: &[PTok], mut i: usize, end: usize) -> Option<(&str, &str)> {
    while i < end && (punct_at(toks, i, "&") || punct_at(toks, i, "(")) {
        i += 1;
    }
    let first = ident_at(toks, i)?;
    if !punct_at(toks, i + 1, "::") {
        return None;
    }
    let second = ident_at(toks, i + 2)?;
    // Deeper paths (`mod::Enum::Variant`) are skipped: without module
    // resolution the head segment is not reliably the enum.
    if punct_at(toks, i + 3, "::") {
        return None;
    }
    Some((first, second))
}

/// E001: non-exhaustive `match` over an indexed workspace enum.
fn e001_match_exhaustiveness(
    toks: &[PTok],
    items: &FileItems,
    in_test: &dyn Fn(usize) -> bool,
    index: &SymbolIndex,
    out: &mut Vec<FlowDiag>,
) {
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) != Some("match") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // The match body is the next `{` at scrutinee depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].tok.punct() {
                Some("(" | "[") => depth += 1,
                Some(")" | "]") => depth -= 1,
                Some("{") if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let body_end = matching_close(toks, j);
        if in_test(line) {
            i = j + 1;
            continue;
        }

        // Split the body into arms: `pattern => expr` separated by `,` at
        // depth 0 (brace-bodied arms end at their `}` — close enough: the
        // statement after a `}` that starts a new pattern is found by
        // re-scanning for `=>`).
        let mut arm_pat_starts = Vec::new();
        let mut k = j + 1;
        let mut pat_start = k;
        while k < body_end {
            match toks[k].tok.punct() {
                Some("(" | "[" | "{") => {
                    k = matching_close(toks, k) + 1;
                    continue;
                }
                Some("=>") => {
                    arm_pat_starts.push((pat_start, k));
                    // Skip the arm expression: to the `,` at depth 0 or a
                    // brace block.
                    let mut m = k + 1;
                    while m < body_end {
                        match toks[m].tok.punct() {
                            Some("(" | "[") => m = matching_close(toks, m) + 1,
                            Some("{") => {
                                m = matching_close(toks, m) + 1;
                                // `=> if c { a } else { b }` continues past
                                // the first block; stop only at a block not
                                // followed by `else`.
                                if ident_at(toks, m) == Some("else") {
                                    m += 1;
                                    continue;
                                }
                                break;
                            }
                            Some(",") => {
                                m += 1;
                                break;
                            }
                            _ => m += 1,
                        }
                    }
                    // A trailing `,` after a brace block.
                    if m < body_end && punct_at(toks, m, ",") {
                        m += 1;
                    }
                    k = m;
                    pat_start = m;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }

        // Resolve each arm's head path; collect the enum consensus.
        let mut enum_name: Option<String> = None;
        let mut listed: Vec<String> = Vec::new();
        let mut unknown: Vec<String> = Vec::new();
        let mut wildcard = false;
        for &(ps, pe) in &arm_pat_starts {
            // `|`-alternates: evaluate each alternative's head.
            let mut alt_start = ps;
            let mut alts = Vec::new();
            let mut d = 0i32;
            for (q, pt) in toks.iter().enumerate().take(pe).skip(ps) {
                match pt.tok.punct() {
                    Some("(" | "[") => d += 1,
                    Some(")" | "]") => d -= 1,
                    Some("|") if d <= 0 => {
                        alts.push((alt_start, q));
                        alt_start = q + 1;
                    }
                    _ => {}
                }
            }
            alts.push((alt_start, pe));
            for (as_, ae) in alts {
                // An `if` guard ends the pattern proper.
                let guard = (as_..ae).find(|&q| ident_at(toks, q) == Some("if")).unwrap_or(ae);
                match arm_head_path(toks, as_, guard) {
                    Some((head, variant)) => {
                        let resolved = if head == "Self" {
                            items.impl_at(as_).map(|im| im.type_name.clone())
                        } else {
                            Some(head.to_owned())
                        };
                        let Some(en) = resolved else { continue };
                        if index.unique_enum(&en).is_none() {
                            continue;
                        }
                        match &enum_name {
                            None => enum_name = Some(en.clone()),
                            Some(prev) if *prev != en => {
                                // Arms over two different enums (tuple
                                // scrutinee): bail out of this match.
                                enum_name = None;
                                break;
                            }
                            Some(_) => {}
                        }
                        // SCREAMING_CASE heads are consts, not variants.
                        if variant.chars().next().is_some_and(char::is_uppercase)
                            && variant.chars().any(char::is_lowercase)
                        {
                            if index
                                .unique_enum(&en)
                                .is_some_and(|e| e.variants.iter().any(|v| v == variant))
                            {
                                listed.push(variant.to_owned());
                            } else {
                                unknown.push(format!("{en}::{variant}"));
                            }
                        }
                    }
                    None => {
                        // `_` or a bare lowercase binding is a wildcard;
                        // anything else (literals, Some(..)) just means
                        // this arm tells us nothing.
                        let mut q = as_;
                        while q < guard && (punct_at(toks, q, "&") || punct_at(toks, q, "(")) {
                            q += 1;
                        }
                        // A wildcard is `_`, or a bare lowercase binding
                        // that IS the whole pattern (next comes `=>` or an
                        // `if` guard) — not keywords or call-shaped heads.
                        let head = ident_at(toks, q);
                        let is_wild = head == Some("_") // lexes as an ident
                            || head.is_some_and(|h| {
                                h.chars().next().is_some_and(char::is_lowercase)
                                    && (punct_at(toks, q + 1, "=>")
                                        || ident_at(toks, q + 1) == Some("if"))
                            });
                        if is_wild {
                            wildcard = true;
                        }
                    }
                }
            }
            if enum_name.is_none() && !listed.is_empty() {
                break;
            }
        }

        if let Some(en) = enum_name {
            if let Some(info) = index.unique_enum(&en) {
                for u in &unknown {
                    out.push(FlowDiag {
                        line,
                        rule: "E001",
                        message: format!(
                            "match arm names `{u}`, which is not a variant of `{en}` ({}:{}); stale arm or typo",
                            info.file, info.line
                        ),
                    });
                }
                if wildcard {
                    let missing: Vec<&str> = info
                        .variants
                        .iter()
                        .map(String::as_str)
                        .filter(|v| !listed.iter().any(|l| l == v))
                        .collect();
                    if !missing.is_empty() {
                        out.push(FlowDiag {
                            line,
                            rule: "E001",
                            message: format!(
                                "wildcard arm swallows {} variant(s) of `{en}` ({}): list them explicitly so new variants cannot be silently defaulted",
                                missing.len(),
                                missing.join(", ")
                            ),
                        });
                    }
                }
            }
        }
        i = j + 1;
    }
}

/// The receiver base name of a `.lock()` call at token index `i` (the
/// `lock` ident): the last plain ident of the dotted chain before it.
fn lock_receiver(toks: &[PTok], i: usize) -> Option<&str> {
    let mut j = i.checked_sub(1)?; // the `.`
    if !toks[j].tok.is_punct(".") {
        return None;
    }
    loop {
        j = j.checked_sub(1)?;
        match toks[j].tok.punct() {
            Some(")" | "]") => {
                // Walk back over the bracketed chunk to its opener.
                let close_p = toks[j].tok.punct();
                let mut depth = 0i32;
                loop {
                    match toks[j].tok.punct() {
                        Some(p) if Some(p) == close_p => depth += 1,
                        Some("(") if close_p == Some(")") => depth -= 1,
                        Some("[") if close_p == Some("]") => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                    j = j.checked_sub(1)?;
                }
            }
            _ => {
                if let Some(id) = toks[j].tok.ident() {
                    if !matches!(id, "self" | "Self") {
                        return Some(id);
                    }
                }
                // A further `.` continues the chain; anything else ends it.
                if !toks[j].tok.is_punct(".") && toks[j].tok.ident().is_none() {
                    return None;
                }
            }
        }
    }
}

/// C001: two named locks acquired in both orders within one file.
fn c001_lock_order(
    toks: &[PTok],
    items: &FileItems,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<FlowDiag>,
) {
    // Acquisition order per function: consecutive lock receivers within a
    // body form ordered pairs; a pair seen in both orders across the file
    // is the deadlock seed.
    let mut pair_first: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &items.fns {
        if in_test(f.line) || f.body.is_empty() {
            continue;
        }
        let mut held: Vec<&str> = Vec::new();
        for i in f.body.clone() {
            if ident_at(toks, i) != Some("lock")
                || !punct_at(toks, i + 1, "(")
                || !punct_at(toks, i + 2, ")")
            {
                continue;
            }
            let Some(recv) = lock_receiver(toks, i) else { continue };
            let line = toks[i].line;
            for &prev in &held {
                if prev == recv {
                    continue;
                }
                let key = (prev.to_owned(), recv.to_owned());
                let rev = (recv.to_owned(), prev.to_owned());
                if let Some(&rev_line) = pair_first.get(&rev) {
                    out.push(FlowDiag {
                        line,
                        rule: "C001",
                        message: format!(
                            "locks `{prev}` then `{recv}` here, but the reverse order is taken at line {rev_line}; pick one acquisition order per file"
                        ),
                    });
                } else {
                    pair_first.entry(key).or_insert(line);
                }
            }
            held.push(recv);
        }
    }
}

/// C002: `.lock().unwrap()` / `.join().unwrap()` (or `.expect`) outside
/// tests. Empty-argument `join()` only, so `path.join("x")` never matches.
fn c002_lock_join_unwrap(toks: &[PTok], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<FlowDiag>) {
    for i in 0..toks.len() {
        let Some(callee @ ("lock" | "join")) = ident_at(toks, i) else { continue };
        if i == 0 || !toks[i - 1].tok.is_punct(".") {
            continue;
        }
        if !(punct_at(toks, i + 1, "(") && punct_at(toks, i + 2, ")") && punct_at(toks, i + 3, "."))
        {
            continue;
        }
        let Some(handler @ ("unwrap" | "expect")) = ident_at(toks, i + 4) else { continue };
        if !punct_at(toks, i + 5, "(") {
            continue;
        }
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        let remedy = if callee == "lock" {
            "map the PoisonError (e.g. `unwrap_or_else(PoisonError::into_inner)`) or propagate it"
        } else {
            "propagate the join result so a panicked worker is quarantined, not fatal"
        };
        out.push(FlowDiag {
            line,
            rule: "C002",
            message: format!("`.{callee}().{handler}()` outside tests; {remedy}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;
    use crate::parser::{parse, token_stream};

    fn diags(src: &str) -> Vec<FlowDiag> {
        let lines = split_lines(src);
        let toks = token_stream(&lines);
        let items = parse(&toks);
        let idx = SymbolIndex::build([("t.rs", &items)]);
        let mask = vec![false; lines.len()];
        run(&toks, &items, &mask, &idx)
    }

    fn rules(src: &str) -> Vec<&'static str> {
        diags(src).into_iter().map(|d| d.rule).collect()
    }

    const ENUM: &str = "pub enum DropCause { Full, Corrupt, Fault }\n";

    #[test]
    fn e001_fires_on_wildcard_swallowing_variants() {
        let src = format!(
            "{ENUM}fn f(c: DropCause) -> u32 {{ match c {{ DropCause::Full => 1, _ => 0 }} }}\n"
        );
        assert_eq!(rules(&src), ["E001"]);
    }

    #[test]
    fn e001_clean_when_all_variants_listed() {
        let src = format!(
            "{ENUM}fn f(c: DropCause) -> u32 {{ match c {{ DropCause::Full => 1, DropCause::Corrupt => 2, DropCause::Fault => 3 }} }}\n"
        );
        assert!(rules(&src).is_empty());
        // All listed + wildcard (e.g. for a cfg-gated variant) is also fine.
        let src = format!(
            "{ENUM}fn f(c: DropCause) -> u32 {{ match c {{ DropCause::Full => 1, DropCause::Corrupt | DropCause::Fault => 2, _ => 0 }} }}\n"
        );
        assert!(rules(&src).is_empty());
    }

    #[test]
    fn e001_fires_on_unknown_variant() {
        let src = format!(
            "{ENUM}fn f(c: DropCause) -> u32 {{ match c {{ DropCause::Full => 1, DropCause::Gone => 2, DropCause::Corrupt => 3, DropCause::Fault => 4 }} }}\n"
        );
        assert_eq!(rules(&src), ["E001"]);
    }

    #[test]
    fn e001_resolves_self_through_impl() {
        let src = format!(
            "{ENUM}impl DropCause {{ fn code(&self) -> u32 {{ match self {{ Self::Full => 1, _ => 0 }} }} }}\n"
        );
        assert_eq!(rules(&src), ["E001"]);
    }

    #[test]
    fn e001_skips_wrapped_and_foreign_matches() {
        // Option-wrapped arms and non-indexed enums say nothing.
        let src = "fn f(x: Option<u32>) -> u32 { match x { Some(v) => v, None => 0 } }\n";
        assert!(rules(src).is_empty());
        let src = "fn f(o: std::cmp::Ordering) -> u32 { match o { std::cmp::Ordering::Less => 1, _ => 0 } }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn c001_fires_on_conflicting_lock_order() {
        let src = "fn a(&self) { let g1 = self.spool.lock(); let g2 = self.journal.lock(); }\nfn b(&self) { let g2 = self.journal.lock(); let g1 = self.spool.lock(); }\n";
        assert_eq!(rules(src), ["C001"]);
    }

    #[test]
    fn c001_clean_on_consistent_order() {
        let src = "fn a(&self) { let g1 = self.spool.lock(); let g2 = self.journal.lock(); }\nfn b(&self) { let g1 = self.spool.lock(); let g2 = self.journal.lock(); }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn c002_fires_on_lock_and_join_unwrap() {
        assert_eq!(rules("fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }"), ["C002"]);
        assert_eq!(rules("fn f(h: JoinHandle<()>) { h.join().expect(\"boom\"); }"), ["C002"]);
    }

    #[test]
    fn c002_ignores_path_join_and_poison_mapping() {
        assert!(rules("fn f(p: &Path) { let q = p.join(\"x\").to_path_buf(); }").is_empty());
        assert!(rules(
            "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }"
        )
        .is_empty());
    }
}
