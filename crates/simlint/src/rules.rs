//! The rule set: repo-specific determinism and safety checks.
//!
//! Each rule exists because this repository was bitten by (or is structurally
//! exposed to) the bug class it bans — see `DESIGN.md` §11 for the history.
//! Rules run on the comment/string-stripped token stream from
//! [`crate::lexer`], scoped by file class, and are silenced either by an
//! inline `// simlint: allow(RULE, reason)` waiver or a baseline entry.

use crate::lexer::{split_lines, tokenize, Line, Tok};

/// A single diagnostic: `file:line:rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`D001`, …, `W001`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The `path:line:rule` key used by the baseline file.
    pub fn baseline_key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Every enforced rule id, in report order.
pub const ALL_RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet (iteration-order nondeterminism); use BTreeMap/BTreeSet"),
    ("D002", "no wall-clock reads (Instant/SystemTime) in simulation crates"),
    ("D003", "no unseeded randomness (thread_rng/rand::random/from_entropy/OsRng)"),
    ("A001", "no bare `as` integer casts in time/sequence arithmetic; use checked helpers"),
    ("F001", "no ==/!= against float literals; use is_exactly_zero or epsilon compares"),
    ("P001", "no unwrap()/expect()/panic! in library code outside #[cfg(test)]"),
    ("W001", "malformed waiver: unknown rule or missing reason"),
    ("W002", "unused waiver: no matching finding on the waived line"),
];

fn rule_exists(id: &str) -> bool {
    ALL_RULES.iter().any(|(r, _)| *r == id)
}

/// How a file participates in the rule set, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// `crates/<name>/…` → `<name>`; `None` for root `src/`, `tests/`, ….
    pub crate_dir: Option<String>,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_file: bool,
    /// A binary target: under `src/bin/` or a root `main.rs`.
    pub is_bin: bool,
    /// Under a `src/` directory (library or binary source).
    pub in_src: bool,
}

impl FileClass {
    /// Classifies a `/`-separated workspace-relative path.
    pub fn of(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_dir =
            (parts.first() == Some(&"crates") && parts.len() > 2).then(|| parts[1].to_owned());
        let is_test_file = parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let in_src = parts.contains(&"src");
        let is_bin =
            parts.windows(2).any(|w| w == ["src", "bin"]) || parts.last() == Some(&"main.rs");
        FileClass { crate_dir, is_test_file, is_bin, in_src }
    }

    fn crate_in(&self, list: &[&str]) -> bool {
        self.crate_dir.as_deref().is_some_and(|c| list.contains(&c))
    }
}

/// Crates whose state feeds simulation results; wall-clock reads there break
/// bit-reproducibility (D002) and time/sequence casts there are the PR 2
/// overflow class (A001).
const SIM_CORE_CRATES: &[&str] = &["netsim", "transport", "congestion", "core"];

/// Substrings marking a line as time/sequence arithmetic for A001.
const TIME_SEQ_MARKERS: &[&str] = &["SimTime", "SimDuration", "nanos", "_ns", "seq"];

/// Integer destination types for A001 (`as f64` is the sanctioned widening
/// conversion for statistics and is left to clippy's cast lints).
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// An inline waiver parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived, e.g. `P001`.
    pub rule: String,
    /// The human-readable justification (required non-empty).
    pub reason: String,
}

/// Parses every `simlint: allow(RULE, reason)` occurrence in a comment.
/// Returns `(waivers, malformed)` where `malformed` holds a message per
/// ill-formed waiver (unknown rule id or empty reason).
pub fn parse_waivers(comment: &str) -> (Vec<Waiver>, Vec<String>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("simlint:") {
        rest = &rest[at + "simlint:".len()..];
        let body = rest.trim_start();
        let Some(args) = body.strip_prefix("allow(") else {
            malformed.push("expected `allow(RULE, reason)` after `simlint:`".to_owned());
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push("unterminated `allow(` waiver".to_owned());
            break;
        };
        let inner = &args[..close];
        rest = &args[close + 1..];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if !rule_exists(rule) {
            malformed.push(format!("unknown rule {rule:?} in waiver"));
        } else if reason.is_empty() {
            malformed.push(format!("waiver for {rule} is missing a reason"));
        } else {
            waivers.push(Waiver { rule: rule.to_owned(), reason: reason.to_owned() });
        }
    }
    (waivers, malformed)
}

/// Marks lines inside `#[cfg(test)]` items (and `#[test]` functions): after
/// such an attribute, the next brace-delimited item body is test code. P001
/// and A001 do not apply there.
fn test_region_lines(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    let mut region_floor: Option<i32> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if region_floor.is_some() {
            out[idx] = true;
        }
        let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(all(test")
            || compact.contains("#[test]")
        {
            pending = true;
            out[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_floor.is_none() {
                        region_floor = Some(depth);
                        pending = false;
                        out[idx] = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_floor.is_some_and(|floor| depth < floor) {
                        region_floor = None;
                    }
                }
                // An item that ends before opening a brace (e.g.
                // `#[cfg(test)] use …;`) consumes the pending attribute.
                ';' if pending && region_floor.is_none() => pending = false,
                _ => {}
            }
        }
    }
    out
}

fn has_marker(code: &str, markers: &[&str]) -> bool {
    markers.iter().any(|m| code.contains(m))
}

/// Runs every applicable rule over one file's source text.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = FileClass::of(rel_path);
    let lines = split_lines(src);
    let in_test_region = test_region_lines(&lines);

    // Waivers: a waiver on a code-bearing line covers that line; a waiver on
    // a comment-only line covers the next code-bearing line (stacking).
    let mut active: Vec<Vec<Waiver>> = vec![Vec::new(); lines.len()];
    let mut findings = Vec::new();
    let mut carried: Vec<Waiver> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let (waivers, malformed) = parse_waivers(&line.comment);
        for msg in malformed {
            findings.push(Finding {
                file: rel_path.to_owned(),
                line: idx + 1,
                rule: "W001",
                message: msg,
            });
        }
        let code_empty = line.code.trim().is_empty();
        if code_empty {
            carried.extend(waivers);
        } else {
            active[idx] = std::mem::take(&mut carried);
            active[idx].extend(waivers);
        }
    }

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }
        let toks = tokenize(code);
        let mut raw: Vec<(&'static str, String)> = Vec::new();

        // D001 — everywhere: deterministic collections only.
        for bad in ["HashMap", "HashSet"] {
            if toks.iter().any(|t| t.ident() == Some(bad)) {
                raw.push((
                    "D001",
                    format!(
                        "{bad} iterates in nondeterministic order; use BTree{} instead",
                        &bad[4..]
                    ),
                ));
            }
        }

        // D002 — sim-core crates: no wall clock.
        if class.crate_in(SIM_CORE_CRATES) {
            for bad in ["Instant", "SystemTime", "UNIX_EPOCH", "OffsetDateTime", "chrono"] {
                if toks.iter().any(|t| t.ident() == Some(bad)) {
                    raw.push((
                        "D002",
                        format!("wall-clock type/call `{bad}` in a simulation crate; all time must come from SimTime"),
                    ));
                }
            }
        }

        // D003 — everywhere: no unseeded randomness.
        for bad in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
            if toks.iter().any(|t| t.ident() == Some(bad)) {
                raw.push((
                    "D003",
                    format!("`{bad}` is unseeded; derive all RNG from the run's seed"),
                ));
            }
        }
        if toks.windows(3).any(|w| {
            w[0].ident() == Some("rand")
                && w[1] == Tok::Punct("::".into())
                && w[2].ident() == Some("random")
        }) {
            raw.push((
                "D003",
                "`rand::random` is unseeded; derive all RNG from the run's seed".to_owned(),
            ));
        }

        // A001 — sim-core src, outside tests: no bare integer `as` casts on
        // time/sequence lines.
        if class.crate_in(SIM_CORE_CRATES)
            && class.in_src
            && !class.is_test_file
            && !in_test_region[idx]
            && has_marker(code, TIME_SEQ_MARKERS)
        {
            for w in toks.windows(2) {
                if w[0].ident() != Some("as") {
                    continue;
                }
                if let Some(ty) = w[1].ident().filter(|ty| INT_TYPES.contains(ty)) {
                    raw.push((
                        "A001",
                        format!("bare `as {ty}` cast in time/sequence arithmetic can truncate or wrap; use a checked/saturating SimTime/SimDuration helper or `{ty}::try_from`"),
                    ));
                }
            }
        }

        // F001 — everywhere: no exact compares against float literals.
        for (k, t) in toks.iter().enumerate() {
            if matches!(t, Tok::Punct(p) if p == "==" || p == "!=") {
                let prev_float = k > 0 && toks[k - 1].is_float_literal();
                let next_float = toks.get(k + 1).is_some_and(Tok::is_float_literal);
                if prev_float || next_float {
                    raw.push((
                        "F001",
                        "exact float comparison; route sentinel checks through is_exactly_zero or compare with a tolerance".to_owned(),
                    ));
                }
            }
        }

        // P001 — library code only: no panicking shortcuts.
        let p001_applies =
            class.in_src && !class.is_bin && !class.is_test_file && !in_test_region[idx];
        if p001_applies {
            for w in toks.windows(3) {
                let dot_call = |name: &str| {
                    w[0] == Tok::Punct(".".into())
                        && w[1].ident() == Some(name)
                        && w[2] == Tok::Punct("(".into())
                };
                if dot_call("unwrap") {
                    raw.push((
                        "P001",
                        "unwrap() in library code; propagate the error or waive with the invariant that makes it impossible".to_owned(),
                    ));
                }
                if dot_call("expect") {
                    raw.push((
                        "P001",
                        "expect() in library code; propagate the error or waive with the invariant that makes it impossible".to_owned(),
                    ));
                }
            }
            for w in toks.windows(2) {
                if w[1] == Tok::Punct("!".into()) {
                    if let Some(mac @ ("panic" | "todo" | "unimplemented")) = w[0].ident() {
                        raw.push((
                            "P001",
                            format!("{mac}! in library code; return an error (assert!/unreachable! remain available for stated invariants)"),
                        ));
                    }
                }
            }
        }

        // Apply waivers; count which were used so W002 can flag dead ones.
        let mut used = vec![false; active[idx].len()];
        for (rule, message) in raw {
            let waived = active[idx].iter().enumerate().find(|(_, wv)| wv.rule == rule);
            match waived {
                Some((wi, _)) => used[wi] = true,
                None => findings.push(Finding {
                    file: rel_path.to_owned(),
                    line: lineno,
                    rule,
                    message,
                }),
            }
        }
        for (wi, wv) in active[idx].iter().enumerate() {
            if !used[wi] {
                findings.push(Finding {
                    file: rel_path.to_owned(),
                    line: lineno,
                    rule: "W002",
                    message: format!(
                        "waiver for {} does not match any finding on this line; remove it",
                        wv.rule
                    ),
                });
            }
        }
    }
    findings.sort();
    findings
}
