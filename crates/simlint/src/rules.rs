//! The rule set: repo-specific determinism and safety checks.
//!
//! Each rule exists because this repository was bitten by (or is structurally
//! exposed to) the bug class it bans — see `DESIGN.md` §11/§16 for the
//! history. The per-line rules run on the comment/string-stripped token
//! stream from [`crate::lexer`]; the symbol-aware rules
//! (U001/U002/D004/E001/C001/C002) run on the item trees from
//! [`crate::parser`] against the workspace [`crate::index::SymbolIndex`].
//! All are scoped by file class and silenced either by an inline
//! `// simlint: allow(RULE, reason)` waiver or a baseline entry.
//!
//! Linting is a two-phase pipeline so the workspace can be processed in
//! parallel: [`analyze`] is per-file and embarrassingly parallel; the
//! symbol index is built from every analysis; [`finish`] then runs the
//! rules per file against that index.

use crate::index::SymbolIndex;
use crate::lexer::{split_lines, tokenize, Line, Tok};
use crate::parser::{parse, token_stream, FileItems, PTok};
use crate::rules_flow;

/// A single diagnostic: `file:line:rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`D001`, …, `W001`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed offending source line, for reports and `--json` output.
    /// Not part of the baseline key.
    pub snippet: String,
}

impl Finding {
    /// The `path:line:rule` key used by the baseline file.
    pub fn baseline_key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Every enforced rule id, in report order.
pub const ALL_RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet (iteration-order nondeterminism); use BTreeMap/BTreeSet"),
    ("D002", "no wall-clock reads (Instant/SystemTime) in simulation crates"),
    ("D003", "no unseeded randomness (thread_rng/rand::random/from_entropy/OsRng)"),
    ("D004", "no wall-clock-derived values flowing into SimTime/SimDuration sinks"),
    ("A001", "no bare `as` integer casts in time/sequence arithmetic; use checked helpers"),
    ("F001", "no ==/!= against float literals; use is_exactly_zero or epsilon compares"),
    ("P001", "no unwrap()/expect()/panic! in library code outside #[cfg(test)]"),
    ("U001", "no cross-unit assignment or argument flow (bits/bytes/bps/ns/…) without conversion"),
    ("U002", "no cross-unit additive/comparison arithmetic without an explicit conversion"),
    ("E001", "no wildcard match arms swallowing workspace enum variants (or naming unknown ones)"),
    ("C001", "no conflicting Mutex lock-acquisition orders within a file"),
    ("C002", "no .unwrap()/.expect() on lock()/join() outside tests"),
    ("W001", "malformed waiver: unknown rule or missing reason"),
    ("W002", "unused waiver: no matching finding on the waived line"),
];

fn rule_exists(id: &str) -> bool {
    ALL_RULES.iter().any(|(r, _)| *r == id)
}

/// How a file participates in the rule set, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// `crates/<name>/…` → `<name>`; `None` for root `src/`, `tests/`, ….
    pub crate_dir: Option<String>,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_file: bool,
    /// A binary target: under `src/bin/` or a root `main.rs`.
    pub is_bin: bool,
    /// Under a `src/` directory (library or binary source).
    pub in_src: bool,
}

impl FileClass {
    /// Classifies a `/`-separated workspace-relative path.
    pub fn of(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_dir =
            (parts.first() == Some(&"crates") && parts.len() > 2).then(|| parts[1].to_owned());
        let is_test_file = parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let in_src = parts.contains(&"src");
        let is_bin =
            parts.windows(2).any(|w| w == ["src", "bin"]) || parts.last() == Some(&"main.rs");
        FileClass { crate_dir, is_test_file, is_bin, in_src }
    }

    fn crate_in(&self, list: &[&str]) -> bool {
        self.crate_dir.as_deref().is_some_and(|c| list.contains(&c))
    }
}

/// Crates whose state feeds simulation results; wall-clock reads there break
/// bit-reproducibility (D002) and time/sequence casts there are the PR 2
/// overflow class (A001).
const SIM_CORE_CRATES: &[&str] = &["netsim", "transport", "congestion", "core"];

/// Substrings marking a line as time/sequence arithmetic for A001.
const TIME_SEQ_MARKERS: &[&str] = &["SimTime", "SimDuration", "nanos", "_ns", "seq"];

/// Integer destination types for A001 (`as f64` is the sanctioned widening
/// conversion for statistics and is left to clippy's cast lints).
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// An inline waiver parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived, e.g. `P001`.
    pub rule: String,
    /// The human-readable justification (required non-empty).
    pub reason: String,
}

/// Parses every `simlint: allow(RULE, reason)` occurrence in a comment.
/// Returns `(waivers, malformed)` where `malformed` holds a message per
/// ill-formed waiver (unknown rule id or empty reason).
pub fn parse_waivers(comment: &str) -> (Vec<Waiver>, Vec<String>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("simlint:") {
        rest = &rest[at + "simlint:".len()..];
        let body = rest.trim_start();
        let Some(args) = body.strip_prefix("allow(") else {
            malformed.push("expected `allow(RULE, reason)` after `simlint:`".to_owned());
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push("unterminated `allow(` waiver".to_owned());
            break;
        };
        let inner = &args[..close];
        rest = &args[close + 1..];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if !rule_exists(rule) {
            malformed.push(format!("unknown rule {rule:?} in waiver"));
        } else if reason.is_empty() {
            malformed.push(format!("waiver for {rule} is missing a reason"));
        } else {
            waivers.push(Waiver { rule: rule.to_owned(), reason: reason.to_owned() });
        }
    }
    (waivers, malformed)
}

/// Marks lines inside `#[cfg(test)]` items (and `#[test]` functions): after
/// such an attribute, the next brace-delimited item body is test code. P001
/// and A001 do not apply there.
fn test_region_lines(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    let mut region_floor: Option<i32> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if region_floor.is_some() {
            out[idx] = true;
        }
        let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(all(test")
            || compact.contains("#[test]")
        {
            pending = true;
            out[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_floor.is_none() {
                        region_floor = Some(depth);
                        pending = false;
                        out[idx] = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_floor.is_some_and(|floor| depth < floor) {
                        region_floor = None;
                    }
                }
                // An item that ends before opening a brace (e.g.
                // `#[cfg(test)] use …;`) consumes the pending attribute.
                ';' if pending && region_floor.is_none() => pending = false,
                _ => {}
            }
        }
    }
    out
}

fn has_marker(code: &str, markers: &[&str]) -> bool {
    markers.iter().any(|m| code.contains(m))
}

/// Maximum characters kept of a finding's source-line snippet.
const SNIPPET_MAX: usize = 160;

fn snippet_of(raw: &str) -> String {
    let t = raw.trim();
    if t.chars().count() > SNIPPET_MAX {
        let mut s: String = t.chars().take(SNIPPET_MAX - 1).collect();
        s.push('…');
        s
    } else {
        t.to_owned()
    }
}

/// Phase-1 output: everything extracted from one file, before any
/// cross-file rule runs. Producing this is pure per-file work, so the
/// driver runs it in parallel; the symbol index is then built from every
/// analysis and [`finish`] produces the findings.
pub struct FileAnalysis {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Path-derived rule scope.
    pub class: FileClass,
    /// Lexed lines (code/comment channels).
    lines: Vec<Line>,
    /// Trimmed raw source per line, for finding snippets.
    snippets: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` regions.
    test_mask: Vec<bool>,
    /// The file's flat positioned token stream.
    toks: Vec<PTok>,
    /// Parsed items (fns, enums, impls, sites).
    pub items: FileItems,
    /// Waivers active per line (same-line or carried from comment lines).
    active: Vec<Vec<Waiver>>,
    /// Malformed-waiver findings: `(line, message)`.
    w001: Vec<(usize, String)>,
}

impl FileAnalysis {
    /// The items this file contributes to the workspace symbol index:
    /// `src/` files only, minus anything defined in a test region. Test
    /// files and fixtures must not shadow real definitions.
    pub fn indexable_items(&self) -> Option<FileItems> {
        if !self.class.in_src || self.class.is_test_file {
            return None;
        }
        let masked = |line: usize| self.test_mask.get(line - 1).copied().unwrap_or(false);
        let mut items = self.items.clone();
        items.fns.retain(|f| !masked(f.line));
        items.enums.retain(|e| !masked(e.line));
        items.impls.retain(|im| !masked(im.line));
        Some(items)
    }
}

/// Lexes, parses, and waiver-scans one file (phase 1; no rules yet).
pub fn analyze(rel_path: &str, src: &str) -> FileAnalysis {
    let class = FileClass::of(rel_path);
    let lines = split_lines(src);
    let test_mask = test_region_lines(&lines);
    let snippets = src.split('\n').map(snippet_of).collect();
    let toks = token_stream(&lines);
    let items = parse(&toks);

    // Waivers: a waiver on a code-bearing line covers that line; a waiver on
    // a comment-only line covers the next code-bearing line (stacking).
    let mut active: Vec<Vec<Waiver>> = vec![Vec::new(); lines.len()];
    let mut w001 = Vec::new();
    let mut carried: Vec<Waiver> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let (waivers, malformed) = parse_waivers(&line.comment);
        for msg in malformed {
            w001.push((idx + 1, msg));
        }
        let code_empty = line.code.trim().is_empty();
        if code_empty {
            carried.extend(waivers);
        } else {
            active[idx] = std::mem::take(&mut carried);
            active[idx].extend(waivers);
        }
    }

    FileAnalysis {
        rel: rel_path.to_owned(),
        class,
        lines,
        snippets,
        test_mask,
        toks,
        items,
        active,
        w001,
    }
}

/// Phase-3 output for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that stand (not waived).
    pub findings: Vec<Finding>,
    /// Findings silenced by an inline waiver (reported in `--json`).
    pub waived: Vec<Finding>,
}

/// Per-line token rules; appends `(rule, message)` pairs for one line.
fn line_rules(
    class: &FileClass,
    in_test_region: bool,
    code: &str,
    raw: &mut Vec<(&'static str, String)>,
) {
    let toks = tokenize(code);

    // D001 — everywhere: deterministic collections only.
    for bad in ["HashMap", "HashSet"] {
        if toks.iter().any(|t| t.ident() == Some(bad)) {
            raw.push((
                "D001",
                format!("{bad} iterates in nondeterministic order; use BTree{} instead", &bad[4..]),
            ));
        }
    }

    // D002 — sim-core crates: no wall clock.
    if class.crate_in(SIM_CORE_CRATES) {
        for bad in ["Instant", "SystemTime", "UNIX_EPOCH", "OffsetDateTime", "chrono"] {
            if toks.iter().any(|t| t.ident() == Some(bad)) {
                raw.push((
                    "D002",
                    format!("wall-clock type/call `{bad}` in a simulation crate; all time must come from SimTime"),
                ));
            }
        }
    }

    // D003 — everywhere: no unseeded randomness.
    for bad in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
        if toks.iter().any(|t| t.ident() == Some(bad)) {
            raw.push(("D003", format!("`{bad}` is unseeded; derive all RNG from the run's seed")));
        }
    }
    if toks.windows(3).any(|w| {
        w[0].ident() == Some("rand")
            && w[1] == Tok::Punct("::".into())
            && w[2].ident() == Some("random")
    }) {
        raw.push((
            "D003",
            "`rand::random` is unseeded; derive all RNG from the run's seed".to_owned(),
        ));
    }

    // A001 — sim-core src, outside tests: no bare integer `as` casts on
    // time/sequence lines.
    if class.crate_in(SIM_CORE_CRATES)
        && class.in_src
        && !class.is_test_file
        && !in_test_region
        && has_marker(code, TIME_SEQ_MARKERS)
    {
        for w in toks.windows(2) {
            if w[0].ident() != Some("as") {
                continue;
            }
            if let Some(ty) = w[1].ident().filter(|ty| INT_TYPES.contains(ty)) {
                raw.push((
                    "A001",
                    format!("bare `as {ty}` cast in time/sequence arithmetic can truncate or wrap; use a checked/saturating SimTime/SimDuration helper or `{ty}::try_from`"),
                ));
            }
        }
    }

    // F001 — everywhere: no exact compares against float literals.
    for (k, t) in toks.iter().enumerate() {
        if matches!(t, Tok::Punct(p) if p == "==" || p == "!=") {
            let prev_float = k > 0 && toks[k - 1].is_float_literal();
            let next_float = toks.get(k + 1).is_some_and(Tok::is_float_literal);
            if prev_float || next_float {
                raw.push((
                    "F001",
                    "exact float comparison; route sentinel checks through is_exactly_zero or compare with a tolerance".to_owned(),
                ));
            }
        }
    }

    // P001 — library code only: no panicking shortcuts.
    let p001_applies = class.in_src && !class.is_bin && !class.is_test_file && !in_test_region;
    if p001_applies {
        for w in toks.windows(3) {
            let dot_call = |name: &str| {
                w[0] == Tok::Punct(".".into())
                    && w[1].ident() == Some(name)
                    && w[2] == Tok::Punct("(".into())
            };
            if dot_call("unwrap") {
                raw.push((
                    "P001",
                    "unwrap() in library code; propagate the error or waive with the invariant that makes it impossible".to_owned(),
                ));
            }
            if dot_call("expect") {
                raw.push((
                    "P001",
                    "expect() in library code; propagate the error or waive with the invariant that makes it impossible".to_owned(),
                ));
            }
        }
        for w in toks.windows(2) {
            if w[1] == Tok::Punct("!".into()) {
                if let Some(mac @ ("panic" | "todo" | "unimplemented")) = w[0].ident() {
                    raw.push((
                        "P001",
                        format!("{mac}! in library code; return an error (assert!/unreachable! remain available for stated invariants)"),
                    ));
                }
            }
        }
    }
}

/// Runs every rule over one analyzed file against the workspace index
/// (phase 3; pure per-file work again, so the driver parallelizes it).
pub fn finish(a: &FileAnalysis, index: &SymbolIndex) -> FileReport {
    // Raw findings per line: the per-line token rules …
    let mut raw_by_line: Vec<Vec<(&'static str, String)>> = vec![Vec::new(); a.lines.len()];
    for (idx, line) in a.lines.iter().enumerate() {
        if line.code.trim().is_empty() {
            continue;
        }
        let region = a.test_mask.get(idx).copied().unwrap_or(false);
        line_rules(&a.class, region, &line.code, &mut raw_by_line[idx]);
    }

    // … plus the symbol-aware flow rules, scoped to non-test `src/`.
    if a.class.in_src && !a.class.is_test_file {
        for d in rules_flow::run(&a.toks, &a.items, &a.test_mask, index) {
            if let Some(slot) = raw_by_line.get_mut(d.line.saturating_sub(1)) {
                slot.push((d.rule, d.message));
            }
        }
    }

    let snippet = |idx: usize| a.snippets.get(idx).cloned().unwrap_or_default();
    let mut report = FileReport::default();
    for (line, message) in &a.w001 {
        report.findings.push(Finding {
            file: a.rel.clone(),
            line: *line,
            rule: "W001",
            message: message.clone(),
            snippet: snippet(line - 1),
        });
    }

    // Apply waivers; count which were used so W002 can flag dead ones.
    for (idx, raw) in raw_by_line.into_iter().enumerate() {
        let lineno = idx + 1;
        let active = &a.active[idx];
        let mut used = vec![false; active.len()];
        for (rule, message) in raw {
            let finding =
                Finding { file: a.rel.clone(), line: lineno, rule, message, snippet: snippet(idx) };
            match active.iter().enumerate().find(|(_, wv)| wv.rule == rule) {
                Some((wi, _)) => {
                    used[wi] = true;
                    report.waived.push(finding);
                }
                None => report.findings.push(finding),
            }
        }
        for (wi, wv) in active.iter().enumerate() {
            if !used[wi] {
                report.findings.push(Finding {
                    file: a.rel.clone(),
                    line: lineno,
                    rule: "W002",
                    message: format!(
                        "waiver for {} does not match any finding on this line; remove it",
                        wv.rule
                    ),
                    snippet: snippet(idx),
                });
            }
        }
    }
    report.findings.sort();
    report.waived.sort();
    report
}

/// Runs every applicable rule over one file's source text, with a symbol
/// index built from that file alone. The workspace driver in [`crate`]
/// uses the phased [`analyze`]/[`finish`] pipeline instead so cross-file
/// symbols resolve; this entry point keeps single-file linting (and the
/// fixture corpus) self-contained.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let a = analyze(rel_path, src);
    let index = match a.indexable_items() {
        Some(items) => SymbolIndex::build([(rel_path, &items)]),
        None => SymbolIndex::default(),
    };
    finish(&a, &index).findings
}
