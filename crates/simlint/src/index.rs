//! The workspace symbol index: what the cross-file rules resolve against.
//!
//! Built from every file's [`crate::parser::FileItems`] after test regions
//! are masked out, the index maps *unqualified* names to their definitions.
//! Rust paths are not resolved (no module graph, no `use` expansion — this
//! is a linter, not a compiler), so a name defined in more than one place,
//! or with conflicting shapes, is marked `ambiguous` and every rule that
//! consults the index skips it. That keeps the cross-file rules sound on
//! the cheap: they only ever act on symbols with exactly one plausible
//! definition in the workspace.

use std::collections::BTreeMap;

use crate::parser::FileItems;

/// An indexed `enum` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumInfo {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Line of the `enum` keyword.
    pub line: usize,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Defined more than once with differing variant sets; rules skip it.
    pub ambiguous: bool,
}

/// An indexed `fn` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Parameter names, in declaration order (receiver excluded).
    pub param_names: Vec<String>,
    /// Parameter type texts, aligned with `param_names`.
    pub param_tys: Vec<String>,
    /// Defined more than once with differing signatures; rules skip it.
    pub ambiguous: bool,
}

/// Name → definition maps for the whole workspace.
#[derive(Debug, Clone, Default)]
pub struct SymbolIndex {
    /// Enum name → definition.
    pub enums: BTreeMap<String, EnumInfo>,
    /// Function name → definition (free fns and methods alike).
    pub fns: BTreeMap<String, FnInfo>,
}

impl SymbolIndex {
    /// Builds the index from per-file item trees. `files` pairs each
    /// workspace-relative path with its parsed items; items whose defining
    /// line falls in the file's test mask were already excluded by the
    /// caller (the mask lives with the file analysis, not here).
    pub fn build<'a, I>(files: I) -> SymbolIndex
    where
        I: IntoIterator<Item = (&'a str, &'a FileItems)>,
    {
        let mut index = SymbolIndex::default();
        for (rel, items) in files {
            for e in &items.enums {
                match index.enums.get_mut(&e.name) {
                    None => {
                        index.enums.insert(
                            e.name.clone(),
                            EnumInfo {
                                file: rel.to_owned(),
                                line: e.line,
                                variants: e.variants.clone(),
                                ambiguous: false,
                            },
                        );
                    }
                    Some(prev) => {
                        // Identical re-definitions (cfg-gated copies) stay
                        // usable; anything else poisons the name.
                        if prev.variants != e.variants {
                            prev.ambiguous = true;
                        }
                    }
                }
            }
            for f in &items.fns {
                let names: Vec<String> = f.params.iter().map(|p| p.name.clone()).collect();
                let tys: Vec<String> = f.params.iter().map(|p| p.ty.clone()).collect();
                match index.fns.get_mut(&f.name) {
                    None => {
                        index.fns.insert(
                            f.name.clone(),
                            FnInfo {
                                file: rel.to_owned(),
                                line: f.line,
                                param_names: names,
                                param_tys: tys,
                                ambiguous: false,
                            },
                        );
                    }
                    Some(prev) => {
                        if prev.param_names != names || prev.param_tys != tys {
                            prev.ambiguous = true;
                        }
                    }
                }
            }
        }
        index
    }

    /// The enum named `name`, unless it is ambiguous.
    pub fn unique_enum(&self, name: &str) -> Option<&EnumInfo> {
        self.enums.get(name).filter(|e| !e.ambiguous)
    }

    /// The function named `name`, unless it is ambiguous.
    pub fn unique_fn(&self, name: &str) -> Option<&FnInfo> {
        self.fns.get(name).filter(|f| !f.ambiguous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;
    use crate::parser::{parse, token_stream};

    fn items_of(src: &str) -> FileItems {
        parse(&token_stream(&split_lines(src)))
    }

    #[test]
    fn indexes_enums_and_fns_across_files() {
        let a = items_of("pub enum DropCause { Full, Corrupt }\n");
        let b = items_of("fn ser_ns(len_bytes: u32, rate_bps: u64) -> u64 { 0 }\n");
        let idx = SymbolIndex::build([("a.rs", &a), ("b.rs", &b)]);
        let e = idx.unique_enum("DropCause").expect("enum indexed");
        assert_eq!(e.variants, ["Full", "Corrupt"]);
        assert_eq!(e.file, "a.rs");
        let f = idx.unique_fn("ser_ns").expect("fn indexed");
        assert_eq!(f.param_names, ["len_bytes", "rate_bps"]);
    }

    #[test]
    fn conflicting_definitions_become_ambiguous() {
        let a = items_of("enum Kind { A, B }\nfn go(x_bps: u64) {}\n");
        let b = items_of("enum Kind { A, B, C }\nfn go(y_bytes: u64) {}\n");
        let idx = SymbolIndex::build([("a.rs", &a), ("b.rs", &b)]);
        assert!(idx.unique_enum("Kind").is_none());
        assert!(idx.unique_fn("go").is_none());
        assert!(idx.enums["Kind"].ambiguous);
        assert!(idx.fns["go"].ambiguous);
    }

    #[test]
    fn identical_redefinitions_stay_usable() {
        // cfg-gated copies of the same item must not poison the name.
        let a = items_of("enum Mode { On, Off }\n");
        let b = items_of("enum Mode { On, Off }\n");
        let idx = SymbolIndex::build([("a.rs", &a), ("b.rs", &b)]);
        assert!(idx.unique_enum("Mode").is_some());
    }
}
