//! # simlint — workspace determinism & safety linter
//!
//! Every result in this reproduction rests on bit-exact determinism: the
//! paper's DTS/DTS-Φ claims are validated by seeded sweeps, and PRs 2–9 each
//! fixed a bug from the same few classes — unchecked `as` casts wrapping
//! `SimDuration` arithmetic, silent float edge cases, unit mix-ups between
//! raw integers, panics escaping worker threads. The runtime invariant
//! checker (`netsim::check`) catches those *after* they corrupt a run; this
//! crate catches them at review time, the way htsim-style simulators and the
//! Linux MPTCP tree lean on checkpatch/sparse-class tooling rather than
//! runtime luck.
//!
//! The build is vendored-only, so everything is hand-rolled (no `syn`): see
//! [`lexer`] for the token layer, [`parser`] for the item trees, [`index`]
//! for the workspace symbol index, [`dataflow`] for the unit/taint lattices,
//! and [`rules`]/[`rules_flow`] for the rule set; `DESIGN.md` §11/§16 has
//! the history each rule encodes. Violations are silenced by an inline
//! `// simlint: allow(RULE, reason)` waiver — the reason is mandatory — or
//! by a `simlint.baseline` entry (kept empty in this repo).
//!
//! Linting runs as a three-phase pipeline — per-file analysis (parallel),
//! symbol-index build (serial), rule evaluation (parallel) — with findings
//! collected in input order, the same deterministic-pool discipline as
//! `bench_harness::runner`.
//!
//! Run it as `cargo run -p simlint -- --check`; exit code 0 means clean, 1
//! means findings, 2 means usage or I/O error. `--json FILE` additionally
//! emits every finding (fresh, waived, baseline-suppressed) as JSONL.

pub mod baseline;
pub mod dataflow;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod rules_flow;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use index::SymbolIndex;
use rules::FileAnalysis;

pub use rules::{lint_source, Finding};

/// Directory names never descended into: third-party code, build output,
/// VCS metadata, and the linter's own deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", ".github", ".claude"];

/// Top-level entries scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Recursively collects the workspace's lintable `.rs` files, sorted by
/// workspace-relative path so reports and baselines are stable.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    walk(&path, out)?;
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// A workspace-relative, `/`-separated display path.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Maps `f` over `items` on a scoped thread pool, returning outputs in
/// input order regardless of scheduling — the same discipline as
/// `bench_harness::runner`: an atomic cursor hands out indices, each worker
/// returns `(index, output)` pairs through `join()` (no slot locks), and
/// the results are scattered back by index. Worker panics propagate.
fn par_map<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let worker_outs: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, o) in worker_outs.into_iter().flatten() {
        slots[i] = Some(o);
    }
    slots
        .into_iter()
        .map(|o| match o {
            Some(v) => v,
            // Every index below the cursor was claimed by exactly one worker.
            None => unreachable!("par_map slot left unfilled"),
        })
        .collect()
}

/// Default worker count for the lint pipeline.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// A full workspace lint: standing findings plus inline-waived ones.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Findings that stand, sorted by path/line/rule.
    pub findings: Vec<Finding>,
    /// Findings silenced by inline waivers (surfaced in `--json`).
    pub waived: Vec<Finding>,
}

/// The three-phase pipeline over already-loaded sources: analyze each file,
/// build the symbol index, then evaluate rules per file against it.
fn run_pipeline(analyses: &[FileAnalysis], jobs: usize) -> WorkspaceReport {
    let indexable: Vec<(String, parser::FileItems)> = analyses
        .iter()
        .filter_map(|a| a.indexable_items().map(|items| (a.rel.clone(), items)))
        .collect();
    let index = SymbolIndex::build(indexable.iter().map(|(rel, items)| (rel.as_str(), items)));

    let reports = par_map(analyses, jobs, |a| rules::finish(a, &index));
    let mut out = WorkspaceReport::default();
    for r in reports {
        out.findings.extend(r.findings);
        out.waived.extend(r.waived);
    }
    out.findings.sort();
    out.waived.sort();
    out
}

/// Lints a set of in-memory `(rel_path, source)` files as one workspace —
/// cross-file symbol resolution included. Drives the same pipeline as
/// [`lint_workspace_with_jobs`], minus the I/O.
pub fn lint_sources(files: &[(String, String)]) -> WorkspaceReport {
    let analyses = par_map(files, 1, |(rel, src)| rules::analyze(rel, src));
    run_pipeline(&analyses, 1)
}

/// Lints every file under `root` with an explicit worker count. Output is
/// independent of `jobs` (pinned by test).
pub fn lint_workspace_with_jobs(root: &Path, jobs: usize) -> std::io::Result<WorkspaceReport> {
    let files = collect_files(root)?;
    let loaded: Vec<Result<(String, String), std::io::Error>> = par_map(&files, jobs, |file| {
        let src = std::fs::read_to_string(file)?;
        Ok((rel_path(root, file), src))
    });
    let mut sources = Vec::with_capacity(loaded.len());
    for r in loaded {
        sources.push(r?);
    }
    let analyses = par_map(&sources, jobs, |(rel, src)| rules::analyze(rel, src));
    Ok(run_pipeline(&analyses, jobs))
}

/// Lints every file under `root`, returning standing findings sorted by
/// path/line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(lint_workspace_with_jobs(root, default_jobs())?.findings)
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// The outcome of a full `--check` run against a baseline.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the build.
    pub fresh: Vec<Finding>,
    /// Findings suppressed by the baseline.
    pub suppressed: Vec<Finding>,
    /// Findings silenced by inline waivers.
    pub waived: Vec<Finding>,
    /// Baseline keys that matched nothing (should be deleted).
    pub stale: Vec<String>,
}

/// Lints the workspace and applies the baseline at `baseline_path` (missing
/// file = empty baseline).
pub fn check(root: &Path, baseline_path: &Path) -> std::io::Result<CheckReport> {
    let report = lint_workspace_with_jobs(root, default_jobs())?;
    let base: BTreeSet<String> = match std::fs::read_to_string(baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => return Err(e),
    };
    let (fresh, suppressed, stale) = baseline::apply(report.findings, &base);
    Ok(CheckReport { fresh, suppressed, waived: report.waived, stale })
}

/// Escapes a string for a JSON string literal (no external deps).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a check report as JSONL: one object per finding with its waiver
/// status (`fresh` fails the build, `waived` has an inline waiver,
/// `baseline` is suppressed by `simlint.baseline`), sorted by path/line so
/// reports diff cleanly across PRs.
pub fn render_jsonl(report: &CheckReport) -> String {
    let mut rows: Vec<(&Finding, &str)> = report
        .fresh
        .iter()
        .map(|f| (f, "fresh"))
        .chain(report.waived.iter().map(|f| (f, "waived")))
        .chain(report.suppressed.iter().map(|f| (f, "baseline")))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (f, status) in rows {
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"status\":\"{status}\",\"message\":\"{}\"}}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.snippet),
            json_escape(&f.message),
        ));
    }
    out
}
