//! # simlint — workspace determinism & safety linter
//!
//! Every result in this reproduction rests on bit-exact determinism: the
//! paper's DTS/DTS-Φ claims are validated by seeded sweeps, and PRs 2–4 each
//! fixed a bug from the same few classes — unchecked `as` casts wrapping
//! `SimDuration` arithmetic, silent float edge cases, panics escaping worker
//! threads. The runtime invariant checker (`netsim::check`) catches those
//! *after* they corrupt a run; this crate catches them at review time, the
//! way htsim-style simulators and the Linux MPTCP tree lean on
//! checkpatch/sparse-class tooling rather than runtime luck.
//!
//! The build is vendored-only, so the lexer is hand-rolled (no `syn`): see
//! [`lexer`] for what it understands, [`rules`] for the rule set, and
//! `DESIGN.md` §11 for the history each rule encodes. Violations are silenced
//! by an inline `// simlint: allow(RULE, reason)` waiver — the reason is
//! mandatory — or by a `simlint.baseline` entry (kept empty in this repo).
//!
//! Run it as `cargo run -p simlint -- --check`; exit code 0 means clean, 1
//! means findings, 2 means usage or I/O error.

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding};

/// Directory names never descended into: third-party code, build output,
/// VCS metadata, and the linter's own deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", ".github", ".claude"];

/// Top-level entries scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Recursively collects the workspace's lintable `.rs` files, sorted by
/// workspace-relative path so reports and baselines are stable.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    walk(&path, out)?;
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// A workspace-relative, `/`-separated display path.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lints every file under `root`, returning findings sorted by path/line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel_path(root, &file), &src));
    }
    findings.sort();
    Ok(findings)
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// The outcome of a full `--check` run against a baseline.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the build.
    pub fresh: Vec<Finding>,
    /// Findings suppressed by the baseline.
    pub suppressed: Vec<Finding>,
    /// Baseline keys that matched nothing (should be deleted).
    pub stale: Vec<String>,
}

/// Lints the workspace and applies the baseline at `baseline_path` (missing
/// file = empty baseline).
pub fn check(root: &Path, baseline_path: &Path) -> std::io::Result<CheckReport> {
    let findings = lint_workspace(root)?;
    let base: BTreeSet<String> = match std::fs::read_to_string(baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => return Err(e),
    };
    let (fresh, suppressed, stale) = baseline::apply(findings, &base);
    Ok(CheckReport { fresh, suppressed, stale })
}
