//! A hand-rolled Rust surface lexer.
//!
//! `simlint` rules must never fire inside comments, string literals, or raw
//! strings (a doc example mentioning `HashMap` is not a determinism bug), and
//! waiver comments must be readable wherever they appear. This module splits a
//! source file into per-line [`Line`]s whose `code` field has comment text and
//! literal *contents* blanked out (delimiters are kept so columns stay
//! roughly stable) and whose `comment` field collects the comment text.
//!
//! The lexer understands: line comments, nested block comments, string
//! literals with escapes, byte strings, raw (byte) strings with any number of
//! `#`s, character literals, and lifetimes (`'a` is not an unterminated char
//! literal). It does not parse Rust — rules operate on a per-line token
//! stream — which is exactly the checkpatch-style trade-off: fast,
//! dependency-free, and precise enough when paired with explicit waivers.

/// One physical source line, split into code and comment channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// The line with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated comment text appearing on the line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: u32, doc: bool },
    Str { raw_hashes: Option<u8> },
    CharLit,
}

/// Splits `src` into lines with comment/string content separated from code.
pub fn split_lines(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    // Returns the number of `#`s if a raw-string opener (`"`, `#"`, `##"`, …)
    // starts at `j`, after the `r` / `br` prefix has been consumed.
    let raw_opener = |j: usize| -> Option<u8> {
        let mut hashes = 0u8;
        let mut k = j;
        while k < chars.len() && chars[k] == '#' && hashes < u8::MAX {
            hashes += 1;
            k += 1;
        }
        (k < chars.len() && chars[k] == '"').then_some(hashes)
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A char literal cannot contain a bare newline: an unterminated
            // `'…` ends at the line break (error recovery), otherwise one
            // stray quote would swallow the rest of the file as literal
            // content and desync every later line number.
            if matches!(mode, Mode::LineComment { .. } | Mode::CharLit) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                let prev_is_ident =
                    i.checked_sub(1).is_some_and(|p| chars[p].is_alphanumeric() || chars[p] == '_');
                match c {
                    '/' if next == Some('/') => {
                        // Doc comments (`///`, `//!`) are documentation, not
                        // lint directives: their text never reaches the
                        // waiver parser, so prose like "allow(RULE, reason)"
                        // in rustdoc cannot be mistaken for a waiver.
                        let doc = matches!(chars.get(i + 2), Some('/' | '!'));
                        cur.code.push_str("  ");
                        mode = Mode::LineComment { doc };
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        let doc = matches!(chars.get(i + 2), Some('*' | '!'))
                            && chars.get(i + 3) != Some(&'/');
                        cur.code.push_str("  ");
                        mode = Mode::BlockComment { depth: 1, doc };
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        mode = Mode::Str { raw_hashes: None };
                        i += 1;
                    }
                    'r' | 'b' if !prev_is_ident => {
                        // Possible raw-string / byte-string prefix: `r"`,
                        // `r#"`, `b"`, `br#"`, …
                        let after_prefix = match (c, next) {
                            ('b', Some('r')) => Some(i + 2),
                            ('r' | 'b', _) => Some(i + 1),
                            _ => None,
                        };
                        let opener = after_prefix.and_then(|j| {
                            if c == 'b' && next == Some('"') {
                                Some((j, None)) // plain byte string
                            } else {
                                raw_opener(j).map(|h| (j + h as usize, Some(h)))
                            }
                        });
                        match opener {
                            Some((quote_at, hashes)) if chars.get(quote_at) == Some(&'"') => {
                                for _ in i..=quote_at {
                                    cur.code.push(' ');
                                }
                                cur.code.pop();
                                cur.code.push('"');
                                let raw = match hashes {
                                    // `b"…"` behaves like a normal string
                                    // (escapes active); `r`/`br` disable them.
                                    Some(h) if c == 'r' || next == Some('r') => Some(h),
                                    _ => None,
                                };
                                mode = Mode::Str { raw_hashes: raw };
                                i = quote_at + 1;
                            }
                            _ => {
                                cur.code.push(c);
                                i += 1;
                            }
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: `'\…'` and `'x'` are
                        // literals; anything else (`'static`, `'_`) is a
                        // lifetime and stays in code mode. A quote directly
                        // before a newline is never a literal start — the
                        // 3-char lookahead must not consume the line break
                        // (line-count desync, pinned in `charlit_newlines`).
                        if next == Some('\\') {
                            cur.code.push('\'');
                            mode = Mode::CharLit;
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'')
                            && next != Some('\'')
                            && next != Some('\n')
                        {
                            cur.code.push_str("' ");
                            cur.code.push('\'');
                            i += 3;
                        } else {
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment { doc } => {
                if !doc {
                    cur.comment.push(c);
                }
                cur.code.push(' ');
                i += 1;
            }
            Mode::BlockComment { depth, doc } => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.code.push_str("  ");
                    i += 2;
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment { depth: depth - 1, doc };
                    }
                } else if c == '/' && next == Some('*') {
                    if !doc {
                        cur.comment.push_str("/*");
                    }
                    cur.code.push_str("  ");
                    i += 2;
                    mode = Mode::BlockComment { depth: depth + 1, doc };
                } else {
                    if !doc {
                        cur.comment.push(c);
                    }
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // A trailing `\` continues the string onto the
                            // next line; leave the newline for the top of the
                            // loop so line numbers stay aligned.
                            if chars.get(i + 1) == Some(&'\n') {
                                cur.code.push(' ');
                                i += 1;
                            } else {
                                cur.code.push_str("  ");
                                i += 2;
                            }
                        } else if c == '"' {
                            cur.code.push('"');
                            mode = Mode::Code;
                            i += 1;
                        } else {
                            cur.code.push(' ');
                            i += 1;
                        }
                    }
                    Some(h) => {
                        let closes =
                            c == '"' && (1..=h as usize).all(|k| chars.get(i + k) == Some(&'#'));
                        if closes {
                            cur.code.push('"');
                            for _ in 0..h {
                                cur.code.push(' ');
                            }
                            mode = Mode::Code;
                            i += 1 + h as usize;
                        } else {
                            cur.code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    // Never consume a line break as the escaped character:
                    // the top of the loop must see every `\n` so the Line
                    // vector stays in sync with physical lines.
                    if chars.get(i + 1) == Some(&'\n') {
                        cur.code.push(' ');
                        i += 1;
                    } else {
                        cur.code.push_str("  ");
                        i += 2;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// A token of line code: identifiers, numeric literals, and operator
/// punctuation. Only what the rules need — not a full Rust lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integer or float), suffix included.
    Num(String),
    /// Operator / punctuation (`==`, `!=`, `::`, or a single char).
    Punct(String),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            Tok::Num(_) | Tok::Punct(_) => None,
        }
    }

    /// The punctuation text, if this token is one.
    pub fn punct(&self) -> Option<&str> {
        match self {
            Tok::Punct(s) => Some(s),
            Tok::Ident(_) | Tok::Num(_) => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.punct() == Some(p)
    }

    /// Whether this token is a floating-point literal: has a decimal point,
    /// an exponent, or an `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        match self {
            Tok::Num(s) => {
                s.contains('.')
                    || s.ends_with("f32")
                    || s.ends_with("f64")
                    || (s.contains(['e', 'E']) && !s.starts_with("0x") && !s.starts_with("0X"))
            }
            Tok::Ident(_) | Tok::Punct(_) => false,
        }
    }
}

/// Tokenizes one line of comment-stripped code.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // A `.` continues the number only when not a `..` range and when
            // followed by a digit or end-of-number (`1.` / `1.5`, not `1.max`).
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1) != Some(&'.')
                && chars.get(i + 1).is_none_or(char::is_ascii_digit)
            {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Exponent: `1.5e-3`.
                if chars.get(i).is_some_and(|&e| e == 'e' || e == 'E') {
                    let mut j = i + 1;
                    if chars.get(j).is_some_and(|&s| s == '+' || s == '-') {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(char::is_ascii_digit) {
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // Suffix: `1.0f64`.
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            out.push(Tok::Num(chars[start..i].iter().collect()));
        } else {
            let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if matches!(pair.as_str(), "==" | "!=" | "::" | "->" | "=>" | "<=" | ">=") {
                out.push(Tok::Punct(pair));
                i += 2;
            } else {
                out.push(Tok::Punct(c.to_string()));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_blanked() {
        let lines = split_lines("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = split_lines("a /* one /* two */ still */ b\nc /* open\nHashMap\n*/ d");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("HashMap"));
        assert!(lines[2].comment.contains("HashMap"));
        assert!(lines[3].code.contains('d'));
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let lines = split_lines(r#"let s = "HashMap // not a comment"; let t = 1;"#);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("let t = 1"));
        assert_eq!(lines[0].code.matches('"').count(), 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"thread_rng() " inside"#; let u = 2;"###;
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[0].code.contains("let u = 2"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let lines = split_lines(r##"let a = b"SystemTime"; let b2 = br#"Instant"#; x"##);
        assert!(!lines[0].code.contains("SystemTime"));
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.ends_with('x'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = codes("fn f<'a>(x: &'a str) { let c = ','; let d = '\\''; g(x) }");
        assert!(lines[0].contains("fn f<'a>(x: &'a str)"));
        assert!(lines[0].contains("g(x)"));
        assert!(!lines[0].contains(','));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lines = codes(r#"let s = "a\"HashSet"; done()"#);
        assert!(!lines[0].contains("HashSet"));
        assert!(lines[0].contains("done()"));
    }

    #[test]
    fn ident_ending_in_r_is_not_raw_string() {
        let lines = codes(r#"for x in iter { "s"; }"#);
        assert!(lines[0].contains("for x in iter"));
    }

    #[test]
    fn tokenizer_floats_and_ops() {
        let toks = tokenize("if p == 0.0 && q != 1e9 { a.b(2..3, 1.5e-3, 7f64) }");
        assert!(toks.contains(&Tok::Punct("==".into())));
        assert!(toks.contains(&Tok::Num("0.0".into())));
        assert!(Tok::Num("1e9".into()).is_float_literal());
        assert!(Tok::Num("1.5e-3".into()).is_float_literal());
        assert!(Tok::Num("7f64".into()).is_float_literal());
        assert!(!Tok::Num("2".into()).is_float_literal());
        assert!(!Tok::Num("0x1e9".into()).is_float_literal());
        // `2..3` lexes as number, range punct, number — not a float.
        assert!(toks.contains(&Tok::Num("2".into())));
        assert!(toks.contains(&Tok::Num("3".into())));
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let toks = tokenize("x(1.max(2))");
        assert!(toks.contains(&Tok::Num("1".into())));
        assert!(toks.iter().any(|t| t.ident() == Some("max")));
    }

    /// Every input must produce exactly one `Line` per physical line — rule
    /// findings are reported by line number, so a lexer that eats a newline
    /// shifts every later diagnostic onto the wrong line.
    fn assert_line_sync(src: &str) {
        assert_eq!(split_lines(src).len(), src.split('\n').count(), "line-count desync on {src:?}");
    }

    #[test]
    fn charlit_newlines_do_not_desync_line_numbers() {
        // Regression: an unterminated `'\` escape at end-of-line used to
        // consume the newline, blanking the next line as literal content.
        let src = "let c = '\\\nlet x = HashMap;\ndone";
        assert_line_sync(src);
        let lines = split_lines(src);
        assert!(lines[1].code.contains("HashMap"), "{lines:?}");
        // Regression: a quote directly before a newline used to be taken as
        // the start of a 3-char literal `'<newline>'`, swallowing the break.
        let src2 = "let c = '\n'; let y = HashMap;\ndone";
        assert_line_sync(src2);
        assert_eq!(split_lines(src2)[2].code, "done");
    }

    #[test]
    fn line_sync_holds_across_literal_kinds() {
        for src in [
            "let s = r#\"l1\nl2\"#; x\ny",
            "let s = \"a\\\n b\"; x\ny",
            "a /* one\ntwo\n*/ b",
            "let s = br##\"x\ny\"##;\nz",
            "'\\\n'\n'",
        ] {
            assert_line_sync(src);
        }
    }

    #[test]
    fn raw_strings_more_hashes_and_false_closers() {
        // A candidate closer with too few hashes stays inside the string;
        // surplus hashes after the real closer are code again.
        let lines = codes("let s = r##\"a\"# b\"##; tail");
        assert!(!lines[0].contains('a') || !lines[0].contains('b'), "{lines:?}");
        assert!(lines[0].contains("tail"));
        let lines = codes("let s = r#\"x\"## ; HashMap");
        assert!(lines[0].contains("HashMap"), "{lines:?}");
        assert!(lines[0].contains('#'), "surplus hash is code: {lines:?}");
    }

    #[test]
    fn nested_block_comment_pathologies() {
        // `/*/` opens a nested level (it is `/*` then `/`), never closes one.
        let lines = codes("a /*/*/ b HashMap");
        assert!(!lines[0].contains("HashMap"), "{lines:?}");
        let lines = codes("a /* /*/ */ */ b");
        assert!(lines[0].contains('b'), "{lines:?}");
        // Comments do not respect string quotes: `"*/` closes.
        let lines = codes("a /* \"*/ b");
        assert!(lines[0].contains('b'), "{lines:?}");
    }

    #[test]
    fn lifetime_char_ambiguity_corners() {
        let lines = codes("f::<'a>('x'); let q = '\"'; let s = \"HashMap\";");
        assert!(lines[0].contains("f::<'a>"), "{lines:?}");
        assert!(!lines[0].contains('x'), "char blanked: {lines:?}");
        assert!(!lines[0].contains("HashMap"), "quote-char must not open a string: {lines:?}");
        let lines = codes("let nl = b'\\n'; break 'outer; let r = 1..'z';");
        assert!(lines[0].contains("break 'outer"), "{lines:?}");
        assert!(!lines[0].contains('z'), "{lines:?}");
    }
}
