//! CLI for the workspace linter. See `simlint --help`.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::ALL_RULES;

const USAGE: &str = "\
simlint — workspace determinism & safety linter

USAGE:
    cargo run -p simlint -- [OPTIONS]

OPTIONS:
    --check             Lint the workspace (the default; kept for explicit CI
                        invocations). Exit 0 = clean, 1 = findings, 2 = error.
    --root DIR          Workspace root (default: nearest ancestor with a
                        [workspace] Cargo.toml).
    --baseline FILE     Baseline file (default: <root>/simlint.baseline).
    --write-baseline    Rewrite the baseline to suppress all current findings.
    --json FILE         Also write every finding (fresh, waived, and
                        baseline-suppressed) as JSONL to FILE (`-` = stdout).
    --list-rules        Print the rule set and exit.
    -h, --help          This text.

Waive a finding inline with `// simlint: allow(RULE, reason)` on (or directly
above) the offending line; the reason is mandatory. See DESIGN.md §11.";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
    json: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts =
        Opts { root: None, baseline: None, write_baseline: false, list_rules: false, json: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--root" => {
                opts.root = Some(it.next().ok_or("--root needs a directory argument")?.into());
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a file argument")?.into());
            }
            "--write-baseline" => opts.write_baseline = true,
            "--json" => {
                opts.json = Some(it.next().ok_or("--json needs a file argument (or `-`)")?.into());
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for (id, summary) in ALL_RULES {
            println!("{id}  {summary}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            simlint::find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory")?
        }
    };
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("simlint.baseline"));

    if opts.write_baseline {
        let findings = simlint::lint_workspace(&root).map_err(|e| format!("lint: {e}"))?;
        std::fs::write(&baseline_path, simlint::baseline::render(&findings))
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        eprintln!("simlint: wrote {} entries to {}", findings.len(), baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let report = simlint::check(&root, &baseline_path).map_err(|e| format!("lint: {e}"))?;
    if let Some(json) = &opts.json {
        let body = simlint::render_jsonl(&report);
        if json.as_os_str() == "-" {
            print!("{body}");
        } else {
            std::fs::write(json, body).map_err(|e| format!("write {}: {e}", json.display()))?;
        }
    }
    for f in &report.fresh {
        println!("{f}");
    }
    for key in &report.stale {
        eprintln!("simlint: stale baseline entry {key} (matched nothing; delete it)");
    }
    eprintln!(
        "simlint: {} finding(s), {} baseline-suppressed, {} stale baseline entr{}",
        report.fresh.len(),
        report.suppressed.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
    );
    Ok(if report.fresh.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("simlint: error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
