//! A lightweight item parser on top of [`crate::lexer`].
//!
//! The token rules in [`crate::rules`] are per-line; the cross-file rules
//! (`U001`/`U002`, `D004`, `E001`, `C001`, `C002`) need *structure*: which
//! tokens form a function body, what an enum's variants are, which `impl`
//! block a `Self::` path resolves through. This module builds exactly that
//! much — a flat item list per file with token ranges — and nothing more.
//! It is not a Rust parser: it never fails, it skips what it does not
//! understand, and every loop advances, so arbitrary byte soup (see the
//! property tests) terminates with a possibly-empty item list.
//!
//! What it recognizes: `fn` items with named parameters and return type,
//! `enum` items with their variant names, `impl` blocks (for `Self`
//! resolution), `mod` blocks (descended into), `use` declarations, and the
//! file's `unsafe` / `spawn(` / `.lock()` sites. Everything is recorded
//! with 1-based line numbers and half-open token ranges into the file's
//! flat [`PTok`] stream.

use std::ops::Range;

use crate::lexer::{tokenize, Line, Tok};

/// A token with the 1-based line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PTok {
    /// 1-based physical line number.
    pub line: usize,
    /// The token.
    pub tok: Tok,
}

/// Flattens lexed lines into a single positioned token stream.
pub fn token_stream(lines: &[Line]) -> Vec<PTok> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for tok in tokenize(&line.code) {
            out.push(PTok { line: idx + 1, tok });
        }
    }
    out
}

/// One `name: Type` function parameter (receivers like `&mut self` are not
/// recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding name (first identifier of the pattern).
    pub name: String,
    /// The declared type, as space-joined token text.
    pub ty: String,
}

/// A `fn` item (free function or method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// Named parameters, in declaration order (receiver excluded).
    pub params: Vec<Param>,
    /// Return type text (empty for `()` / none).
    pub ret: String,
    /// Token range of the body, exclusive of the braces; empty for
    /// body-less declarations (trait methods, externs).
    pub body: Range<usize>,
    /// Line of the `fn` keyword.
    pub line: usize,
}

/// An `enum` item with its variant names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// The enum name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Line of the `enum` keyword.
    pub line: usize,
}

/// An `impl` block, recorded so `Self::Variant` paths inside its body can
/// be resolved to the implemented type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplDef {
    /// Last path segment of the implemented type (`fabric::Lease` → `Lease`).
    pub type_name: String,
    /// Token range of the block body, exclusive of the braces.
    pub body: Range<usize>,
    /// Line of the `impl` keyword.
    pub line: usize,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    /// `fn` items, including methods inside `impl`/`mod` blocks.
    pub fns: Vec<FnDef>,
    /// `enum` items.
    pub enums: Vec<EnumDef>,
    /// `impl` blocks.
    pub impls: Vec<ImplDef>,
    /// `use` declarations, as space-joined path text.
    pub uses: Vec<String>,
    /// Lines containing an `unsafe` keyword.
    pub unsafe_lines: Vec<usize>,
    /// Lines containing a `spawn(`/`spawn_*(` call.
    pub spawn_lines: Vec<usize>,
    /// Lines containing a `.lock()` call.
    pub lock_lines: Vec<usize>,
}

impl FileItems {
    /// The `impl` block (innermost, i.e. latest-starting) whose body covers
    /// token index `at`, for `Self::` resolution.
    pub fn impl_at(&self, at: usize) -> Option<&ImplDef> {
        self.impls.iter().filter(|im| im.body.contains(&at)).max_by_key(|im| im.body.start)
    }
}

/// Index of the token that closes the bracket opened at `open` (which must
/// hold `(`, `[`, or `{`). Returns `toks.len()` when unbalanced.
pub fn matching_close(toks: &[PTok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok.punct() {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

fn ident_at(toks: &[PTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

fn punct_at(toks: &[PTok], i: usize, p: &str) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is_punct(p))
}

/// Skips a `<…>` generics list starting at `i` (which must hold `<`);
/// returns the index after the closing `>`. `(`/`)` nesting inside is
/// honoured for const-generic expressions.
fn skip_generics(toks: &[PTok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].tok.punct() {
            Some("<") => depth += 1,
            Some(">") => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            // A `(` inside generics (const-generic block) is skipped whole.
            Some("(" | "[" | "{") => j = matching_close(toks, j),
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Skips an attribute `#[…]` / `#![…]` starting at the `#`; returns the
/// index after the closing `]`, or `i + 1` if it was not an attribute.
fn skip_attr(toks: &[PTok], i: usize) -> usize {
    let mut j = i + 1;
    if punct_at(toks, j, "!") {
        j += 1;
    }
    if punct_at(toks, j, "[") {
        matching_close(toks, j) + 1
    } else {
        i + 1
    }
}

/// Whether the token before `i` permits `fn` at `i` to start an item
/// (excludes `fn`-pointer types like `f: fn(u32)` and `dyn Fn`-ish uses).
fn fn_is_item(toks: &[PTok], i: usize) -> bool {
    if ident_at(toks, i + 1).is_none() {
        return false; // `fn(…)` pointer type or stray keyword
    }
    match i.checked_sub(1).and_then(|p| toks.get(p)) {
        None => true,
        Some(prev) => match &prev.tok {
            Tok::Punct(p) => !matches!(p.as_str(), ":" | "," | "(" | "<" | "&" | "=" | "->"),
            Tok::Ident(id) => !matches!(id.as_str(), "dyn" | "impl"),
            Tok::Num(_) => true,
        },
    }
}

/// Parses the variant names out of an enum body token range.
fn parse_variants(toks: &[PTok], body: Range<usize>) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = body.start;
    while i < body.end {
        // Skip attributes and doc-derived leftovers before the name.
        while i < body.end && punct_at(toks, i, "#") {
            i = skip_attr(toks, i);
        }
        let Some(name) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        variants.push(name.to_owned());
        i += 1;
        // Skip the payload / discriminant up to the `,` separating variants.
        while i < body.end {
            if punct_at(toks, i, ",") {
                i += 1;
                break;
            }
            if punct_at(toks, i, "(") || punct_at(toks, i, "[") || punct_at(toks, i, "{") {
                i = matching_close(toks, i) + 1;
            } else {
                i += 1;
            }
        }
    }
    variants
}

/// Joins token texts with single spaces (for type / path display).
fn join_toks(toks: &[PTok]) -> String {
    let mut out = String::new();
    for t in toks {
        let s = match &t.tok {
            Tok::Ident(s) | Tok::Num(s) | Tok::Punct(s) => s.as_str(),
        };
        if !out.is_empty() && !matches!(s, "::" | "<" | ">" | "," | "(" | ")") {
            out.push(' ');
        }
        out.push_str(s);
    }
    out
}

/// Parses one parameter chunk (`mut x: Vec<u8>`); `None` for receivers.
fn parse_param(toks: &[PTok]) -> Option<Param> {
    let mut colon = None;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate() {
        match t.tok.punct() {
            Some("(" | "[" | "{" | "<") => depth += 1,
            Some(")" | "]" | "}" | ">") => depth -= 1,
            Some(":") if depth == 0 => {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?; // receiver (`self`, `&mut self`) has no `:`
    let name = toks[..colon]
        .iter()
        .filter_map(|t| t.tok.ident())
        .find(|id| !matches!(*id, "mut" | "ref"))?
        .to_owned();
    Some(Param { name, ty: join_toks(&toks[colon + 1..]) })
}

/// Parses a `fn` item starting at the `fn` keyword; returns the def and the
/// index to resume scanning from (inside the body, so nested items and
/// sites are still discovered by the caller's linear scan).
fn parse_fn(toks: &[PTok], at: usize) -> Option<(FnDef, usize)> {
    let name = ident_at(toks, at + 1)?.to_owned();
    let line = toks[at].line;
    let mut i = at + 2;
    if punct_at(toks, i, "<") {
        i = skip_generics(toks, i);
    }
    if !punct_at(toks, i, "(") {
        return None;
    }
    let close = matching_close(toks, i);
    // Split the parameter list on top-level commas.
    let mut params = Vec::new();
    let mut start = i + 1;
    let mut k = i + 1;
    while k <= close {
        // Nested brackets are jumped over whole below, so any `,` seen here
        // is a top-level parameter separator.
        let split = k == close || punct_at(toks, k, ",");
        if k < close && (punct_at(toks, k, "(") || punct_at(toks, k, "[") || punct_at(toks, k, "{"))
        {
            k = matching_close(toks, k) + 1;
            continue;
        }
        if k < close && punct_at(toks, k, "<") {
            k = skip_generics(toks, k);
            continue;
        }
        if split {
            if start < k {
                params.extend(parse_param(&toks[start..k]));
            }
            start = k + 1;
        }
        k += 1;
    }
    // Return type: `-> T` up to `{`, `;`, or `where`.
    let mut i = close + 1;
    let mut ret = String::new();
    if punct_at(toks, i, "->") {
        let rstart = i + 1;
        let mut j = rstart;
        while j < toks.len() {
            if punct_at(toks, j, "{") || punct_at(toks, j, ";") {
                break;
            }
            if ident_at(toks, j) == Some("where") {
                break;
            }
            if punct_at(toks, j, "<") {
                j = skip_generics(toks, j);
                continue;
            }
            j += 1;
        }
        ret = join_toks(&toks[rstart..j]);
        i = j;
    }
    // Where clause / trailing bounds: scan forward to the body or `;`.
    while i < toks.len() && !punct_at(toks, i, "{") && !punct_at(toks, i, ";") {
        if punct_at(toks, i, "<") {
            i = skip_generics(toks, i);
        } else {
            i += 1;
        }
    }
    let body = if punct_at(toks, i, "{") {
        let end = matching_close(toks, i);
        (i + 1)..end
    } else {
        0..0
    };
    let resume = if body.is_empty() { i + 1 } else { body.start };
    Some((FnDef { name, params, ret, body, line }, resume))
}

/// Parses the whole token stream into items. Single linear pass; item
/// bodies are re-entered (so methods inside `impl`/`mod` and nested `fn`s
/// are all found), and unknown constructs are skipped token-by-token.
pub fn parse(toks: &[PTok]) -> FileItems {
    let mut items = FileItems::default();
    let mut i = 0;
    while i < toks.len() {
        match ident_at(toks, i) {
            Some("enum") => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let name = name.to_owned();
                    let line = toks[i].line;
                    let mut j = i + 2;
                    if punct_at(toks, j, "<") {
                        j = skip_generics(toks, j);
                    }
                    while j < toks.len() && !punct_at(toks, j, "{") && !punct_at(toks, j, ";") {
                        j += 1;
                    }
                    if punct_at(toks, j, "{") {
                        let end = matching_close(toks, j);
                        let variants = parse_variants(toks, (j + 1)..end);
                        items.enums.push(EnumDef { name, variants, line });
                        i = end + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Some("fn") if fn_is_item(toks, i) => {
                if let Some((def, resume)) = parse_fn(toks, i) {
                    items.fns.push(def);
                    i = resume;
                } else {
                    i += 1;
                }
            }
            Some("impl") => {
                let mut j = i + 1;
                if punct_at(toks, j, "<") {
                    j = skip_generics(toks, j);
                }
                // `impl Trait for Type {` → the type is after `for`.
                let mut type_name = String::new();
                while j < toks.len() && !punct_at(toks, j, "{") && !punct_at(toks, j, ";") {
                    if ident_at(toks, j) == Some("for") {
                        type_name.clear();
                    } else if let Some(id) = ident_at(toks, j) {
                        type_name = id.to_owned();
                    }
                    if punct_at(toks, j, "<") {
                        j = skip_generics(toks, j);
                    } else {
                        j += 1;
                    }
                }
                if punct_at(toks, j, "{") && !type_name.is_empty() {
                    let end = matching_close(toks, j);
                    items.impls.push(ImplDef { type_name, body: (j + 1)..end, line: toks[i].line });
                    i = j + 1; // descend into the block
                } else {
                    i = j;
                }
            }
            Some("use") => {
                let start = i + 1;
                let mut j = start;
                while j < toks.len() && !punct_at(toks, j, ";") {
                    if punct_at(toks, j, "{") {
                        j = matching_close(toks, j);
                    }
                    j += 1;
                }
                items.uses.push(join_toks(&toks[start..j]));
                i = j + 1;
            }
            Some("unsafe") => {
                items.unsafe_lines.push(toks[i].line);
                i += 1;
            }
            Some(id) if id == "spawn" || id.starts_with("spawn_") => {
                if punct_at(toks, i + 1, "(") {
                    items.spawn_lines.push(toks[i].line);
                }
                i += 1;
            }
            Some("lock") => {
                if i > 0
                    && toks[i - 1].tok.is_punct(".")
                    && punct_at(toks, i + 1, "(")
                    && punct_at(toks, i + 2, ")")
                {
                    items.lock_lines.push(toks[i].line);
                }
                i += 1;
            }
            _ => {
                if punct_at(toks, i, "#") {
                    i = skip_attr(toks, i);
                } else {
                    i += 1;
                }
            }
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;

    fn items_of(src: &str) -> FileItems {
        parse(&token_stream(&split_lines(src)))
    }

    #[test]
    fn parses_enum_variants() {
        let items = items_of(
            "#[derive(Debug)]\npub enum DropCause {\n  Full,\n  #[cfg(x)] Corrupt(u8),\n  Fault { link: u32 },\n  Seeded = 3,\n}\n",
        );
        assert_eq!(items.enums.len(), 1);
        let e = &items.enums[0];
        assert_eq!(e.name, "DropCause");
        assert_eq!(e.variants, ["Full", "Corrupt", "Fault", "Seeded"]);
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parses_fn_signature_and_body_range() {
        let src = "pub fn ser_ns(len_bytes: u32, rate_bps: u64) -> SimDuration {\n  let x = 1;\n  x\n}\nfn plain() {}\n";
        let items = items_of(src);
        assert_eq!(items.fns.len(), 2);
        let f = &items.fns[0];
        assert_eq!(f.name, "ser_ns");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "len_bytes");
        assert_eq!(f.params[0].ty, "u32");
        assert_eq!(f.params[1].name, "rate_bps");
        assert_eq!(f.ret, "SimDuration");
        assert!(!f.body.is_empty());
        assert_eq!(items.fns[1].name, "plain");
    }

    #[test]
    fn methods_inside_impl_and_self_resolution() {
        let src = "impl Tok {\n  pub fn ident(&self) -> Option<&str> { self.x }\n}\nimpl Display for Finding {\n  fn fmt(&self, f: &mut Formatter<'_>) -> Result { ok }\n}\n";
        let items = items_of(src);
        assert_eq!(items.impls.len(), 2);
        assert_eq!(items.impls[0].type_name, "Tok");
        assert_eq!(items.impls[1].type_name, "Finding");
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "ident");
        // `Self` resolution: the fn body sits inside the first impl.
        let at = items.fns[0].body.start;
        assert_eq!(items.impl_at(at).map(|im| im.type_name.as_str()), Some("Tok"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = items_of("struct S { cb: fn(u32) -> u8 }\nfn real(x: fn(u32)) {}\n");
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn records_sites_and_uses() {
        let src = "use std::sync::Mutex;\nfn f() {\n  let g = self.writer.lock();\n  scope.spawn(|| {});\n  unsafe { x() }\n}\n";
        let items = items_of(src);
        assert_eq!(items.uses.len(), 1);
        assert_eq!(items.lock_lines, [3]);
        assert_eq!(items.spawn_lines, [4]);
        assert_eq!(items.unsafe_lines, [5]);
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let src = "fn g<T: Ord, const N: usize>(xs: [T; N], m: BTreeMap<String, Vec<u8>>) -> Vec<T>\nwhere T: Clone {\n  xs\n}\n";
        let items = items_of(src);
        assert_eq!(items.fns.len(), 1);
        let f = &items.fns[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "xs");
        assert_eq!(f.params[1].name, "m");
        assert!(!f.body.is_empty());
    }

    #[test]
    fn parser_tolerates_garbage() {
        for src in ["enum", "fn", "impl {", "fn (", "enum E {", ")]}>::", "fn x(y:)", "use ;"] {
            let _ = items_of(src); // must not panic and must terminate
        }
    }
}
