//! Conservative intra-procedural dataflow: unit tags and wall-clock taint.
//!
//! Two lattices flow through each function body in one forward pass over
//! its statements (no fixpoint — loops are analyzed once, which is sound
//! for the warnings we emit because facts only ever *add* findings, never
//! suppress them):
//!
//! * **Unit tags** (`U001`/`U002`). This workspace encodes units in names —
//!   `len_bytes`, `rate_bps`, `budget_nanos` — because the PR 2 overflow
//!   and the PR 5 sub-bit/s truncation were both silent unit mix-ups
//!   between raw integers. The pass tags values via those naming
//!   conventions, propagates tags through `let` bindings, and flags flows
//!   that cross units without an explicit conversion: assignments and
//!   cross-file argument passing (U001), additive/comparison arithmetic
//!   (U002). Anything involving `*`//`/`/`%` or a conversion-shaped call
//!   (`to_*`, `from_*`, `as_*`, `*_per_*`) drops to ⊤ (unknown): scaling
//!   *is* how units legitimately convert, so only unconverted flows fire.
//!
//! * **Wall-clock taint** (`D004`). D002 bans wall-clock *call sites* in
//!   sim-core crates; D004 generalizes it to flows anywhere in `src`: a
//!   value derived from `Instant`/`SystemTime`/date-shaped sources must
//!   never reach a sim-state sink (`SimTime`/`SimDuration` construction,
//!   or a parameter of that type on an indexed function), even through
//!   intermediate bindings the call-site rule cannot see.
//!
//! Both lattices are deliberately blunt: one distinct fact or ⊤. Every
//! widening loses findings, never invents them — false negatives over
//! false positives, the same bet the per-line rules make.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::index::SymbolIndex;
use crate::parser::{matching_close, FnDef, PTok};

/// A unit tag inferred from naming conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Bits per second (`_bps`).
    Bps,
    /// Bytes (`_bytes`).
    Bytes,
    /// Bits (`_bits`).
    Bits,
    /// Nanoseconds (`_nanos`, `_ns`).
    Nanos,
    /// Microseconds (`_micros`, `_us`).
    Micros,
    /// Milliseconds (`_millis`, `_ms`).
    Millis,
    /// Seconds (`_secs`, `_s`).
    Secs,
}

impl Unit {
    /// Human-readable label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Bps => "bits/s",
            Unit::Bytes => "bytes",
            Unit::Bits => "bits",
            Unit::Nanos => "nanoseconds",
            Unit::Micros => "microseconds",
            Unit::Millis => "milliseconds",
            Unit::Secs => "seconds",
        }
    }
}

/// Suffix → unit table, longest-first so `_bytes` wins over `_s`.
const SUFFIXES: &[(&str, Unit)] = &[
    ("_bps", Unit::Bps),
    ("_bytes", Unit::Bytes),
    ("_byte", Unit::Bytes),
    ("_bits", Unit::Bits),
    ("_bit", Unit::Bits),
    ("_nanos", Unit::Nanos),
    ("_ns", Unit::Nanos),
    ("_micros", Unit::Micros),
    ("_us", Unit::Micros),
    ("_millis", Unit::Millis),
    ("_ms", Unit::Millis),
    ("_seconds", Unit::Secs),
    ("_secs", Unit::Secs),
    ("_sec", Unit::Secs),
    ("_s", Unit::Secs),
];

/// Exact-name → unit table (bare `bytes`, `rate` accessors named `bps`, …).
const EXACT: &[(&str, Unit)] = &[
    ("bps", Unit::Bps),
    ("bytes", Unit::Bytes),
    ("bits", Unit::Bits),
    ("nanos", Unit::Nanos),
    ("ns", Unit::Nanos),
    ("micros", Unit::Micros),
    ("millis", Unit::Millis),
    ("ms", Unit::Millis),
    ("secs", Unit::Secs),
];

/// The unit an identifier's name claims, if any.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    if let Some((_, u)) = EXACT.iter().find(|(n, _)| *n == name) {
        return Some(*u);
    }
    SUFFIXES.iter().find(|(suf, _)| name.ends_with(suf)).map(|(_, u)| *u)
}

/// Whether an identifier names an explicit conversion (which launders any
/// unit mix it participates in): `to_*`, `from_*`, `as_*`, `with_*`,
/// `into_*`, or a `*_per_*` rate.
pub fn is_conversion(name: &str) -> bool {
    ["to_", "from_", "as_", "with_", "into_"].iter().any(|p| name.starts_with(p))
        || ["_to_", "_from_", "_as_", "_per_"].iter().any(|m| name.contains(m))
}

/// Sources of wall-clock taint: types, free constructors, and the method
/// names that read a host clock.
const TAINT_SOURCES: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "OffsetDateTime",
    "Utc",
    "Local",
    "chrono",
    "duration_since",
];

/// Sim-state types whose construction is a D004 sink.
const SIM_STATE_TYPES: &[&str] = &["SimTime", "SimDuration"];

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "move", "as", "fn", "let", "else",
    "break", "continue", "unsafe", "await", "ref", "mut", "pub", "where", "impl", "dyn", "Self",
    "self", "super", "crate",
];

/// One dataflow diagnostic, later merged into the file's findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFinding {
    /// 1-based line.
    pub line: usize,
    /// `U001`, `U002`, or `D004`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

fn ident_at(toks: &[PTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

fn punct_at(toks: &[PTok], i: usize, p: &str) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is_punct(p))
}

/// Splits a body token range into statements at `;` (bracket depth 0) and
/// at every brace (block structure is flattened — nested statements are
/// just more statements).
fn statements(toks: &[PTok], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = range.start;
    let mut depth = 0i32;
    for i in range.clone() {
        match toks[i].tok.punct() {
            Some("(" | "[") => depth += 1,
            Some(")" | "]") => depth -= 1,
            Some(";") if depth <= 0 => {
                if start < i {
                    out.push(start..i);
                }
                start = i + 1;
                depth = 0;
            }
            Some("{" | "}") => {
                if start < i {
                    out.push(start..i);
                }
                start = i + 1;
                depth = 0;
            }
            _ => {}
        }
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

/// The environment threaded through one function body.
struct Env {
    units: BTreeMap<String, Unit>,
    taint: BTreeSet<String>,
}

impl Env {
    fn unit_of(&self, ident: &str) -> Option<Unit> {
        self.units.get(ident).copied().or_else(|| unit_of_name(ident))
    }
}

/// The single unit a token chunk carries: `None` when untagged, mixed, or
/// laundered by a conversion / multiplicative operator.
fn chunk_unit(toks: &[PTok], env: &Env) -> Option<Unit> {
    let mut found: Option<Unit> = None;
    for t in toks {
        if let Some(id) = t.tok.ident() {
            if is_conversion(id) {
                return None;
            }
            if let Some(u) = env.unit_of(id) {
                match found {
                    None => found = Some(u),
                    Some(prev) if prev != u => return None, // mixed within → ⊤
                    Some(_) => {}
                }
            }
        } else if matches!(t.tok.punct(), Some("*" | "/" | "%")) {
            return None;
        }
    }
    found
}

/// Whether a chunk carries wall-clock taint: a direct source or a tainted
/// binding.
fn chunk_tainted(toks: &[PTok], env: &Env) -> bool {
    toks.iter().filter_map(|t| t.tok.ident()).any(|id| {
        TAINT_SOURCES.contains(&id)
            || env.taint.contains(id)
            // `.elapsed()` only counts as a clock read on a tainted or
            // source receiver is impossible to know name-free; treat the
            // bare method as a source — sim clocks here expose `now_ns`,
            // not `elapsed`.
            || id == "elapsed"
    })
}

/// Boundary puncts that end a unit chunk at depth 0 (additive/comparison
/// operators are handled separately as the ops under test).
fn is_chunk_boundary(p: &str) -> bool {
    matches!(p, "=" | "," | "&" | "|" | "^" | "?" | "=>" | "->" | ";" | ":")
}

const ADDITIVE_CMP: &[&str] = &["+", "-", "<", ">", "<=", ">=", "==", "!="];

/// Positions (relative depth 0 within `stmt`) of boundaries and ops.
fn depth0_marks(toks: &[PTok], stmt: &Range<usize>) -> Vec<(usize, &'static str)> {
    // kind: "op" (additive/cmp), "bound", "eq" (plain assignment `=`)
    let mut marks = Vec::new();
    let mut depth = 0i32;
    for i in stmt.clone() {
        let Some(p) = toks[i].tok.punct() else { continue };
        match p {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ if depth > 0 => {}
            "=" => {
                // Lone `=` is assignment unless the previous punct makes it
                // a compound/range operator (`+=`, `..=`, …).
                let compound = i > stmt.start
                    && matches!(
                        toks[i - 1].tok.punct(),
                        Some("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<" | ">" | ".")
                    );
                marks.push((i, if compound { "bound" } else { "eq" }));
            }
            "<" | ">" => {
                // `<<` / `>>` shifts lex as two identical puncts; skip both.
                let shift =
                    (i > stmt.start && toks[i - 1].tok.is_punct(p)) || punct_at(toks, i + 1, p);
                // A following `=` makes this `<<=`-style; the `=` arm
                // already treats it as a bound.
                marks.push((i, if shift { "bound" } else { "op" }));
            }
            "+" | "-" => {
                // Unary minus/plus: preceded by nothing or by an operator.
                let unary = i == stmt.start
                    || toks[i - 1].tok.punct().is_some_and(|q| !matches!(q, ")" | "]"));
                let compound_assign = punct_at(toks, i + 1, "=");
                if unary && !compound_assign {
                    continue;
                }
                marks.push((i, "op"));
            }
            _ if ADDITIVE_CMP.contains(&p) => marks.push((i, "op")),
            _ if is_chunk_boundary(p) => marks.push((i, "bound")),
            _ => {}
        }
    }
    marks
}

/// Runs both lattices over one function and returns its findings.
pub fn analyze_fn(toks: &[PTok], f: &FnDef, index: &SymbolIndex) -> Vec<FlowFinding> {
    let mut env = Env { units: BTreeMap::new(), taint: BTreeSet::new() };
    for p in &f.params {
        let unit = unit_of_name(&p.name)
            .or_else(|| SIM_STATE_TYPES.iter().any(|t| p.ty.contains(t)).then_some(Unit::Nanos));
        if let Some(u) = unit {
            env.units.insert(p.name.clone(), u);
        }
    }
    let mut findings = Vec::new();

    for stmt in statements(toks, f.body.clone()) {
        analyze_statement(toks, &stmt, index, &mut env, &mut findings);
    }
    findings
}

fn analyze_statement(
    toks: &[PTok],
    stmt: &Range<usize>,
    index: &SymbolIndex,
    env: &mut Env,
    findings: &mut Vec<FlowFinding>,
) {
    let marks = depth0_marks(toks, stmt);

    // U002: additive/comparison ops between chunks with distinct units.
    for (mi, &(at, kind)) in marks.iter().enumerate() {
        if kind != "op" {
            continue;
        }
        let lstart = marks[..mi].iter().rev().map(|&(j, _)| j + 1).next().unwrap_or(stmt.start);
        let lend = at;
        // Compound assign `x += rhs`: the op chunk on the right starts
        // after the `=`.
        let rstart = if punct_at(toks, at + 1, "=") { at + 2 } else { at + 1 };
        let rend =
            marks[mi + 1..].iter().map(|&(j, _)| j).find(|&j| j >= rstart).unwrap_or(stmt.end);
        let left = chunk_unit(&toks[lstart..lend], env);
        let right = chunk_unit(&toks[rstart..rend], env);
        if let (Some(a), Some(b)) = (left, right) {
            if a != b {
                findings.push(FlowFinding {
                    line: toks[at].line,
                    rule: "U002",
                    message: format!(
                        "arithmetic/comparison mixes {} and {} without an explicit conversion",
                        a.label(),
                        b.label()
                    ),
                });
            }
        }
    }

    // U001 (assignment form) + unit/taint propagation through bindings.
    let eq = marks.iter().find(|&&(_, k)| k == "eq").map(|&(j, _)| j);
    if let Some(eq) = eq {
        let mut lhs = stmt.start..eq;
        let mut declared_ty = String::new();
        let is_let = ident_at(toks, lhs.start) == Some("let");
        if is_let {
            lhs.start += 1;
            if ident_at(toks, lhs.start) == Some("mut") {
                lhs.start += 1;
            }
            // Strip a `: Type` annotation (the `:` is a depth-0 bound).
            if let Some(colon) = (lhs.start..lhs.end)
                .find(|&j| toks[j].tok.is_punct(":") && !punct_at(toks, j + 1, ":"))
            {
                declared_ty = toks[colon + 1..lhs.end]
                    .iter()
                    .filter_map(|t| t.tok.ident())
                    .collect::<Vec<_>>()
                    .join(" ");
                lhs.end = colon;
            }
        }
        // The governing name: a single binding for `let`, the trailing
        // field/ident of the place expression otherwise.
        let name = toks[lhs.clone()].iter().rev().filter_map(|t| t.tok.ident()).next();
        if let Some(name) = name.map(str::to_owned) {
            let rhs = eq + 1..stmt.end;
            // A control-flow right-hand side (`let x = match scrut` — the
            // braces split the statement before the arms) exposes only the
            // scrutinee/condition here, which is NOT the assigned value:
            // treat it as fully opaque.
            let rhs_opaque = matches!(
                ident_at(toks, rhs.start),
                Some("match" | "if" | "loop" | "while" | "unsafe")
            );
            let lhs_unit = if is_let {
                unit_of_name(&name).or_else(|| {
                    SIM_STATE_TYPES.iter().any(|t| declared_ty.contains(t)).then_some(Unit::Nanos)
                })
            } else {
                env.unit_of(&name)
            };
            let rhs_unit = if rhs_opaque { None } else { chunk_unit(&toks[rhs.clone()], env) };
            if let (Some(a), Some(b)) = (lhs_unit, rhs_unit) {
                if a != b {
                    findings.push(FlowFinding {
                        line: toks[eq].line,
                        rule: "U001",
                        message: format!(
                            "assignment mixes units: `{name}` is {} but the right-hand side is {}; insert an explicit conversion",
                            a.label(),
                            b.label()
                        ),
                    });
                }
            }
            // Propagate.
            if let Some(u) = lhs_unit.or(rhs_unit) {
                env.units.insert(name.clone(), u);
            }
            let tainted = !rhs_opaque && chunk_tainted(&toks[rhs.clone()], env);
            if tainted {
                env.taint.insert(name.clone());
                let sinky = SIM_STATE_TYPES.iter().any(|t| declared_ty.contains(t));
                if sinky {
                    findings.push(FlowFinding {
                        line: toks[eq].line,
                        rule: "D004",
                        message: format!(
                            "wall-clock-derived value flows into sim state: `{name}` is declared {declared_ty}; sim time must come from the simulated clock"
                        ),
                    });
                }
            } else if is_let {
                env.taint.remove(&name); // strong update on rebinding
            }
        }
    }

    // Call scans: sim-state constructor sinks and indexed-fn argument flow.
    let mut i = stmt.start;
    while i < stmt.end {
        let Some(id) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        // `SimTime::x(args)` / `SimDuration::x(args)` with a tainted arg.
        if SIM_STATE_TYPES.contains(&id)
            && punct_at(toks, i + 1, "::")
            && punct_at(toks, i + 3, "(")
        {
            let close = matching_close(toks, i + 3);
            if chunk_tainted(&toks[i + 4..close.min(toks.len())], env) {
                findings.push(FlowFinding {
                    line: toks[i].line,
                    rule: "D004",
                    message: format!(
                        "wall-clock-derived value flows into sim state via `{id}::{}`; sim time must come from the simulated clock",
                        ident_at(toks, i + 2).unwrap_or("?")
                    ),
                });
            }
            i += 4;
            continue;
        }
        // Plain call `name(args)` — not a method, macro, or keyword.
        let is_call = punct_at(toks, i + 1, "(")
            && !NON_CALL_KEYWORDS.contains(&id)
            && !(i > stmt.start && toks[i - 1].tok.is_punct("."));
        if is_call {
            if let Some(info) = index.unique_fn(id) {
                let close = matching_close(toks, i + 1);
                let args = split_args(toks, i + 2..close.min(toks.len()));
                if args.len() == info.param_names.len() {
                    for (k, arg) in args.iter().enumerate() {
                        let want = unit_of_name(&info.param_names[k]);
                        let got = chunk_unit(&toks[arg.clone()], env);
                        if let (Some(a), Some(b)) = (want, got) {
                            if a != b {
                                findings.push(FlowFinding {
                                    line: toks[arg.start].line,
                                    rule: "U001",
                                    message: format!(
                                        "argument `{}` of `{id}` ({}:{}) expects {} but the call passes {}",
                                        info.param_names[k],
                                        info.file,
                                        info.line,
                                        a.label(),
                                        b.label()
                                    ),
                                });
                            }
                        }
                        let sinky = SIM_STATE_TYPES.iter().any(|t| info.param_tys[k].contains(t));
                        if sinky && chunk_tainted(&toks[arg.clone()], env) {
                            findings.push(FlowFinding {
                                line: toks[arg.start].line,
                                rule: "D004",
                                message: format!(
                                    "wall-clock-derived value passed as `{}: {}` to `{id}` ({}:{}); sim time must come from the simulated clock",
                                    info.param_names[k],
                                    info.param_tys[k],
                                    info.file,
                                    info.line
                                ),
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Splits a call's argument token range at top-level commas.
fn split_args(toks: &[PTok], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = range.start;
    let mut depth = 0i32;
    let mut i = range.start;
    while i < range.end {
        match toks[i].tok.punct() {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => depth -= 1,
            Some(",") if depth == 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;
    use crate::parser::{parse, token_stream};

    fn flow(src: &str) -> Vec<FlowFinding> {
        let toks = token_stream(&split_lines(src));
        let items = parse(&toks);
        let idx = SymbolIndex::build([("t.rs", &items)]);
        let mut out = Vec::new();
        for f in &items.fns {
            out.extend(analyze_fn(&toks, f, &idx));
        }
        out
    }

    fn rules(src: &str) -> Vec<&'static str> {
        flow(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unit_suffix_table() {
        assert_eq!(unit_of_name("len_bytes"), Some(Unit::Bytes));
        assert_eq!(unit_of_name("rate_bps"), Some(Unit::Bps));
        assert_eq!(unit_of_name("budget_ns"), Some(Unit::Nanos));
        assert_eq!(unit_of_name("timeout_s"), Some(Unit::Secs));
        assert_eq!(unit_of_name("workers"), None);
        assert_eq!(unit_of_name("stats"), None);
        assert_eq!(unit_of_name("status"), None);
    }

    #[test]
    fn u001_fires_on_cross_unit_let() {
        assert_eq!(rules("fn f(len_bytes: u64) { let wire_bits = len_bytes; }"), ["U001"]);
    }

    #[test]
    fn u001_clean_with_scaling_or_conversion() {
        assert!(rules("fn f(len_bytes: u64) { let wire_bits = len_bytes * 8; }").is_empty());
        assert!(
            rules("fn f(len_bytes: u64) { let wire_bits = bytes_to_bits(len_bytes); }").is_empty()
        );
    }

    #[test]
    fn u002_fires_on_cross_unit_compare_and_add() {
        assert_eq!(rules("fn f(a_bps: u64, b_bytes: u64) { if a_bps < b_bytes { } }"), ["U002"]);
        assert_eq!(rules("fn f(x_ns: u64, y_ms: u64) { let t_ns = x_ns + y_ms; }"), ["U002"]);
    }

    #[test]
    fn u002_clean_on_same_unit_and_boolean_chains() {
        assert!(rules("fn f(a_bps: u64, b_bps: u64) { if a_bps < b_bps { } }").is_empty());
        // `&&` bounds the chunks: the second comparison must not leak into
        // the first one's right-hand side.
        assert!(
            rules("fn f(a_bps: u64, b_bytes: u64) { if a_bps > 0 && b_bytes > 0 { } }").is_empty()
        );
    }

    #[test]
    fn units_propagate_through_lets() {
        assert_eq!(
            rules("fn f(len_bytes: u64) { let stored = len_bytes; let out_bits = stored; }"),
            ["U001"]
        );
    }

    #[test]
    fn d004_taints_through_bindings_to_sim_sinks() {
        assert_eq!(
            rules("fn f() { let t0 = Instant::now(); let d = t0.elapsed(); let x = SimDuration::from_nanos(d); }"),
            // the elapsed read re-taints, then the constructor sink fires
            ["D004"]
        );
        assert!(rules("fn f(n: u64) { let x = SimDuration::from_nanos(n); }").is_empty());
    }

    #[test]
    fn d004_fires_on_typed_let_sink() {
        assert_eq!(
            rules("fn f() { let wall = SystemTime::now(); let t: SimTime = wall; }"),
            ["D004"]
        );
    }

    #[test]
    fn compound_assign_mixing_units_fires() {
        assert_eq!(rules("fn f(mut acc_ns: u64, d_ms: u64) { acc_ns += d_ms; }"), ["U002"]);
        assert!(rules("fn f(mut acc_ns: u64, d_ns: u64) { acc_ns += d_ns; }").is_empty());
    }

    #[test]
    fn sim_duration_params_carry_nanos() {
        assert_eq!(rules("fn f(d: SimDuration) { let gap_us = d; }"), ["U001"]);
    }

    #[test]
    fn shifts_and_generics_do_not_fire() {
        assert!(rules("fn f(x_bits: u64, n_bytes: u64) { let y_bits = x_bits << 2; }").is_empty());
        assert!(rules("fn f(v: Vec<u64>, n_bytes: u64) { let k = v.len(); }").is_empty());
    }
}
