//! FatTree topology (Al-Fares et al., SIGCOMM 2008), as used by the paper's
//! htsim datacenter experiments (Figs. 13, 15, 16).
//!
//! A `k`-ary FatTree has `k` pods, each with `k/2` edge and `k/2` aggregation
//! switches, `(k/2)²` core switches, and `k³/4` hosts. Every inter-pod host
//! pair has `(k/2)²` equal-cost paths (one per core switch); MPTCP subflows
//! sample among them, the methodology of Raiciu et al. (SIGCOMM 2011).
//!
//! Switches are implicit: the simulator is source-routed, so a topology is
//! exactly its set of directed links plus the path enumeration.

use crate::duplex::LinkParams;
use netsim::{LinkId, Simulator};
use rand::seq::SliceRandom;
use rand::Rng;
use transport::PathSpec;

/// A `k`-ary FatTree's links and path enumeration.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The arity `k` (even).
    pub k: usize,
    host_up: Vec<LinkId>,
    host_down: Vec<LinkId>,
    /// `e2a[edge_global][a_local]`: edge → agg within the pod.
    e2a: Vec<Vec<LinkId>>,
    /// `a2e[agg_global][e_local]`: agg → edge within the pod.
    a2e: Vec<Vec<LinkId>>,
    /// `a2c[agg_global][j]`: agg → core `(a_local, j)`.
    a2c: Vec<Vec<LinkId>>,
    /// `c2a[agg_global][j]`: core `(a_local, j)` → agg.
    c2a: Vec<Vec<LinkId>>,
}

impl FatTree {
    /// Builds a `k`-ary FatTree with every link using `params`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    pub fn build(sim: &mut Simulator, k: usize, params: LinkParams) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "FatTree arity must be even, got {k}");
        let half = k / 2;
        let hosts = k * k * k / 4;
        let n_edge = k * half;
        let n_agg = k * half;
        let link = |sim: &mut Simulator| sim.add_link(params.to_config());

        let host_up = (0..hosts).map(|_| link(sim)).collect();
        let host_down = (0..hosts).map(|_| link(sim)).collect();
        let e2a = (0..n_edge).map(|_| (0..half).map(|_| link(sim)).collect()).collect();
        let a2e = (0..n_agg).map(|_| (0..half).map(|_| link(sim)).collect()).collect();
        let a2c = (0..n_agg).map(|_| (0..half).map(|_| link(sim)).collect()).collect();
        let c2a = (0..n_agg).map(|_| (0..half).map(|_| link(sim)).collect()).collect();
        FatTree { k, host_up, host_down, e2a, a2e, a2c, c2a }
    }

    /// Number of hosts (`k³/4`).
    pub fn hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of switches (`k²/4` core + `k²` pod switches = `5k²/4`).
    pub fn switches(&self) -> usize {
        5 * self.k * self.k / 4
    }

    fn half(&self) -> usize {
        self.k / 2
    }

    fn pod_of(&self, host: usize) -> usize {
        host / (self.k * self.k / 4)
    }

    fn edge_of(&self, host: usize) -> usize {
        // Global edge index.
        host / self.half()
    }

    fn agg_global(&self, pod: usize, a_local: usize) -> usize {
        pod * self.half() + a_local
    }

    /// Enumerates every equal-cost forward link path from `src` to `dst`.
    fn forward_paths(&self, src: usize, dst: usize) -> Vec<Vec<LinkId>> {
        assert_ne!(src, dst, "src and dst must differ");
        let (ps, pd) = (self.pod_of(src), self.pod_of(dst));
        let (es, ed) = (self.edge_of(src), self.edge_of(dst));
        let ed_local = ed % self.half();
        let mut out = Vec::new();
        if es == ed {
            // Same edge switch.
            out.push(vec![self.host_up[src], self.host_down[dst]]);
        } else if ps == pd {
            // Same pod, via any aggregation switch.
            for a in 0..self.half() {
                let ag = self.agg_global(ps, a);
                out.push(vec![
                    self.host_up[src],
                    self.e2a[es][a],
                    self.a2e[ag][ed_local],
                    self.host_down[dst],
                ]);
            }
        } else {
            // Inter-pod, via core (i, j).
            for i in 0..self.half() {
                for j in 0..self.half() {
                    let ags = self.agg_global(ps, i);
                    let agd = self.agg_global(pd, i);
                    out.push(vec![
                        self.host_up[src],
                        self.e2a[es][i],
                        self.a2c[ags][j],
                        self.c2a[agd][j],
                        self.a2e[agd][ed_local],
                        self.host_down[dst],
                    ]);
                }
            }
        }
        out
    }

    /// All equal-cost bidirectional paths between two hosts (reverse takes
    /// the mirror route).
    pub fn paths(&self, src: usize, dst: usize) -> Vec<PathSpec> {
        let fwd = self.forward_paths(src, dst);
        let rev = self.forward_paths(dst, src);
        debug_assert_eq!(fwd.len(), rev.len());
        fwd.into_iter().zip(rev).map(|(f, r)| PathSpec::new(f, r)).collect()
    }

    /// Samples `n` paths for a connection's subflows (without replacement
    /// while possible, as htsim's random path selection does).
    pub fn sample_paths<R: Rng>(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<PathSpec> {
        let mut all = self.paths(src, dst);
        all.shuffle(rng);
        if n <= all.len() {
            all.truncate(n);
            all
        } else {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                out.extend(all.iter().take(n - out.len()).cloned());
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(k: usize) -> (Simulator, FatTree) {
        let mut sim = Simulator::new(1);
        let ft = FatTree::build(
            &mut sim,
            k,
            LinkParams::new(100_000_000, SimDuration::from_micros(100)),
        );
        (sim, ft)
    }

    #[test]
    fn k4_counts() {
        let (sim, ft) = build(4);
        assert_eq!(ft.hosts(), 16);
        assert_eq!(ft.switches(), 20);
        // Links: 2*16 host + edge-agg 8*2*2 + agg-core 8*2*2 = 32+32+32 = 96.
        assert_eq!(sim.world().link_count(), 96);
    }

    #[test]
    fn k8_matches_paper_scale() {
        let (_, ft) = build(8);
        // The paper's FatTree: 128 hosts, 80 switches.
        assert_eq!(ft.hosts(), 128);
        assert_eq!(ft.switches(), 80);
    }

    #[test]
    fn same_edge_single_path() {
        let (_, ft) = build(4);
        // Hosts 0 and 1 share edge 0.
        let p = ft.paths(0, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].fwd.len(), 2);
    }

    #[test]
    fn same_pod_paths_use_each_agg() {
        let (_, ft) = build(4);
        // Hosts 0 and 2 are in pod 0, different edges.
        let p = ft.paths(0, 2);
        assert_eq!(p.len(), 2);
        for spec in &p {
            assert_eq!(spec.fwd.len(), 4);
            assert_eq!(spec.rev.len(), 4);
        }
    }

    #[test]
    fn inter_pod_paths_one_per_core() {
        let (_, ft) = build(4);
        let p = ft.paths(0, 15);
        assert_eq!(p.len(), 4); // (k/2)² = 4 cores
        for spec in &p {
            assert_eq!(spec.fwd.len(), 6);
        }
        // All paths distinct.
        for i in 0..p.len() {
            for j in i + 1..p.len() {
                assert_ne!(p[i].fwd, p[j].fwd);
            }
        }
    }

    #[test]
    fn paths_share_host_links_but_diverge_in_core() {
        let (_, ft) = build(4);
        let p = ft.paths(0, 15);
        for spec in &p {
            assert_eq!(spec.fwd[0], p[0].fwd[0], "same host uplink");
            assert_eq!(*spec.fwd.last().unwrap(), *p[0].fwd.last().unwrap());
        }
    }

    #[test]
    fn sampling_with_replacement_when_oversubscribed() {
        let (_, ft) = build(4);
        let mut rng = SmallRng::seed_from_u64(5);
        let p = ft.sample_paths(0, 1, 3, &mut rng); // only 1 distinct path
        assert_eq!(p.len(), 3);
        let p8 = ft.sample_paths(0, 15, 8, &mut rng);
        assert_eq!(p8.len(), 8);
    }

    #[test]
    #[should_panic]
    fn self_paths_panic() {
        let (_, ft) = build(4);
        let _ = ft.paths(3, 3);
    }
}
