//! # topology — network topology builders
//!
//! Every network scenario the paper evaluates, as source-routed link graphs
//! plus path enumerations over the [`netsim`] simulator:
//!
//! * [`twopath::TwoPath`] — dual-NIC testbed machines (Figs. 1, 3, 4), the
//!   Fig. 5(b) traffic-shifting scenario (Figs. 7–9), and the heterogeneous
//!   WiFi + 4G wireless scenario (Fig. 17);
//! * [`shared::SharedBottleneck`] — the Fig. 5(a) scenario where N MPTCP
//!   users compete with 2N TCP users (Fig. 6);
//! * [`fattree::FatTree`] — k-ary FatTree (Fig. 13, 15, 16);
//! * [`vl2::Vl2`] — VL2 Clos with fast switch links (Fig. 14, 15, 16);
//! * [`bcube::BCube`] — server-centric BCube with host relaying (Fig. 12);
//! * [`ec2::Ec2Vpc`] — four-ENI multihomed cloud instances (Fig. 10);
//! * [`hierarchy::Hierarchy`] — the §V-C aggregation/backbone Internet
//!   hierarchy that motivates the compensative parameter φ.
//!
//! All builders return plain data (link ids + path enumerations); attach
//! flows with [`transport::attach_flow`].
//!
//! # Examples
//!
//! ```
//! use netsim::{SimDuration, Simulator};
//! use topology::{FatTree, LinkParams};
//!
//! let mut sim = Simulator::new(1);
//! let ft = FatTree::build(&mut sim, 4,
//!     LinkParams::new(100_000_000, SimDuration::from_micros(100)));
//! assert_eq!(ft.hosts(), 16);
//! let paths = ft.paths(0, 15);
//! assert_eq!(paths.len(), 4); // one per core switch
//! ```

pub mod bcube;
pub mod duplex;
pub mod ec2;
pub mod fattree;
pub mod hierarchy;
pub mod shared;
pub mod twopath;
pub mod vl2;

pub use bcube::BCube;
pub use duplex::{duplex, Duplex, LinkParams};
pub use ec2::{Ec2Vpc, ENIS_PER_HOST};
pub use fattree::FatTree;
pub use hierarchy::Hierarchy;
pub use shared::SharedBottleneck;
pub use twopath::TwoPath;
pub use vl2::{Vl2, Vl2Config};
