//! VL2 topology (Greenberg et al., SIGCOMM 2009), as used by the paper's
//! htsim experiments (Figs. 14, 15, 16).
//!
//! VL2 is a Clos: hosts hang off ToR switches; each ToR connects to two
//! aggregation switches; aggregation and intermediate switches form a
//! complete bipartite graph. Switch-to-switch links are faster than host
//! links (the paper uses 1 Gb/s switch links over 100 Mb/s host links).
//! Valiant load balancing gives each inter-ToR host pair
//! `2 × n_int × 2` equal-cost paths.

use crate::duplex::LinkParams;
use netsim::{LinkId, Simulator};
use rand::seq::SliceRandom;
use rand::Rng;
use transport::PathSpec;

/// VL2 dimensioning and link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vl2Config {
    /// Number of ToR switches.
    pub n_tor: usize,
    /// Number of aggregation switches.
    pub n_agg: usize,
    /// Number of intermediate switches.
    pub n_int: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Host ↔ ToR link parameters.
    pub host_link: LinkParams,
    /// Switch ↔ switch link parameters (faster, per the paper).
    pub switch_link: LinkParams,
}

/// A VL2 network's links and path enumeration.
#[derive(Clone, Debug)]
pub struct Vl2 {
    cfg: Vl2Config,
    host_up: Vec<LinkId>,
    host_down: Vec<LinkId>,
    /// `t2a[tor][sel]`: ToR → its `sel`-th aggregation switch.
    t2a: Vec<[LinkId; 2]>,
    /// `a2t[tor][sel]`: that aggregation switch → ToR.
    a2t: Vec<[LinkId; 2]>,
    /// `a2i[agg][int]`, `i2a[agg][int]`.
    a2i: Vec<Vec<LinkId>>,
    i2a: Vec<Vec<LinkId>>,
}

impl Vl2 {
    /// Builds a VL2 network.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `n_agg < 2`.
    pub fn build(sim: &mut Simulator, cfg: Vl2Config) -> Self {
        assert!(cfg.n_tor > 0 && cfg.n_agg >= 2 && cfg.n_int > 0 && cfg.hosts_per_tor > 0);
        let hosts = cfg.n_tor * cfg.hosts_per_tor;
        let host_up = (0..hosts).map(|_| sim.add_link(cfg.host_link.to_config())).collect();
        let host_down = (0..hosts).map(|_| sim.add_link(cfg.host_link.to_config())).collect();
        let sw = |sim: &mut Simulator| sim.add_link(cfg.switch_link.to_config());
        let t2a = (0..cfg.n_tor).map(|_| [sw(sim), sw(sim)]).collect();
        let a2t = (0..cfg.n_tor).map(|_| [sw(sim), sw(sim)]).collect();
        let a2i = (0..cfg.n_agg).map(|_| (0..cfg.n_int).map(|_| sw(sim)).collect()).collect();
        let i2a = (0..cfg.n_agg).map(|_| (0..cfg.n_int).map(|_| sw(sim)).collect()).collect();
        Vl2 { cfg, host_up, host_down, t2a, a2t, a2i, i2a }
    }

    /// The paper-scale instance: 128 hosts (16 ToRs × 8), 8 aggregation and
    /// 4 intermediate switches, 100 Mb/s host links, 1 Gb/s switch links.
    pub fn paper_scale(
        sim: &mut Simulator,
        host_link: LinkParams,
        switch_link: LinkParams,
    ) -> Self {
        Vl2::build(
            sim,
            Vl2Config { n_tor: 16, n_agg: 8, n_int: 4, hosts_per_tor: 8, host_link, switch_link },
        )
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.cfg.n_tor * self.cfg.hosts_per_tor
    }

    fn tor_of(&self, host: usize) -> usize {
        host / self.cfg.hosts_per_tor
    }

    /// The aggregation switch index for `(tor, sel)`.
    fn agg_of(&self, tor: usize, sel: usize) -> usize {
        (2 * tor + sel) % self.cfg.n_agg
    }

    fn forward_paths(&self, src: usize, dst: usize) -> Vec<Vec<LinkId>> {
        assert_ne!(src, dst, "src and dst must differ");
        let (ts, td) = (self.tor_of(src), self.tor_of(dst));
        let mut out = Vec::new();
        if ts == td {
            out.push(vec![self.host_up[src], self.host_down[dst]]);
            return out;
        }
        for a_sel in 0..2 {
            for i in 0..self.cfg.n_int {
                for b_sel in 0..2 {
                    let agg_a = self.agg_of(ts, a_sel);
                    let agg_b = self.agg_of(td, b_sel);
                    out.push(vec![
                        self.host_up[src],
                        self.t2a[ts][a_sel],
                        self.a2i[agg_a][i],
                        self.i2a[agg_b][i],
                        self.a2t[td][b_sel],
                        self.host_down[dst],
                    ]);
                }
            }
        }
        out
    }

    /// All equal-cost bidirectional paths between two hosts.
    pub fn paths(&self, src: usize, dst: usize) -> Vec<PathSpec> {
        let fwd = self.forward_paths(src, dst);
        let rev = self.forward_paths(dst, src);
        fwd.into_iter().zip(rev).map(|(f, r)| PathSpec::new(f, r)).collect()
    }

    /// Samples `n` paths for a connection's subflows.
    pub fn sample_paths<R: Rng>(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<PathSpec> {
        let mut all = self.paths(src, dst);
        all.shuffle(rng);
        if n <= all.len() {
            all.truncate(n);
            all
        } else {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                out.extend(all.iter().take(n - out.len()).cloned());
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn build() -> (Simulator, Vl2) {
        let mut sim = Simulator::new(1);
        let host = LinkParams::new(100_000_000, SimDuration::from_micros(100));
        let sw = LinkParams::new(1_000_000_000, SimDuration::from_micros(100));
        let v = Vl2::paper_scale(&mut sim, host, sw);
        (sim, v)
    }

    #[test]
    fn paper_scale_dimensions() {
        let (_, v) = build();
        assert_eq!(v.hosts(), 128);
    }

    #[test]
    fn same_tor_single_path() {
        let (_, v) = build();
        let p = v.paths(0, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].fwd.len(), 2);
    }

    #[test]
    fn inter_tor_valiant_path_count() {
        let (_, v) = build();
        // 2 src-agg × 4 intermediates × 2 dst-agg = 16.
        let p = v.paths(0, 127);
        assert_eq!(p.len(), 16);
        for spec in &p {
            assert_eq!(spec.fwd.len(), 6);
        }
    }

    #[test]
    fn switch_links_are_faster() {
        let (sim, v) = build();
        let p = v.paths(0, 127);
        let host_link = sim.world().link(p[0].fwd[0]).config().bandwidth_bps;
        let sw_link = sim.world().link(p[0].fwd[2]).config().bandwidth_bps;
        assert_eq!(host_link, 100_000_000);
        assert_eq!(sw_link, 1_000_000_000);
    }
}
