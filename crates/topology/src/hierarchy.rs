//! The general hierarchical Internet topology of the paper's §V-C: many end
//! devices behind local aggregation nodes, aggregation nodes behind a
//! backbone — the setting where MPTCP "may aggravate the traffic
//! concentration on both aggregated and core nodes" and where the
//! compensative parameter φ is designed to help.
//!
//! Structure: `n_users` dual-homed end hosts; host `i` connects to
//! aggregation nodes `i % n_agg` and `(i+1) % n_agg`; every aggregation node
//! connects to the single backbone node, behind which the servers sit. Each
//! user therefore has two partially-overlapping paths that share the
//! backbone — multipath pressure concentrates exactly where the paper says
//! it does.

use crate::duplex::LinkParams;
use netsim::{LinkId, Simulator};
use transport::PathSpec;

/// A two-tier aggregation/backbone hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    n_users: usize,
    n_agg: usize,
    /// `access_up[user][homing]`: host → its aggregation node.
    access_up: Vec<[LinkId; 2]>,
    access_down: Vec<[LinkId; 2]>,
    /// `agg_up[agg]`: aggregation node → backbone.
    agg_up: Vec<LinkId>,
    agg_down: Vec<LinkId>,
    /// Backbone → server-side egress (shared by everyone).
    core_up: LinkId,
    core_down: LinkId,
}

impl Hierarchy {
    /// Builds the hierarchy. Access links use `access`, aggregation uplinks
    /// `agg`, and the shared backbone egress `core`.
    ///
    /// # Panics
    ///
    /// Panics if `n_users == 0` or `n_agg < 2`.
    pub fn build(
        sim: &mut Simulator,
        n_users: usize,
        n_agg: usize,
        access: LinkParams,
        agg: LinkParams,
        core: LinkParams,
    ) -> Self {
        assert!(n_users > 0 && n_agg >= 2);
        let access_up = (0..n_users)
            .map(|_| [sim.add_link(access.to_config()), sim.add_link(access.to_config())])
            .collect();
        let access_down = (0..n_users)
            .map(|_| [sim.add_link(access.to_config()), sim.add_link(access.to_config())])
            .collect();
        let agg_up = (0..n_agg).map(|_| sim.add_link(agg.to_config())).collect();
        let agg_down = (0..n_agg).map(|_| sim.add_link(agg.to_config())).collect();
        let core_up = sim.add_link(core.to_config());
        let core_down = sim.add_link(core.to_config());
        Hierarchy { n_users, n_agg, access_up, access_down, agg_up, agg_down, core_up, core_down }
    }

    /// Number of end hosts.
    pub fn users(&self) -> usize {
        self.n_users
    }

    /// The aggregation node for `(user, homing)`.
    fn agg_of(&self, user: usize, homing: usize) -> usize {
        (user + homing) % self.n_agg
    }

    /// User `u`'s two paths to the server side. Both traverse the shared
    /// backbone; they differ in access and aggregation links.
    pub fn user_paths(&self, u: usize) -> Vec<PathSpec> {
        assert!(u < self.n_users, "user index out of range");
        (0..2)
            .map(|h| {
                let a = self.agg_of(u, h);
                PathSpec::new(
                    vec![self.access_up[u][h], self.agg_up[a], self.core_up],
                    vec![self.core_down, self.agg_down[a], self.access_down[u][h]],
                )
            })
            .collect()
    }

    /// The shared backbone uplink (the concentration point for telemetry).
    pub fn backbone(&self) -> LinkId {
        self.core_up
    }

    /// The aggregation uplinks.
    pub fn agg_links(&self) -> &[LinkId] {
        &self.agg_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn build(n_users: usize, n_agg: usize) -> (Simulator, Hierarchy) {
        let mut sim = Simulator::new(1);
        let access = LinkParams::new(20_000_000, SimDuration::from_millis(5));
        let agg = LinkParams::new(100_000_000, SimDuration::from_millis(5));
        let core = LinkParams::new(200_000_000, SimDuration::from_millis(10));
        let h = Hierarchy::build(&mut sim, n_users, n_agg, access, agg, core);
        (sim, h)
    }

    #[test]
    fn every_user_has_two_distinct_paths_sharing_the_backbone() {
        let (_, h) = build(8, 3);
        for u in 0..h.users() {
            let p = h.user_paths(u);
            assert_eq!(p.len(), 2);
            assert_ne!(p[0].fwd[0], p[1].fwd[0], "distinct access links");
            assert_ne!(p[0].fwd[1], p[1].fwd[1], "distinct aggregation links");
            assert_eq!(p[0].fwd[2], p[1].fwd[2], "shared backbone");
            assert_eq!(p[0].fwd[2], h.backbone());
        }
    }

    #[test]
    fn aggregation_fanout_wraps() {
        let (_, h) = build(5, 2);
        let p0 = h.user_paths(0);
        let p1 = h.user_paths(1);
        // User 0 homes to aggs {0,1}; user 1 to {1,0}: same agg links appear.
        assert_eq!(p0[0].fwd[1], p1[1].fwd[1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_user_panics() {
        let (_, h) = build(2, 2);
        let _ = h.user_paths(5);
    }
}
