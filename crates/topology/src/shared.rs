//! The shared-bottleneck scenario of the paper's Fig. 5(a): N MPTCP users
//! spanning two bottlenecks that they share with 2N single-path TCP users
//! (N on each bottleneck).

use crate::duplex::{duplex, Duplex, LinkParams};
use netsim::Simulator;
use transport::PathSpec;

/// Two shared bottleneck links; MPTCP users stripe across both, TCP users
/// alternate between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedBottleneck {
    /// First bottleneck.
    pub b1: Duplex,
    /// Second bottleneck.
    pub b2: Duplex,
}

impl SharedBottleneck {
    /// Builds the two bottlenecks with identical parameters.
    pub fn new(sim: &mut Simulator, params: LinkParams) -> Self {
        SharedBottleneck { b1: duplex(sim, params), b2: duplex(sim, params) }
    }

    /// An MPTCP user's two subflow paths (one across each bottleneck).
    pub fn mptcp_paths(&self) -> Vec<PathSpec> {
        vec![
            PathSpec::new(vec![self.b1.fwd], vec![self.b1.rev]),
            PathSpec::new(vec![self.b2.fwd], vec![self.b2.rev]),
        ]
    }

    /// The `i`-th TCP user's single path, alternating between bottlenecks so
    /// 2N TCP users place N on each.
    pub fn tcp_path(&self, i: usize) -> Vec<PathSpec> {
        let b = if i.is_multiple_of(2) { self.b1 } else { self.b2 };
        vec![PathSpec::new(vec![b.fwd], vec![b.rev])]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    #[test]
    fn paths_cover_both_bottlenecks() {
        let mut sim = Simulator::new(1);
        let sb = SharedBottleneck::new(
            &mut sim,
            LinkParams::new(100_000_000, SimDuration::from_millis(5)),
        );
        let mp = sb.mptcp_paths();
        assert_eq!(mp.len(), 2);
        assert_ne!(mp[0].fwd, mp[1].fwd);
        assert_eq!(sb.tcp_path(0)[0].fwd, vec![sb.b1.fwd]);
        assert_eq!(sb.tcp_path(1)[0].fwd, vec![sb.b2.fwd]);
        assert_eq!(sb.tcp_path(2)[0].fwd, vec![sb.b1.fwd]);
    }
}
