//! Bidirectional link helper and shared link parameterization.

use netsim::{LinkConfig, LinkId, SimDuration, Simulator};

/// Parameters for one class of links in a topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Rate in bits/second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// DropTail bound in packets.
    pub queue_pkts: usize,
    /// ECN marking threshold, if any.
    pub ecn_threshold: Option<usize>,
}

impl LinkParams {
    /// Creates link parameters with a 100-packet queue and no ECN.
    pub fn new(bandwidth_bps: u64, delay: SimDuration) -> Self {
        LinkParams { bandwidth_bps, delay, queue_pkts: 100, ecn_threshold: None }
    }

    /// Sets the queue bound.
    pub fn queue(mut self, pkts: usize) -> Self {
        self.queue_pkts = pkts;
        self
    }

    /// Enables ECN marking at `k` packets.
    pub fn ecn(mut self, k: usize) -> Self {
        self.ecn_threshold = Some(k);
        self
    }

    /// Converts to a simulator link configuration.
    pub fn to_config(self) -> LinkConfig {
        let mut cfg = LinkConfig::new(self.bandwidth_bps, self.delay).queue_limit(self.queue_pkts);
        if let Some(k) = self.ecn_threshold {
            cfg = cfg.ecn_threshold(k);
        }
        cfg
    }
}

/// A pair of opposite-direction links between two points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Duplex {
    /// The A→B link.
    pub fwd: LinkId,
    /// The B→A link.
    pub rev: LinkId,
}

/// Registers a bidirectional link with identical parameters each way.
pub fn duplex(sim: &mut Simulator, params: LinkParams) -> Duplex {
    let fwd = sim.add_link(params.to_config());
    let rev = sim.add_link(params.to_config());
    Duplex { fwd, rev }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_convert_to_config() {
        let p = LinkParams::new(1_000_000, SimDuration::from_millis(5)).queue(50).ecn(20);
        let cfg = p.to_config();
        assert_eq!(cfg.bandwidth_bps, 1_000_000);
        assert_eq!(cfg.queue_limit_pkts, 50);
        assert_eq!(cfg.ecn_threshold_pkts, Some(20));
    }

    #[test]
    fn duplex_registers_two_links() {
        let mut sim = Simulator::new(1);
        let d = duplex(&mut sim, LinkParams::new(1_000_000, SimDuration::ZERO));
        assert_ne!(d.fwd, d.rev);
        assert_eq!(sim.world().link_count(), 2);
    }
}
