//! Two-path topologies: the paper's Fig. 5(b) traffic-shifting scenario, the
//! dual-NIC testbed machines (Figs. 1, 3, 4), and the heterogeneous wireless
//! scenario (Fig. 17).

use crate::duplex::{duplex, Duplex, LinkParams};
use netsim::{LinkId, SimDuration, Simulator};
use transport::PathSpec;

/// Two independent bidirectional paths between one sender and one receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoPath {
    /// First path.
    pub p1: Duplex,
    /// Second path.
    pub p2: Duplex,
}

impl TwoPath {
    /// Builds two paths with identical parameters (the dual-NIC testbed of
    /// the paper's §III: two equal NICs per machine).
    pub fn symmetric(sim: &mut Simulator, params: LinkParams) -> Self {
        TwoPath { p1: duplex(sim, params), p2: duplex(sim, params) }
    }

    /// Builds two paths with different parameters.
    pub fn asymmetric(sim: &mut Simulator, a: LinkParams, b: LinkParams) -> Self {
        TwoPath { p1: duplex(sim, a), p2: duplex(sim, b) }
    }

    /// The paper's heterogeneous wireless scenario (§VI-C2, Fig. 17):
    /// WiFi 10 Mb/s with 40 ms one-way delay, 4G 20 Mb/s with 100 ms, both
    /// with DropTail queues of 50 packets (the ns-2 configuration).
    pub fn wireless(sim: &mut Simulator) -> Self {
        let wifi = LinkParams::new(10_000_000, SimDuration::from_millis(40)).queue(50);
        let lte = LinkParams::new(20_000_000, SimDuration::from_millis(100)).queue(50);
        TwoPath::asymmetric(sim, wifi, lte)
    }

    /// The dual-NIC wired testbed: two `bps` NICs, `delay` one-way.
    pub fn dual_nic(sim: &mut Simulator, bps: u64, delay: SimDuration) -> Self {
        TwoPath::symmetric(sim, LinkParams::new(bps, delay))
    }

    /// Both paths as MPTCP subflow specs.
    pub fn both(&self) -> Vec<PathSpec> {
        vec![
            PathSpec::new(vec![self.p1.fwd], vec![self.p1.rev]),
            PathSpec::new(vec![self.p2.fwd], vec![self.p2.rev]),
        ]
    }

    /// Only the first path (single-path TCP baseline).
    pub fn first_only(&self) -> Vec<PathSpec> {
        vec![PathSpec::new(vec![self.p1.fwd], vec![self.p1.rev])]
    }

    /// Only the second path.
    pub fn second_only(&self) -> Vec<PathSpec> {
        vec![PathSpec::new(vec![self.p2.fwd], vec![self.p2.rev])]
    }

    /// The forward links, for injecting cross traffic (the Pareto bursts of
    /// Fig. 5(b) ride the same queues as the flow under test).
    pub fn forward_links(&self) -> [LinkId; 2] {
        [self.p1.fwd, self.p2.fwd]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_builds_four_links() {
        let mut sim = Simulator::new(1);
        let tp = TwoPath::dual_nic(&mut sim, 100_000_000, SimDuration::from_millis(1));
        assert_eq!(sim.world().link_count(), 4);
        assert_eq!(tp.both().len(), 2);
        assert_eq!(tp.first_only().len(), 1);
    }

    #[test]
    fn wireless_matches_ns2_parameters() {
        let mut sim = Simulator::new(1);
        let tp = TwoPath::wireless(&mut sim);
        let wifi = sim.world().link(tp.p1.fwd).config().clone();
        let lte = sim.world().link(tp.p2.fwd).config().clone();
        assert_eq!(wifi.bandwidth_bps, 10_000_000);
        assert_eq!(lte.bandwidth_bps, 20_000_000);
        assert_eq!(wifi.queue_limit_pkts, 50);
        assert_eq!(lte.queue_limit_pkts, 50);
        assert_eq!(wifi.propagation, SimDuration::from_millis(40));
        assert_eq!(lte.propagation, SimDuration::from_millis(100));
    }
}
