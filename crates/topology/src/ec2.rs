//! The EC2 VPC scenario of the paper's §VI-C1 (Fig. 10): multihomed cloud
//! instances with four Elastic Network Interfaces, each on its own subnet,
//! giving four disjoint routes between every pair of hosts.

use crate::duplex::LinkParams;
use netsim::{LinkId, SimDuration, Simulator};
use transport::PathSpec;

/// Number of ENIs (and subnets) per host, per the paper.
pub const ENIS_PER_HOST: usize = 4;

/// An EC2-style VPC: `hosts × 4` ENI links into four subnets.
#[derive(Clone, Debug)]
pub struct Ec2Vpc {
    n_hosts: usize,
    /// `eni_up[host][subnet]`: host ENI → subnet fabric.
    eni_up: Vec<Vec<LinkId>>,
    /// `eni_down[host][subnet]`: subnet fabric → host ENI.
    eni_down: Vec<Vec<LinkId>>,
}

impl Ec2Vpc {
    /// Builds a VPC with `n_hosts` instances whose ENIs use `params`
    /// (the paper caps each ENI at 256 Mb/s).
    pub fn build(sim: &mut Simulator, n_hosts: usize, params: LinkParams) -> Self {
        assert!(n_hosts >= 2, "need at least two hosts");
        let eni_up = (0..n_hosts)
            .map(|_| (0..ENIS_PER_HOST).map(|_| sim.add_link(params.to_config())).collect())
            .collect();
        let eni_down = (0..n_hosts)
            .map(|_| (0..ENIS_PER_HOST).map(|_| sim.add_link(params.to_config())).collect())
            .collect();
        Ec2Vpc { n_hosts, eni_up, eni_down }
    }

    /// The paper's configuration: 256 Mb/s ENIs, ≈ 0.4 ms one-way
    /// intra-VPC latency.
    pub fn paper_scale(sim: &mut Simulator, n_hosts: usize) -> Self {
        let params = LinkParams::new(256_000_000, SimDuration::from_micros(400)).queue(100);
        Ec2Vpc::build(sim, n_hosts, params)
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.n_hosts
    }

    /// The four subnet-disjoint bidirectional routes between two hosts.
    /// Path `i` uses ENI `i` at both ends (both are on subnet `i`).
    pub fn paths(&self, src: usize, dst: usize) -> Vec<PathSpec> {
        assert_ne!(src, dst, "src and dst must differ");
        (0..ENIS_PER_HOST)
            .map(|s| {
                PathSpec::new(
                    vec![self.eni_up[src][s], self.eni_down[dst][s]],
                    vec![self.eni_up[dst][s], self.eni_down[src][s]],
                )
            })
            .collect()
    }

    /// A single-subnet path (the TCP / DCTCP baseline uses one ENI).
    pub fn single_path(&self, src: usize, dst: usize, subnet: usize) -> Vec<PathSpec> {
        vec![self.paths(src, dst).swap_remove(subnet)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_disjoint_routes() {
        let mut sim = Simulator::new(1);
        let vpc = Ec2Vpc::paper_scale(&mut sim, 4);
        assert_eq!(vpc.hosts(), 4);
        let p = vpc.paths(0, 3);
        assert_eq!(p.len(), 4);
        // Pairwise link-disjoint.
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(p[i].fwd.iter().all(|l| !p[j].fwd.contains(l)));
            }
        }
    }

    #[test]
    fn single_path_selects_subnet() {
        let mut sim = Simulator::new(1);
        let vpc = Ec2Vpc::paper_scale(&mut sim, 2);
        let all = vpc.paths(0, 1);
        let one = vpc.single_path(0, 1, 2);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], all[2]);
    }

    #[test]
    fn eni_rate_matches_paper() {
        let mut sim = Simulator::new(1);
        let vpc = Ec2Vpc::paper_scale(&mut sim, 2);
        let p = vpc.paths(0, 1);
        assert_eq!(sim.world().link(p[0].fwd[0]).config().bandwidth_bps, 256_000_000);
    }
}
