//! BCube topology (Guo et al., SIGCOMM 2009), as used by the paper's htsim
//! experiments (Fig. 12).
//!
//! `BCube(n, k)` is server-centric: `n^(k+1)` hosts, each with `k+1` NICs,
//! and `(k+1)·n^k` switches arranged in `k+1` levels. A host's address is its
//! base-`n` digit string `(d_k … d_0)`; the level-`l` switch it attaches to
//! connects all hosts that differ only in digit `l`. Routing corrects one
//! digit per hop, relaying through intermediate *hosts* — BCube's signature —
//! and the `k+1` digit-rotation orders give `k+1` NIC-disjoint parallel
//! paths.
//!
//! Relay hosts appear in our source routes as consecutive down/up link pairs;
//! their forwarding energy is attributed to the network, not the flow
//! endpoints (see DESIGN.md).

use crate::duplex::LinkParams;
use netsim::{LinkId, Simulator};
use rand::seq::SliceRandom;
use rand::Rng;
use transport::PathSpec;

/// A `BCube(n, k)` network.
#[derive(Clone, Debug)]
pub struct BCube {
    /// Switch port count `n`.
    pub n: usize,
    /// Level count minus one (`k`); hosts have `k+1` NICs.
    pub k: usize,
    /// `nic_up[host][level]`: host NIC → its level-`level` switch.
    nic_up: Vec<Vec<LinkId>>,
    /// `nic_down[host][level]`: switch → host.
    nic_down: Vec<Vec<LinkId>>,
}

impl BCube {
    /// Builds a `BCube(n, k)` with all links using `params`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn build(sim: &mut Simulator, n: usize, k: usize, params: LinkParams) -> Self {
        assert!(n >= 2, "BCube needs n >= 2");
        let hosts = n.pow(k as u32 + 1);
        let nic_up = (0..hosts)
            .map(|_| (0..=k).map(|_| sim.add_link(params.to_config())).collect())
            .collect();
        let nic_down = (0..hosts)
            .map(|_| (0..=k).map(|_| sim.add_link(params.to_config())).collect())
            .collect();
        BCube { n, k, nic_up, nic_down }
    }

    /// The paper-scale instance `BCube(8, 1)`: 64 hosts with 2 NICs each and
    /// 16 switches (the closest BCube to the paper's "128 hosts, 64
    /// switches" that keeps the structure exact; see EXPERIMENTS.md).
    pub fn paper_scale(sim: &mut Simulator, params: LinkParams) -> Self {
        BCube::build(sim, 8, 1, params)
    }

    /// Number of hosts (`n^(k+1)`).
    pub fn hosts(&self) -> usize {
        self.n.pow(self.k as u32 + 1)
    }

    /// Number of switches (`(k+1)·n^k`).
    pub fn switches(&self) -> usize {
        (self.k + 1) * self.n.pow(self.k as u32)
    }

    /// NICs per host.
    pub fn nics(&self) -> usize {
        self.k + 1
    }

    fn digit(&self, host: usize, level: usize) -> usize {
        (host / self.n.pow(level as u32)) % self.n
    }

    fn with_digit(&self, host: usize, level: usize, d: usize) -> usize {
        let p = self.n.pow(level as u32) as i64;
        let old = self.digit(host, level) as i64;
        (host as i64 + (d as i64 - old) * p) as usize
    }

    /// The forward link path correcting digits in descending order starting
    /// at `start_level` (cyclically), one relay host per corrected digit.
    fn forward_path(&self, src: usize, dst: usize, start_level: usize) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut cur = src;
        for step in 0..=self.k {
            let level = (start_level + self.k + 1 - step) % (self.k + 1);
            let target = self.digit(dst, level);
            if self.digit(cur, level) == target {
                continue;
            }
            let next = self.with_digit(cur, level, target);
            links.push(self.nic_up[cur][level]);
            links.push(self.nic_down[next][level]);
            cur = next;
        }
        debug_assert_eq!(cur, dst);
        links
    }

    /// The `k+1` parallel (NIC-rotation) bidirectional paths between two
    /// hosts. Paths whose link sequences coincide (hosts differing in few
    /// digits) are deduplicated.
    pub fn paths(&self, src: usize, dst: usize) -> Vec<PathSpec> {
        assert_ne!(src, dst, "src and dst must differ");
        let mut out: Vec<PathSpec> = Vec::new();
        for start in 0..=self.k {
            let fwd = self.forward_path(src, dst, start);
            let rev = self.forward_path(dst, src, start);
            let spec = PathSpec::new(fwd, rev);
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
        out
    }

    /// Samples `n` paths for a connection's subflows.
    pub fn sample_paths<R: Rng>(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<PathSpec> {
        let mut all = self.paths(src, dst);
        all.shuffle(rng);
        if n <= all.len() {
            all.truncate(n);
            all
        } else {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                out.extend(all.iter().take(n - out.len()).cloned());
            }
            out
        }
    }

    /// Which host NIC (interface) each of `paths(src, dst)`'s entries leaves
    /// through — the energy model's subflow → interface mapping.
    pub fn first_nic_of_path(&self, src: usize, spec: &PathSpec) -> usize {
        // simlint: allow(P001, documented panic: passing a path that does not originate at src is a caller bug in experiment wiring, not a runtime condition)
        self.nic_up[src].iter().position(|&l| l == spec.fwd[0]).expect("path does not start at src")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn build(n: usize, k: usize) -> (Simulator, BCube) {
        let mut sim = Simulator::new(1);
        let b = BCube::build(
            &mut sim,
            n,
            k,
            LinkParams::new(100_000_000, SimDuration::from_micros(100)),
        );
        (sim, b)
    }

    #[test]
    fn paper_scale_dimensions() {
        let (_, b) = build(8, 1);
        assert_eq!(b.hosts(), 64);
        assert_eq!(b.switches(), 16);
        assert_eq!(b.nics(), 2);
    }

    #[test]
    fn digit_arithmetic() {
        let (_, b) = build(4, 2);
        // host 27 in base 4 = (1, 2, 3).
        assert_eq!(b.digit(27, 0), 3);
        assert_eq!(b.digit(27, 1), 2);
        assert_eq!(b.digit(27, 2), 1);
        assert_eq!(b.with_digit(27, 0, 0), 24);
        assert_eq!(b.with_digit(27, 2, 3), 59);
    }

    #[test]
    fn two_digit_difference_gives_two_disjoint_paths() {
        let (_, b) = build(4, 1);
        // hosts 0 = (0,0) and 5 = (1,1): differ in both digits.
        let p = b.paths(0, 5);
        assert_eq!(p.len(), 2);
        // Each path: 2 corrections × 2 links = 4 links, one relay host.
        for spec in &p {
            assert_eq!(spec.fwd.len(), 4);
        }
        // NIC-disjoint first hops.
        assert_ne!(p[0].fwd[0], p[1].fwd[0]);
        assert_eq!(b.first_nic_of_path(0, &p[0]) + b.first_nic_of_path(0, &p[1]), 1);
    }

    #[test]
    fn one_digit_difference_dedups_to_single_path() {
        let (_, b) = build(4, 1);
        // hosts 0 = (0,0) and 1 = (0,1): differ only in digit 0.
        let p = b.paths(0, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].fwd.len(), 2); // one switch hop, no relay
    }

    #[test]
    fn bcube2_gives_three_paths() {
        let (_, b) = build(3, 2);
        // hosts 0=(0,0,0) and 26=(2,2,2) differ in all three digits.
        let p = b.paths(0, 26);
        assert_eq!(p.len(), 3);
        for spec in &p {
            assert_eq!(spec.fwd.len(), 6); // three corrections, two relays
        }
    }
}
