//! Cross-validation: the per-ACK window increases of the native algorithm
//! implementations must equal the paper's §IV decomposition
//! `Δw_r = ψ_r · (w_r/RTT_r²) / (Σ_k w_k/RTT_k)²` with the published ψ_r.
//!
//! This pins both sides: a bug in an algorithm implementation *or* in the ψ
//! table breaks the equality.

use congestion::{
    common, AlgorithmKind, Balia, CoupledKv, EcMtcp, Ewtcp, Lia, MultipathCongestionControl,
    SubflowCc,
};

fn flows(ws: &[f64], rtts: &[f64]) -> Vec<SubflowCc> {
    ws.iter()
        .zip(rtts)
        .map(|(&w, &rtt)| {
            let mut f = SubflowCc::new();
            f.cwnd = w;
            f.ssthresh = 1.0; // force congestion avoidance
            f.observe_rtt(rtt);
            f
        })
        .collect()
}

/// Measures the per-ACK increase the native implementation applies to
/// subflow `r`.
fn native_delta(cc: &mut dyn MultipathCongestionControl, r: usize, fs: &[SubflowCc]) -> f64 {
    let mut copy = fs.to_vec();
    let before = copy[r].cwnd;
    cc.on_ack(r, &mut copy, 1, false);
    copy[r].cwnd - before
}

/// The model form with a caller-supplied ψ.
fn model_delta(psi: f64, r: usize, fs: &[SubflowCc]) -> f64 {
    common::model_increase(psi, r, fs)
}

const STATES: &[(&[f64], &[f64])] = &[
    (&[10.0, 10.0], &[0.1, 0.1]),
    (&[30.0, 10.0], &[0.05, 0.2]),
    (&[5.0, 25.0, 40.0], &[0.02, 0.08, 0.3]),
    (&[100.0, 2.0], &[0.5, 0.01]),
];

fn sum_x(fs: &[SubflowCc]) -> f64 {
    fs.iter().map(SubflowCc::rate).sum()
}

fn sum_w(fs: &[SubflowCc]) -> f64 {
    fs.iter().map(|f| f.cwnd).sum()
}

#[test]
fn ewtcp_matches_its_psi() {
    // ψ_ewtcp = (Σx)²/(x_r²·√n).
    for (ws, rtts) in STATES {
        let fs = flows(ws, rtts);
        let n = fs.len() as f64;
        let mut cc = Ewtcp::new();
        for r in 0..fs.len() {
            let xr = fs[r].rate();
            let psi = sum_x(&fs).powi(2) / (xr * xr * n.sqrt());
            let native = native_delta(&mut cc, r, &fs);
            let model = model_delta(psi, r, &fs);
            assert!(
                (native - model).abs() < 1e-12 * model.max(1.0),
                "ewtcp r={r}: native {native} model {model}"
            );
        }
    }
}

#[test]
fn coupled_matches_its_psi() {
    // ψ_coupled = RTT_r²(Σx)²/(Σw)².
    for (ws, rtts) in STATES {
        let fs = flows(ws, rtts);
        let mut cc = CoupledKv::new();
        for r in 0..fs.len() {
            let psi = fs[r].srtt * fs[r].srtt * sum_x(&fs).powi(2) / sum_w(&fs).powi(2);
            let native = native_delta(&mut cc, r, &fs);
            let model = model_delta(psi, r, &fs);
            assert!(
                (native - model).abs() < 1e-12 * model.max(1.0),
                "coupled r={r}: native {native} model {model}"
            );
        }
    }
}

#[test]
fn lia_matches_its_psi_when_uncapped() {
    // ψ_lia = max_k(w_k/RTT_k²)·RTT_r²/w_r — equals the native increase
    // whenever LIA's min() picks the coupled branch.
    for (ws, rtts) in STATES {
        let fs = flows(ws, rtts);
        let mut cc = Lia::new();
        for r in 0..fs.len() {
            let best = fs.iter().map(|f| f.cwnd / (f.srtt * f.srtt)).fold(0.0f64, f64::max);
            let psi = best * fs[r].srtt * fs[r].srtt / fs[r].cwnd;
            let coupled = model_delta(psi, r, &fs);
            let uncoupled = 1.0 / fs[r].cwnd;
            let expected = coupled.min(uncoupled);
            let native = native_delta(&mut cc, r, &fs);
            assert!(
                (native - expected).abs() < 1e-12 * expected.max(1.0),
                "lia r={r}: native {native} expected {expected}"
            );
        }
    }
}

#[test]
fn balia_matches_its_psi() {
    // ψ_balia = 2/5 + α/2 + α²/10 with α = max_k x_k / x_r.
    for (ws, rtts) in STATES {
        let fs = flows(ws, rtts);
        let mut cc = Balia::new();
        let xmax = fs.iter().map(SubflowCc::rate).fold(0.0f64, f64::max);
        for r in 0..fs.len() {
            let alpha = (xmax / fs[r].rate()).max(1.0);
            let psi = 0.4 + alpha / 2.0 + alpha * alpha / 10.0;
            let native = native_delta(&mut cc, r, &fs);
            let model = model_delta(psi, r, &fs);
            assert!(
                (native - model).abs() < 1e-12 * model.max(1.0),
                "balia r={r}: native {native} model {model}"
            );
        }
    }
}

#[test]
fn ecmtcp_matches_its_psi() {
    // ψ_ecmtcp = RTT_r³(Σx)²/(n·min RTT·w_r·Σw).
    for (ws, rtts) in STATES {
        let fs = flows(ws, rtts);
        let n = fs.len() as f64;
        let min_rtt = fs.iter().map(|f| f.srtt).fold(f64::INFINITY, f64::min);
        let mut cc = EcMtcp::new();
        for r in 0..fs.len() {
            let psi =
                fs[r].srtt.powi(3) * sum_x(&fs).powi(2) / (n * min_rtt * fs[r].cwnd * sum_w(&fs));
            let native = native_delta(&mut cc, r, &fs);
            let model = model_delta(psi, r, &fs);
            assert!(
                (native - model).abs() < 1e-9 * model.max(1.0),
                "ecmtcp r={r}: native {native} model {model}"
            );
        }
    }
}

#[test]
fn olia_base_term_is_psi_one() {
    // OLIA = ψ=1 base + α_r/w_r; with symmetric fresh histories α_r = 0.
    let fs = flows(&[10.0, 10.0], &[0.1, 0.1]);
    let mut cc = AlgorithmKind::Olia.build(2);
    for r in 0..2 {
        let native = native_delta(cc.as_mut(), r, &fs);
        let model = model_delta(1.0, r, &fs);
        assert!((native - model).abs() < 1e-12, "olia r={r}: native {native} model {model}");
    }
}

#[test]
fn all_friendly_algorithms_reduce_to_reno_alone() {
    // ψ = 1 on a single path at any state: Δw = 1/w.
    for kind in [
        AlgorithmKind::Ewtcp,
        AlgorithmKind::Coupled,
        AlgorithmKind::Lia,
        AlgorithmKind::Olia,
        AlgorithmKind::Balia,
        AlgorithmKind::EcMtcp,
    ] {
        for (w, rtt) in [(7.0, 0.03), (40.0, 0.2), (333.0, 0.9)] {
            let fs = flows(&[w], &[rtt]);
            let mut cc = kind.build(1);
            let native = native_delta(cc.as_mut(), 0, &fs);
            assert!((native - 1.0 / w).abs() < 1e-12, "{kind} at w={w}: {native} vs {}", 1.0 / w);
        }
    }
}
