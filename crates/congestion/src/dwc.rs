//! DWC — Dynamic Window Coupling (Hassayoun, Iyengar & Ros, ICNP 2011).
//!
//! In the paper's §IV taxonomy DWC is the algorithm whose decrease signal
//! `λ_r` is a *delay condition* rather than a loss: subflows sharing a
//! bottleneck are detected through correlated delay growth and their
//! windows are coupled as a group; a subflow whose delay crosses the
//! congestion threshold backs off without waiting for loss.
//!
//! This implementation keeps DWC's observable behaviour at the granularity
//! the paper's model uses:
//!
//! * group-coupled LIA-style increase across the subflows currently flagged
//!   as sharing a bottleneck (delay-correlated), independent Reno increase
//!   for the rest;
//! * multiplicative decrease triggered by the delay condition
//!   `RTT_r > baseRTT_r + θ·(maxRTT_r − baseRTT_r)` (once per RTT round),
//!   as well as by loss.

use crate::common;
use crate::state::{total_cwnd, total_rate, SubflowCc};
use crate::MultipathCongestionControl;

/// Fraction of the observed delay range treated as the congestion threshold
/// (the ICNP paper's τ).
pub const DELAY_THRESHOLD: f64 = 0.6;

#[derive(Clone, Copy, Debug, Default)]
struct PathState {
    /// Largest RTT ever observed, seconds.
    max_rtt: f64,
    /// Packets acked in the current round.
    acked: f64,
    /// Round length (cwnd at round start).
    round_len: f64,
    /// Whether the delay condition currently flags this path.
    congested: bool,
}

/// DWC: delay-signalled, group-coupled congestion control.
#[derive(Clone, Debug)]
pub struct Dwc {
    paths: Vec<PathState>,
}

impl Dwc {
    /// Creates a DWC controller for `n_subflows` paths.
    pub fn new(n_subflows: usize) -> Self {
        Dwc { paths: vec![PathState::default(); n_subflows.max(1)] }
    }

    fn ensure(&mut self, n: usize) {
        if self.paths.len() < n {
            self.paths.resize(n, PathState::default());
        }
    }

    /// Whether the delay condition holds for subflow `r`.
    pub fn delay_condition(&self, r: usize, f: &SubflowCc) -> bool {
        let p = &self.paths[r];
        if f.last_rtt <= 0.0 || !f.base_rtt.is_finite() || p.max_rtt <= f.base_rtt {
            return false;
        }
        f.last_rtt > f.base_rtt + DELAY_THRESHOLD * (p.max_rtt - f.base_rtt)
    }

    /// Which subflows are currently grouped (sharing a bottleneck per the
    /// delay signal).
    pub fn group(&self) -> Vec<bool> {
        self.paths.iter().map(|p| p.congested).collect()
    }
}

impl MultipathCongestionControl for Dwc {
    fn name(&self) -> &'static str {
        "dwc"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        self.ensure(flows.len());
        if flows[r].last_rtt > self.paths[r].max_rtt {
            self.paths[r].max_rtt = flows[r].last_rtt;
        }
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        // Round bookkeeping for the once-per-RTT delay decrease.
        let round_done = {
            let p = &mut self.paths[r];
            if p.round_len <= 0.0 {
                p.round_len = flows[r].cwnd;
            }
            p.acked += newly_acked as f64;
            p.acked >= p.round_len
        };
        if round_done {
            let congested = self.delay_condition(r, &flows[r]);
            let p = &mut self.paths[r];
            p.acked = 0.0;
            p.congested = congested;
            if congested {
                // λ_r fired: delay-triggered multiplicative decrease.
                common::halve(&mut flows[r]);
                p.round_len = flows[r].cwnd;
                return;
            }
            p.round_len = flows[r].cwnd;
        }
        // Increase: LIA-coupled across the congested group; Reno otherwise.
        let in_group = self.paths[r].congested;
        let group_members: Vec<usize> =
            (0..flows.len()).filter(|&k| self.paths.get(k).is_some_and(|p| p.congested)).collect();
        let delta = if in_group && group_members.len() >= 2 {
            let wt: f64 = group_members.iter().map(|&k| flows[k].cwnd).sum();
            let xt: f64 = group_members.iter().map(|&k| flows[k].rate()).sum();
            let best = group_members
                .iter()
                .map(|&k| flows[k].cwnd / (flows[k].srtt * flows[k].srtt))
                .fold(0.0f64, f64::max);
            if wt > 0.0 && xt > 0.0 {
                (wt * best / (xt * xt) / wt).min(1.0 / flows[r].cwnd)
            } else {
                1.0 / flows[r].cwnd
            }
        } else {
            1.0 / flows[r].cwnd
        };
        common::increase(&mut flows[r], delta, newly_acked);
        let _ = total_cwnd(flows);
        let _ = total_rate(flows);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        self.ensure(flows.len());
        self.paths[r].congested = true;
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Dwc::new(self.paths.len()))
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn flow(cwnd: f64, base: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(base);
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn delay_condition_requires_observed_range() {
        let dwc = Dwc::new(1);
        let f = flow(10.0, 0.1, 0.1);
        assert!(!dwc.delay_condition(0, &f), "no range observed yet");
    }

    #[test]
    fn delay_condition_fires_above_threshold() {
        let mut dwc = Dwc::new(1);
        dwc.paths[0].max_rtt = 0.3;
        let calm = flow(10.0, 0.1, 0.15); // below 0.1 + 0.6·0.2 = 0.22
        let hot = flow(10.0, 0.1, 0.25); // above
        assert!(!dwc.delay_condition(0, &calm));
        assert!(dwc.delay_condition(0, &hot));
    }

    #[test]
    fn delay_triggers_window_decrease_without_loss() {
        let mut dwc = Dwc::new(1);
        let mut flows = [flow(10.0, 0.05, 0.05)];
        // Teach it a high max RTT, then inflate the observed RTT.
        flows[0].observe_rtt(0.30);
        dwc.on_ack(0, &mut flows, 1, false); // records max
        flows[0].observe_rtt(0.29);
        let w = flows[0].cwnd;
        // Complete a round of ACKs with the delay condition holding.
        for _ in 0..(w.ceil() as u64 + 2) {
            dwc.on_ack(0, &mut flows, 1, false);
        }
        assert!(
            flows[0].cwnd < w,
            "delay signal should shrink the window: {} -> {}",
            w,
            flows[0].cwnd
        );
    }

    #[test]
    fn calm_path_grows_like_reno() {
        let mut dwc = Dwc::new(1);
        let mut flows = [flow(10.0, 0.05, 0.05)];
        let before = flows[0].cwnd;
        dwc.on_ack(0, &mut flows, 1, false);
        assert!((flows[0].cwnd - before - 0.1).abs() < 1e-9);
    }

    #[test]
    fn loss_joins_the_group_and_halves() {
        let mut dwc = Dwc::new(2);
        let mut flows = [flow(20.0, 0.05, 0.05), flow(20.0, 0.05, 0.05)];
        dwc.on_loss(0, &mut flows);
        assert_eq!(flows[0].cwnd, 10.0);
        assert!(dwc.group()[0]);
        assert!(!dwc.group()[1]);
    }
}
