//! Shared window-evolution building blocks.
//!
//! Every loss-based algorithm in this crate keeps regular TCP slow start,
//! multiplicative decrease on loss, and window collapse on timeout — only
//! the congestion-avoidance increase differs (the paper's `ψ_r` parameter).
//! These helpers implement the shared parts once.

use crate::state::{SubflowCc, MIN_CWND};

/// Performs slow start on `f` if it applies, returning `true` if the ACK was
/// consumed by slow start (congestion avoidance should then be skipped).
///
/// Slow start grows the window by one packet per acked packet until
/// `ssthresh`. On the ACK that crosses `ssthresh` the window is set to
/// `ssthresh` and `false` is returned so the caller applies its
/// congestion-avoidance increase to the same ACK — without this, an
/// algorithm with a decrease term (DTS-Φ's drain) can be pinned exactly at
/// `ssthresh`, re-entering slow start forever.
pub fn slow_start(f: &mut SubflowCc, newly_acked: u64) -> bool {
    if f.cwnd < f.ssthresh {
        f.cwnd += newly_acked as f64;
        if f.cwnd >= f.ssthresh {
            f.cwnd = f.ssthresh;
            f.clamp_cwnd();
            return false; // crossing ACK continues in congestion avoidance
        }
        f.clamp_cwnd();
        true
    } else {
        false
    }
}

/// Standard multiplicative decrease (`β = 1/2` in the paper's model):
/// `ssthresh = cwnd/2`, `cwnd = ssthresh`.
pub fn halve(f: &mut SubflowCc) {
    decrease(f, 0.5);
}

/// Multiplicative decrease by an arbitrary factor: the window becomes
/// `cwnd * (1 - factor)`, floored at [`MIN_CWND`].
///
/// # Panics
///
/// Panics in debug builds if `factor` is outside `(0, 1]`.
pub fn decrease(f: &mut SubflowCc, factor: f64) {
    debug_assert!(factor > 0.0 && factor <= 1.0, "decrease factor {factor}");
    f.ssthresh = (f.cwnd * (1.0 - factor)).max(MIN_CWND);
    f.cwnd = f.ssthresh;
}

/// RTO collapse: `ssthresh = cwnd/2`, `cwnd = 1`.
pub fn timeout(f: &mut SubflowCc) {
    f.ssthresh = (f.cwnd * 0.5).max(2.0 * MIN_CWND);
    f.cwnd = MIN_CWND;
}

/// Applies a congestion-avoidance increment `delta` (per acked packet) for
/// `newly_acked` packets, clamping to the valid window range.
pub fn increase(f: &mut SubflowCc, delta_per_ack: f64, newly_acked: u64) {
    debug_assert!(delta_per_ack.is_finite(), "non-finite cwnd increment");
    f.cwnd += delta_per_ack.max(0.0) * newly_acked as f64;
    f.clamp_cwnd();
}

/// The paper's Equation (3) increase term discretized per ACK:
///
/// `Δw_r = ψ · (w_r / RTT_r²) / (Σ_k w_k / RTT_k)²`
///
/// which is the window-increase rule printed in Algorithm 1. With `ψ = 1`
/// this is exactly OLIA's base term. Returns 0 until every active subflow has
/// an RTT estimate.
pub fn model_increase(psi: f64, r: usize, flows: &[SubflowCc]) -> f64 {
    let f = &flows[r];
    if !f.has_rtt() {
        return 0.0;
    }
    let sum_rate: f64 = flows.iter().map(SubflowCc::rate).sum();
    if sum_rate <= 0.0 {
        return 0.0;
    }
    psi * (f.cwnd / (f.srtt * f.srtt)) / (sum_rate * sum_rate)
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0; // congestion avoidance
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut f = SubflowCc::new();
        f.ssthresh = 100.0;
        let w0 = f.cwnd;
        // Acking a full window in slow start doubles it.
        let acked = f.cwnd as u64;
        assert!(slow_start(&mut f, acked));
        assert!((f.cwnd - 2.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn slow_start_clamps_at_ssthresh_and_hands_off_to_ca() {
        let mut f = SubflowCc::new();
        f.cwnd = 9.0;
        f.ssthresh = 10.0;
        // The crossing ACK clamps to ssthresh and is NOT consumed: the
        // caller's congestion avoidance applies to it too.
        assert!(!slow_start(&mut f, 5));
        assert_eq!(f.cwnd, 10.0);
        assert!(!slow_start(&mut f, 1));
    }

    #[test]
    fn slow_start_cannot_pin_a_draining_algorithm() {
        // Regression: with a per-ACK drain (DTS-Φ), the old clamp semantics
        // pinned cwnd at ssthresh forever. The crossing ACK must leave room
        // for the caller's CA increase to outgrow a small drain.
        let mut f = SubflowCc::new();
        f.cwnd = 2.0;
        f.ssthresh = 2.0;
        f.observe_rtt(0.02);
        for _ in 0..100 {
            // Simulate DTS-Φ: drain, then slow-start check, then CA.
            f.cwnd -= 1e-4; // drain pushes just below ssthresh
            if !slow_start(&mut f, 1) {
                f.cwnd += 0.1; // CA increase
            }
        }
        assert!(f.cwnd > 3.0, "window must escape the ssthresh trap: {}", f.cwnd);
    }

    #[test]
    fn halve_sets_ssthresh() {
        let mut f = flow(20.0, 0.1);
        halve(&mut f);
        assert_eq!(f.cwnd, 10.0);
        assert_eq!(f.ssthresh, 10.0);
    }

    #[test]
    fn decrease_floors_at_min() {
        let mut f = flow(1.2, 0.1);
        decrease(&mut f, 0.9);
        assert_eq!(f.cwnd, MIN_CWND);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut f = flow(64.0, 0.1);
        timeout(&mut f);
        assert_eq!(f.cwnd, MIN_CWND);
        assert_eq!(f.ssthresh, 32.0);
    }

    #[test]
    fn model_increase_reduces_to_reno_on_single_path() {
        // Single path, ψ = 1: Δw = (w/rtt²)/(w/rtt)² = 1/w.
        let flows = [flow(10.0, 0.05)];
        let d = model_increase(1.0, 0, &flows);
        assert!((d - 0.1).abs() < 1e-12, "delta {d}");
    }

    #[test]
    fn model_increase_is_zero_before_rtt() {
        let flows = [SubflowCc::new()];
        assert_eq!(model_increase(1.0, 0, &flows), 0.0);
    }

    #[test]
    fn model_increase_splits_across_equal_paths() {
        // Two identical paths: Σx doubles, so each path grows 4x slower than
        // alone — the coupling that makes MPTCP TCP-friendly.
        let one = [flow(10.0, 0.05)];
        let two = [flow(10.0, 0.05), flow(10.0, 0.05)];
        let alone = model_increase(1.0, 0, &one);
        let shared = model_increase(1.0, 0, &two);
        assert!((alone / shared - 4.0).abs() < 1e-9);
    }
}
