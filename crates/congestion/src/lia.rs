//! LIA — Linked Increases Algorithm (Wischik et al., NSDI 2011; RFC 6356).
//!
//! The MPTCP kernel default. Congestion avoidance on subflow `r`:
//!
//! ```text
//! Δw_r = min( α / Σ_k w_k ,  1 / w_r )          per ACK
//! α    = (Σ_k w_k) · max_k(w_k/RTT_k²) / (Σ_k w_k/RTT_k)²
//! ```
//!
//! The `min` with `1/w_r` caps each subflow at plain-TCP aggressiveness; the
//! `α` numerator makes the aggregate take at most a best-path TCP's share
//! (the paper's Condition 1). In the paper's decomposition this is
//! `ψ_r = (max_k w_k/RTT_k²) · RTT_r² / w_r`.

use crate::common;
use crate::state::{total_cwnd, total_rate, SubflowCc};
use crate::MultipathCongestionControl;

/// LIA (RFC 6356) coupled congestion avoidance.
#[derive(Clone, Debug, Default)]
pub struct Lia {
    _private: (),
}

impl Lia {
    /// Creates a LIA controller.
    pub fn new() -> Self {
        Lia::default()
    }

    /// RFC 6356 `alpha`: the aggregate aggressiveness scale factor.
    /// Returns 0 until RTT estimates exist.
    pub fn alpha(flows: &[SubflowCc]) -> f64 {
        let wt = total_cwnd(flows);
        let xt = total_rate(flows);
        if wt <= 0.0 || xt <= 0.0 {
            return 0.0;
        }
        let best = flows
            .iter()
            .filter(|f| f.active && f.has_rtt())
            .map(|f| f.cwnd / (f.srtt * f.srtt))
            .fold(0.0f64, f64::max);
        wt * best / (xt * xt)
    }
}

impl MultipathCongestionControl for Lia {
    fn name(&self) -> &'static str {
        "lia"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let alpha = Lia::alpha(flows);
        let wt = total_cwnd(flows);
        if wt <= 0.0 {
            return;
        }
        let coupled = alpha / wt;
        let uncoupled = 1.0 / flows[r].cwnd;
        common::increase(&mut flows[r], coupled.min(uncoupled), newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Lia::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        let mut cc = Lia::new();
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        // α = w·(w/rtt²)/(w/rtt)² = 1, so Δw = min(1/w, 1/w) = 1/w.
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }

    #[test]
    fn alpha_equals_one_on_symmetric_paths() {
        // Two equal paths: α = 2w·(w/rtt²)/(2w/rtt)² = 1/2... compute:
        // wt=2w, best=w/rtt², xt=2w/rtt → α = 2w·(w/rtt²)/(4w²/rtt²) = 1/2.
        let flows = [ca_flow(10.0, 0.1), ca_flow(10.0, 0.1)];
        assert!((Lia::alpha(&flows) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_increase_never_exceeds_best_path_tcp() {
        // TCP-friendliness (paper Condition 1): total per-ACK increase over
        // one round ≤ best-path Reno's.
        let flows = [ca_flow(10.0, 0.1), ca_flow(20.0, 0.2)];
        let alpha = Lia::alpha(&flows);
        let wt = total_cwnd(&flows);
        // Per-round aggregate growth: Σ_r w_r·min(α/wt, 1/w_r) ≤ 1.
        let growth: f64 = flows.iter().map(|f| f.cwnd * (alpha / wt).min(1.0 / f.cwnd)).sum();
        assert!(growth <= 1.0 + 1e-9, "round growth {growth}");
    }

    #[test]
    fn cap_applies_on_asymmetric_paths() {
        // A tiny subflow next to a huge one: the min() caps its increase at
        // its own Reno rate rather than the coupled rate.
        let mut cc = Lia::new();
        let mut flows = [ca_flow(2.0, 0.01), ca_flow(100.0, 0.5)];
        let before = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let delta = flows[0].cwnd - before;
        assert!(delta <= 1.0 / 2.0 + 1e-12, "delta {delta}");
    }

    #[test]
    fn shifts_traffic_toward_low_rtt_path() {
        // Same windows, different RTTs: LIA's α is driven by the *best*
        // (lowest-RTT) path, and both subflows receive the same coupled
        // increment per ACK — but the low-RTT path acks faster in real time,
        // so per unit time it grows faster. Here we check the per-ACK delta
        // is equal (coupling) while rates differ.
        let mut cc = Lia::new();
        let mut flows = [ca_flow(10.0, 0.05), ca_flow(10.0, 0.2)];
        let b0 = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let d0 = flows[0].cwnd - b0;
        let b1 = flows[1].cwnd;
        cc.on_ack(1, &mut flows, 1, false);
        let d1 = flows[1].cwnd - b1;
        assert!(d0 > 0.0 && d1 > 0.0);
        assert!((d0 - d1).abs() / d0 < 0.05, "coupled deltas {d0} {d1}");
    }
}
