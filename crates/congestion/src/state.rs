//! Per-subflow congestion state shared between the transport layer and the
//! congestion-control algorithms.

/// Lower bound on the congestion window, in packets.
pub const MIN_CWND: f64 = 1.0;

/// Default initial congestion window, in packets (RFC 3390-era value; the
/// MPTCP v0.90 kernel experiments in the paper predate large IW defaults
/// mattering for these workloads).
pub const INITIAL_CWND: f64 = 3.0;

/// Upper safety bound on the congestion window, in packets. The transport
/// layer additionally enforces the receiver window; this cap only prevents
/// numeric runaway in loss-free fluid scenarios.
pub const MAX_CWND: f64 = 1_000_000.0;

/// The congestion-control view of one subflow.
///
/// The transport layer owns one of these per subflow and keeps the RTT fields
/// up to date from ACK timestamps; algorithms read the whole slice (windows
/// are coupled across subflows in MPTCP) and write `cwnd`/`ssthresh`.
#[derive(Clone, Debug, PartialEq)]
pub struct SubflowCc {
    /// Congestion window, in packets. Fractional: per-ACK increments of
    /// `1/w` accumulate exactly as in the fluid models.
    pub cwnd: f64,
    /// Slow-start threshold, in packets.
    pub ssthresh: f64,
    /// Smoothed RTT in seconds; `0.0` until the first sample.
    pub srtt: f64,
    /// Most recent RTT sample in seconds; `0.0` until the first sample.
    pub last_rtt: f64,
    /// Minimum RTT observed on this subflow (`baseRTT` in the paper);
    /// `f64::INFINITY` until the first sample.
    pub base_rtt: f64,
    /// Whether the subflow is established and usable.
    pub active: bool,
}

impl SubflowCc {
    /// A fresh subflow in slow start.
    pub fn new() -> Self {
        SubflowCc {
            cwnd: INITIAL_CWND,
            ssthresh: f64::INFINITY,
            srtt: 0.0,
            last_rtt: 0.0,
            base_rtt: f64::INFINITY,
            active: true,
        }
    }

    /// Whether at least one RTT sample has been taken.
    pub fn has_rtt(&self) -> bool {
        self.srtt > 0.0
    }

    /// Send rate estimate `x_r = w_r / RTT_r` in packets/second, or 0 before
    /// the first RTT sample.
    pub fn rate(&self) -> f64 {
        if self.active && self.srtt > 0.0 {
            self.cwnd / self.srtt
        } else {
            0.0
        }
    }

    /// `baseRTT_r / RTT_r`, the path-quality ratio driving the paper's DTS
    /// factor. Returns 1.0 before the first sample (pristine path).
    pub fn rtt_ratio(&self) -> f64 {
        if self.last_rtt > 0.0 && self.base_rtt.is_finite() {
            (self.base_rtt / self.last_rtt).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Records an RTT sample, updating `last_rtt`, `srtt` (EWMA 1/8) and
    /// `base_rtt`.
    pub fn observe_rtt(&mut self, rtt: f64) {
        debug_assert!(rtt > 0.0, "non-positive RTT sample");
        self.last_rtt = rtt;
        self.srtt = if self.srtt > 0.0 { 0.875 * self.srtt + 0.125 * rtt } else { rtt };
        if rtt < self.base_rtt {
            self.base_rtt = rtt;
        }
    }

    /// Clamps the window into `[MIN_CWND, MAX_CWND]`.
    pub fn clamp_cwnd(&mut self) {
        self.cwnd = self.cwnd.clamp(MIN_CWND, MAX_CWND);
    }
}

impl Default for SubflowCc {
    fn default() -> Self {
        Self::new()
    }
}

/// Sum of send-rate estimates over active subflows: `Σ_k x_k`.
pub fn total_rate(flows: &[SubflowCc]) -> f64 {
    flows.iter().map(SubflowCc::rate).sum()
}

/// Sum of congestion windows over active subflows: `Σ_k w_k`.
pub fn total_cwnd(flows: &[SubflowCc]) -> f64 {
    flows.iter().filter(|f| f.active).map(|f| f.cwnd).sum()
}

/// Number of active subflows.
pub fn active_count(flows: &[SubflowCc]) -> usize {
    flows.iter().filter(|f| f.active).count()
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_slow_start() {
        let f = SubflowCc::new();
        assert_eq!(f.cwnd, INITIAL_CWND);
        assert!(f.ssthresh.is_infinite());
        assert!(!f.has_rtt());
        assert_eq!(f.rate(), 0.0);
        assert_eq!(f.rtt_ratio(), 1.0);
    }

    #[test]
    fn rtt_observation_updates_all_fields() {
        let mut f = SubflowCc::new();
        f.observe_rtt(0.100);
        assert_eq!(f.srtt, 0.100);
        assert_eq!(f.base_rtt, 0.100);
        f.observe_rtt(0.200);
        assert!((f.srtt - 0.1125).abs() < 1e-12);
        assert_eq!(f.base_rtt, 0.100);
        assert_eq!(f.last_rtt, 0.200);
        assert!((f.rtt_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregates_skip_inactive_flows() {
        let mut a = SubflowCc::new();
        a.observe_rtt(0.1);
        a.cwnd = 10.0;
        let mut b = SubflowCc::new();
        b.observe_rtt(0.2);
        b.cwnd = 20.0;
        b.active = false;
        let flows = [a, b];
        assert!((total_rate(&flows) - 100.0).abs() < 1e-9);
        assert!((total_cwnd(&flows) - 10.0).abs() < 1e-9);
        assert_eq!(active_count(&flows), 1);
    }

    #[test]
    fn clamp_respects_bounds() {
        let mut f = SubflowCc::new();
        f.cwnd = 0.01;
        f.clamp_cwnd();
        assert_eq!(f.cwnd, MIN_CWND);
        f.cwnd = 1e12;
        f.clamp_cwnd();
        assert_eq!(f.cwnd, MAX_CWND);
    }
}
