//! # congestion — multipath congestion-control algorithms
//!
//! Implementations of every congestion-control algorithm the paper analyzes
//! (its §IV model decomposition and §VI evaluation):
//!
//! | Algorithm | Module | Reference |
//! |---|---|---|
//! | TCP Reno | [`reno`] | baseline single-path TCP |
//! | DCTCP | [`dctcp`] | Alizadeh et al., SIGCOMM 2010 |
//! | EWTCP | [`ewtcp`] | Honda et al., PFLDNeT 2009 |
//! | Coupled (Kelly/Voice) | [`coupled`] | Kelly & Voice, CCR 2005 |
//! | LIA | [`lia`] | Wischik et al., NSDI 2011 / RFC 6356 |
//! | OLIA | [`olia`] | Khalili et al., CoNEXT 2012 |
//! | Balia | [`balia`] | Peng, Walid & Low, SIGMETRICS 2013 |
//! | ecMTCP | [`ecmtcp`] | Le et al., IEEE Comm. Letters 2012 |
//! | wVegas | [`wvegas`] | Cao, Xu & Fu, ICNP 2012 |
//! | DWC | [`dwc`] | Hassayoun, Iyengar & Ros, ICNP 2011 |
//!
//! The paper's own algorithms, DTS and DTS-Φ, implement the same
//! [`MultipathCongestionControl`] trait from the `mptcp-energy` crate.
//!
//! All algorithms operate on a slice of [`SubflowCc`] states — MPTCP couples
//! windows *across* subflows, so every callback sees the whole connection.
//! Windows are `f64` packets; per-ACK fractional increments accumulate
//! exactly like the fluid models they discretize.
//!
//! # Examples
//!
//! ```
//! use congestion::{AlgorithmKind, SubflowCc};
//!
//! let mut cc = AlgorithmKind::Lia.build(2);
//! let mut flows = vec![SubflowCc::new(), SubflowCc::new()];
//! for f in &mut flows {
//!     f.observe_rtt(0.05);
//!     f.ssthresh = 1.0; // force congestion avoidance for the example
//! }
//! let before = flows[0].cwnd;
//! cc.on_ack(0, &mut flows, 1, false);
//! assert!(flows[0].cwnd > before);
//! ```

pub mod balia;
pub mod common;
pub mod coupled;
pub mod dctcp;
pub mod dwc;
pub mod ecmtcp;
pub mod ewtcp;
pub mod lia;
pub mod olia;
pub mod reno;
pub mod state;
pub mod wvegas;

pub use balia::Balia;
pub use coupled::CoupledKv;
pub use dctcp::Dctcp;
pub use dwc::Dwc;
pub use ecmtcp::EcMtcp;
pub use ewtcp::Ewtcp;
pub use lia::Lia;
pub use olia::Olia;
pub use reno::Reno;
pub use state::{
    active_count, total_cwnd, total_rate, SubflowCc, INITIAL_CWND, MAX_CWND, MIN_CWND,
};
pub use wvegas::WVegas;

use std::fmt;
use std::str::FromStr;

/// A window-based multipath congestion-control algorithm.
///
/// The transport layer drives this trait:
///
/// * slow start is handled *inside* `on_ack` implementations via
///   [`common::slow_start`] (the MPTCP kernel and the paper's ns-2 agent keep
///   regular TCP slow start and replace only congestion avoidance);
/// * `on_loss` fires once per fast-retransmit episode (triple-dupACK);
/// * `on_timeout` fires on RTO expiry;
/// * RTT samples arrive through the [`SubflowCc`] fields, which the transport
///   updates before invoking the callbacks.
pub trait MultipathCongestionControl: fmt::Debug + Send {
    /// Short identifier used in experiment tables (e.g. `"lia"`).
    fn name(&self) -> &'static str;

    /// An ACK for `newly_acked` packets arrived on subflow `r`.
    /// `ecn_echo` carries the DCTCP-style per-packet congestion echo.
    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, ecn_echo: bool);

    /// A loss was detected on subflow `r` by fast retransmit.
    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]);

    /// The retransmission timer expired on subflow `r`.
    fn on_timeout(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::timeout(&mut flows[r]);
    }

    /// Whether the algorithm wants routers to ECN-mark its packets (DCTCP).
    fn wants_ecn(&self) -> bool {
        false
    }

    /// Clones the algorithm with its state reset, for running the same
    /// configuration across many connections.
    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl>;
}

/// The algorithm families available in this crate, for configuration by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Single-path TCP Reno (runs uncoupled per subflow).
    Reno,
    /// Data Center TCP (ECN-proportional backoff).
    Dctcp,
    /// Equally-Weighted TCP.
    Ewtcp,
    /// Fully coupled Kelly/Voice control.
    Coupled,
    /// Linked Increases Algorithm (RFC 6356).
    Lia,
    /// Opportunistic LIA.
    Olia,
    /// Balanced Linked Adaptation.
    Balia,
    /// Energy-aware coupled MPTCP.
    EcMtcp,
    /// Weighted Vegas (delay-based).
    WVegas,
    /// Dynamic Window Coupling (delay-signalled decrease).
    Dwc,
}

impl AlgorithmKind {
    /// All algorithm kinds, in evaluation order.
    pub const ALL: [AlgorithmKind; 10] = [
        AlgorithmKind::Reno,
        AlgorithmKind::Dctcp,
        AlgorithmKind::Ewtcp,
        AlgorithmKind::Coupled,
        AlgorithmKind::Lia,
        AlgorithmKind::Olia,
        AlgorithmKind::Balia,
        AlgorithmKind::EcMtcp,
        AlgorithmKind::WVegas,
        AlgorithmKind::Dwc,
    ];

    /// The four TCP-friendly algorithms compared in the paper's Fig. 6.
    pub const PAPER_FOUR: [AlgorithmKind; 4] =
        [AlgorithmKind::Lia, AlgorithmKind::Olia, AlgorithmKind::Balia, AlgorithmKind::EcMtcp];

    /// Instantiates the algorithm for a connection with `n_subflows` paths.
    pub fn build(self, n_subflows: usize) -> Box<dyn MultipathCongestionControl> {
        match self {
            AlgorithmKind::Reno => Box::new(Reno::new()),
            AlgorithmKind::Dctcp => Box::new(Dctcp::new(n_subflows)),
            AlgorithmKind::Ewtcp => Box::new(Ewtcp::new()),
            AlgorithmKind::Coupled => Box::new(CoupledKv::new()),
            AlgorithmKind::Lia => Box::new(Lia::new()),
            AlgorithmKind::Olia => Box::new(Olia::new(n_subflows)),
            AlgorithmKind::Balia => Box::new(Balia::new()),
            AlgorithmKind::EcMtcp => Box::new(EcMtcp::new()),
            AlgorithmKind::WVegas => Box::new(WVegas::new(n_subflows)),
            AlgorithmKind::Dwc => Box::new(Dwc::new(n_subflows)),
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlgorithmKind::Reno => "reno",
            AlgorithmKind::Dctcp => "dctcp",
            AlgorithmKind::Ewtcp => "ewtcp",
            AlgorithmKind::Coupled => "coupled",
            AlgorithmKind::Lia => "lia",
            AlgorithmKind::Olia => "olia",
            AlgorithmKind::Balia => "balia",
            AlgorithmKind::EcMtcp => "ecmtcp",
            AlgorithmKind::WVegas => "wvegas",
            AlgorithmKind::Dwc => "dwc",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAlgorithmError(String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown congestion-control algorithm `{}`", self.0)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmKind {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reno" | "tcp" => Ok(AlgorithmKind::Reno),
            "dctcp" => Ok(AlgorithmKind::Dctcp),
            "ewtcp" => Ok(AlgorithmKind::Ewtcp),
            "coupled" => Ok(AlgorithmKind::Coupled),
            "lia" => Ok(AlgorithmKind::Lia),
            "olia" => Ok(AlgorithmKind::Olia),
            "balia" => Ok(AlgorithmKind::Balia),
            "ecmtcp" => Ok(AlgorithmKind::EcMtcp),
            "wvegas" => Ok(AlgorithmKind::WVegas),
            "dwc" => Ok(AlgorithmKind::Dwc),
            other => Err(ParseAlgorithmError(other.to_owned())),
        }
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_through_strings() {
        for kind in AlgorithmKind::ALL {
            let parsed: AlgorithmKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nonsense".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in AlgorithmKind::ALL {
            let cc = kind.build(2);
            assert_eq!(cc.name(), kind.to_string());
        }
    }

    #[test]
    fn fresh_box_preserves_name() {
        for kind in AlgorithmKind::ALL {
            let cc = kind.build(3);
            assert_eq!(cc.fresh_box().name(), cc.name());
        }
    }

    #[test]
    fn only_dctcp_wants_ecn() {
        for kind in AlgorithmKind::ALL {
            let cc = kind.build(2);
            assert_eq!(cc.wants_ecn(), kind == AlgorithmKind::Dctcp, "{kind}");
        }
    }
}
