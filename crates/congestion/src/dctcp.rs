//! DCTCP — Data Center TCP (Alizadeh et al., SIGCOMM 2010).
//!
//! The single-path datacenter baseline of the paper's Fig. 10 (EC2)
//! comparison. DCTCP keeps Reno's additive increase but reacts to the
//! *fraction* `F` of ECN-marked packets per window:
//!
//! ```text
//! α ← (1−g)·α + g·F        once per window (g = 1/16)
//! w ← w·(1 − α/2)           once per marked window
//! ```
//!
//! Like Reno, it runs uncoupled when attached to multiple subflows.

use crate::common;
use crate::state::SubflowCc;
use crate::MultipathCongestionControl;

/// EWMA gain for the marking-fraction estimator (RFC 8257 recommends 1/16).
pub const DCTCP_G: f64 = 1.0 / 16.0;

#[derive(Clone, Copy, Debug)]
struct WindowState {
    /// Smoothed marking fraction α.
    alpha: f64,
    /// Packets acked in the current observation window.
    acked: f64,
    /// Of those, packets with the ECN echo set.
    marked: f64,
    /// Window length target (cwnd at the start of the round).
    round_len: f64,
}

impl WindowState {
    fn new() -> Self {
        WindowState { alpha: 1.0, acked: 0.0, marked: 0.0, round_len: 0.0 }
    }
}

/// DCTCP ECN-proportional congestion control.
#[derive(Clone, Debug)]
pub struct Dctcp {
    windows: Vec<WindowState>,
}

impl Dctcp {
    /// Creates a DCTCP controller for `n_subflows` (usually 1).
    pub fn new(n_subflows: usize) -> Self {
        Dctcp { windows: vec![WindowState::new(); n_subflows.max(1)] }
    }

    fn ensure(&mut self, n: usize) {
        if self.windows.len() < n {
            self.windows.resize(n, WindowState::new());
        }
    }

    /// Current marking-fraction estimate for subflow `r`.
    pub fn alpha(&self, r: usize) -> f64 {
        self.windows.get(r).map_or(1.0, |w| w.alpha)
    }
}

impl MultipathCongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn wants_ecn(&self) -> bool {
        true
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, ecn_echo: bool) {
        self.ensure(flows.len());
        let f = &mut flows[r];
        let w = &mut self.windows[r];
        if w.round_len <= 0.0 {
            w.round_len = f.cwnd;
        }
        w.acked += newly_acked as f64;
        if ecn_echo {
            w.marked += newly_acked as f64;
            // A mark during slow start ends slow start (RFC 8257 §3.4).
            if f.cwnd < f.ssthresh {
                f.ssthresh = f.cwnd;
            }
        }
        if w.acked >= w.round_len {
            let fraction = (w.marked / w.acked).clamp(0.0, 1.0);
            w.alpha = (1.0 - DCTCP_G) * w.alpha + DCTCP_G * fraction;
            if w.marked > 0.0 {
                common::decrease(f, (w.alpha / 2.0).clamp(1e-6, 1.0));
            }
            w.acked = 0.0;
            w.marked = 0.0;
            w.round_len = f.cwnd;
        }
        if common::slow_start(f, newly_acked) {
            return;
        }
        if !ecn_echo {
            let delta = 1.0 / f.cwnd;
            common::increase(f, delta, newly_acked);
        }
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Dctcp::new(self.windows.len()))
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(0.001);
        f
    }

    #[test]
    fn unmarked_traffic_decays_alpha() {
        let mut cc = Dctcp::new(1);
        let mut flows = [ca_flow(10.0)];
        let a0 = cc.alpha(0);
        for _ in 0..100 {
            cc.on_ack(0, &mut flows, 1, false);
        }
        assert!(cc.alpha(0) < a0 * 0.7, "alpha should decay: {}", cc.alpha(0));
    }

    #[test]
    fn fully_marked_window_halves_eventually() {
        let mut cc = Dctcp::new(1);
        let mut flows = [ca_flow(100.0)];
        // Saturate α at 1 with fully marked windows.
        for _ in 0..2000 {
            cc.on_ack(0, &mut flows, 1, true);
        }
        assert!(cc.alpha(0) > 0.9);
        // With α≈1 each marked window roughly halves cwnd → window collapses
        // toward the floor.
        assert!(flows[0].cwnd < 10.0, "cwnd {}", flows[0].cwnd);
    }

    #[test]
    fn light_marking_gives_gentle_backoff() {
        let mut cc = Dctcp::new(1);
        let mut flows = [ca_flow(100.0)];
        // Decay alpha first with clean windows.
        for _ in 0..3000 {
            cc.on_ack(0, &mut flows, 1, false);
        }
        let w_before = flows[0].cwnd;
        let a = cc.alpha(0);
        // One mark in the next window.
        cc.on_ack(0, &mut flows, 1, true);
        for _ in 0..(w_before as u64) {
            cc.on_ack(0, &mut flows, 1, false);
        }
        // Reduction factor ≈ α/2, far smaller than Reno's 1/2.
        assert!(flows[0].cwnd > w_before * (1.0 - a), "gentle backoff");
    }

    #[test]
    fn mark_in_slow_start_exits_slow_start() {
        let mut cc = Dctcp::new(1);
        let mut flows = [SubflowCc::new()];
        flows[0].observe_rtt(0.001);
        assert!(flows[0].cwnd < flows[0].ssthresh);
        cc.on_ack(0, &mut flows, 1, true);
        assert!(flows[0].ssthresh.is_finite());
    }
}
