//! wVegas — weighted Vegas, delay-based multipath congestion control
//! (Cao, Xu & Fu, ICNP 2012).
//!
//! wVegas is the one algorithm in the paper's taxonomy with step size `δ = 1`
//! (one adjustment per RTT round rather than per ACK) and a delay-based price
//! `q_r = RTT_r − baseRTT_r`. Each subflow maintains a target backlog `α_r`
//! (packets queued in the network) proportional to its share of the
//! connection's total rate, and nudges its window by ±1 per round to track
//! it:
//!
//! ```text
//! diff_r = w_r · (RTT_r − baseRTT_r) / RTT_r     (packets in queue)
//! diff_r < α_r        → w_r += 1
//! diff_r > α_r + 2    → w_r -= 1
//! ```
//!
//! Loss still halves the window. Because its equilibrium holds queues at a
//! few packets, wVegas keeps RTTs near base — the behaviour that makes
//! delay-based control attractive for energy but fragile against loss-based
//! competitors.

use crate::common;
use crate::state::{total_rate, SubflowCc};
use crate::MultipathCongestionControl;

/// Total target backlog across subflows, in packets (the ICNP paper's
/// `total_alpha`).
pub const TOTAL_ALPHA: f64 = 10.0;

/// Hysteresis band above `α_r` before the window is decreased.
pub const BETA_MARGIN: f64 = 2.0;

#[derive(Clone, Copy, Debug, Default)]
struct Round {
    acked: f64,
    len: f64,
}

/// wVegas delay-based multipath congestion control.
#[derive(Clone, Debug)]
pub struct WVegas {
    rounds: Vec<Round>,
}

impl WVegas {
    /// Creates a wVegas controller for `n_subflows` paths.
    pub fn new(n_subflows: usize) -> Self {
        WVegas { rounds: vec![Round::default(); n_subflows.max(1)] }
    }

    fn ensure(&mut self, n: usize) {
        if self.rounds.len() < n {
            self.rounds.resize(n, Round::default());
        }
    }

    /// The per-subflow backlog target `α_r`: this subflow's share of
    /// [`TOTAL_ALPHA`], floored at 2 packets.
    pub fn alpha_target(r: usize, flows: &[SubflowCc]) -> f64 {
        let xt = total_rate(flows);
        let xr = flows[r].rate();
        if xt <= 0.0 || xr <= 0.0 {
            return 2.0;
        }
        (TOTAL_ALPHA * xr / xt).max(2.0)
    }

    /// Vegas backlog estimate `diff_r = w_r·(RTT−base)/RTT` in packets.
    pub fn backlog(f: &SubflowCc) -> f64 {
        if f.last_rtt > 0.0 && f.base_rtt.is_finite() {
            f.cwnd * (f.last_rtt - f.base_rtt).max(0.0) / f.last_rtt
        } else {
            0.0
        }
    }
}

impl MultipathCongestionControl for WVegas {
    fn name(&self) -> &'static str {
        "wvegas"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        self.ensure(flows.len());
        // Vegas-style slow start: grow every other RTT until backlog appears.
        {
            let f = &mut flows[r];
            if f.cwnd < f.ssthresh && WVegas::backlog(f) < TOTAL_ALPHA {
                common::slow_start(f, newly_acked);
                // fall through to round bookkeeping so diff is tracked
            }
        }
        let round = &mut self.rounds[r];
        if round.len <= 0.0 {
            round.len = flows[r].cwnd;
        }
        round.acked += newly_acked as f64;
        if round.acked < round.len || !flows[r].has_rtt() {
            return;
        }
        round.acked = 0.0;
        let target = WVegas::alpha_target(r, flows);
        let f = &mut flows[r];
        let diff = WVegas::backlog(f);
        if f.cwnd >= f.ssthresh || diff >= TOTAL_ALPHA {
            // Congestion avoidance: ±1 per round toward the target backlog.
            if f.cwnd >= f.ssthresh {
                if diff < target {
                    f.cwnd += 1.0;
                } else if diff > target + BETA_MARGIN {
                    f.cwnd -= 1.0;
                }
            } else {
                // Backlog appeared during slow start: leave slow start.
                f.ssthresh = f.cwnd;
            }
            f.clamp_cwnd();
        }
        round.len = f.cwnd;
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(WVegas::new(self.rounds.len()))
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn flow(cwnd: f64, rtt: f64, base: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0; // congestion avoidance
        f.observe_rtt(base);
        f.observe_rtt(rtt);
        f
    }

    fn run_rounds(cc: &mut WVegas, flows: &mut [SubflowCc], r: usize, rounds: usize) {
        for _ in 0..rounds {
            let len = flows[r].cwnd.ceil() as u64 + 1;
            for _ in 0..len {
                cc.on_ack(r, flows, 1, false);
            }
        }
    }

    #[test]
    fn grows_when_queue_below_target() {
        let mut cc = WVegas::new(1);
        // RTT == base: zero backlog, below target → +1 per round.
        let mut flows = [flow(10.0, 0.1, 0.1)];
        let before = flows[0].cwnd;
        run_rounds(&mut cc, &mut flows, 0, 3);
        assert!(flows[0].cwnd >= before + 3.0 - 1e-9, "cwnd {}", flows[0].cwnd);
    }

    #[test]
    fn shrinks_when_queue_above_target() {
        let mut cc = WVegas::new(1);
        // Heavy queueing: RTT = 2x base → backlog = w/2 = 20 ≫ α+β.
        let mut flows = [flow(40.0, 0.2, 0.1)];
        let before = flows[0].cwnd;
        run_rounds(&mut cc, &mut flows, 0, 2);
        assert!(flows[0].cwnd < before, "cwnd {}", flows[0].cwnd);
    }

    #[test]
    fn backlog_estimate_is_vegas_diff() {
        let f = flow(40.0, 0.2, 0.1);
        assert!((WVegas::backlog(&f) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_target_splits_by_rate_share() {
        let flows = [flow(30.0, 0.1, 0.1), flow(10.0, 0.1, 0.1)];
        let a0 = WVegas::alpha_target(0, &flows);
        let a1 = WVegas::alpha_target(1, &flows);
        assert!((a0 - 7.5).abs() < 1e-9);
        assert!((a1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn loss_halves_window() {
        let mut cc = WVegas::new(1);
        let mut flows = [flow(16.0, 0.1, 0.1)];
        cc.on_loss(0, &mut flows);
        assert_eq!(flows[0].cwnd, 8.0);
    }
}
