//! ecMTCP — energy-aware coupled MPTCP (Le et al., IEEE Communications
//! Letters 2012).
//!
//! ecMTCP couples all subflows and additionally biases the increase toward
//! low-energy-cost paths, using path RTT relative to the best path as the
//! cost signal. The paper's §IV decomposition gives
//! `ψ_r = RTT_r³ (Σ_k x_k)² / (|s| · min_k RTT_k · w_r · Σ_k w_k)`, which
//! discretized through Equation (3) collapses to the per-ACK rule
//!
//! ```text
//! Δw_r = RTT_r / ( n · min_k RTT_k · Σ_k w_k )
//! ```
//!
//! i.e. a fully coupled `1/(n·Σw)` increase scaled up on high-RTT paths in
//! *window* units — which equalizes *rate* growth across paths and gently
//! shifts traffic toward cheap paths via its loss-side behaviour.

use crate::common;
use crate::state::{active_count, total_cwnd, SubflowCc};
use crate::MultipathCongestionControl;

/// ecMTCP energy-aware coupled congestion avoidance.
#[derive(Clone, Debug, Default)]
pub struct EcMtcp {
    _private: (),
}

impl EcMtcp {
    /// Creates an ecMTCP controller.
    pub fn new() -> Self {
        EcMtcp::default()
    }
}

impl MultipathCongestionControl for EcMtcp {
    fn name(&self) -> &'static str {
        "ecmtcp"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let n = active_count(flows).max(1) as f64;
        let wt = total_cwnd(flows);
        let min_rtt = flows
            .iter()
            .filter(|f| f.active && f.has_rtt())
            .map(|f| f.srtt)
            .fold(f64::INFINITY, f64::min);
        if wt <= 0.0 || !min_rtt.is_finite() || !flows[r].has_rtt() {
            return;
        }
        let delta = flows[r].srtt / (n * min_rtt * wt);
        common::increase(&mut flows[r], delta, newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(EcMtcp::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        let mut cc = EcMtcp::new();
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        // n=1, min_rtt=rtt: Δw = rtt/(rtt·w) = 1/w.
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }

    #[test]
    fn increase_is_coupled_and_conservative() {
        // Two paths: the per-ACK increase is at most half of Reno's on equal
        // paths, so the aggregate stays TCP-friendly.
        let mut cc = EcMtcp::new();
        let mut flows = [ca_flow(10.0, 0.1), ca_flow(10.0, 0.1)];
        let before = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let delta = flows[0].cwnd - before;
        assert!((delta - 1.0 / (2.0 * 20.0)).abs() < 1e-12);
    }

    #[test]
    fn rate_growth_is_equalized_across_rtts() {
        // Δw ∝ rtt means Δx = Δw/rtt is the same on both paths per ACK.
        let mut cc = EcMtcp::new();
        let mut flows = [ca_flow(10.0, 0.05), ca_flow(10.0, 0.2)];
        let b0 = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let dx0 = (flows[0].cwnd - b0) / flows[0].srtt;
        let b1 = flows[1].cwnd;
        cc.on_ack(1, &mut flows, 1, false);
        let dx1 = (flows[1].cwnd - b1) / flows[1].srtt;
        assert!((dx0 - dx1).abs() / dx0 < 0.01, "rate deltas {dx0} {dx1}");
    }
}
