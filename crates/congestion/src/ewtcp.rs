//! EWTCP — Equally-Weighted TCP (Honda et al., PFLDNeT 2009).
//!
//! Each subflow runs Reno scaled by `a = 1/√n`, so that `n` subflows sharing
//! one bottleneck collectively take one TCP's share. In the paper's model
//! decomposition (§IV) this is `ψ_r = (Σ_k x_k)² / (x_r² √n)`, which reduces
//! to the per-ACK rule `Δw_r = 1 / (√n · w_r)`.
//!
//! EWTCP cannot shift traffic between paths (its increase ignores the other
//! subflows' state), which is exactly why the paper uses it as the
//! no-traffic-shifting reference point.

use crate::common;
use crate::state::{active_count, SubflowCc};
use crate::MultipathCongestionControl;

/// EWTCP: uncoupled Reno with `1/√n` weighting.
#[derive(Clone, Debug, Default)]
pub struct Ewtcp {
    _private: (),
}

impl Ewtcp {
    /// Creates an EWTCP controller.
    pub fn new() -> Self {
        Ewtcp::default()
    }
}

impl MultipathCongestionControl for Ewtcp {
    fn name(&self) -> &'static str {
        "ewtcp"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        let n = active_count(flows).max(1) as f64;
        let f = &mut flows[r];
        if common::slow_start(f, newly_acked) {
            return;
        }
        let delta = 1.0 / (n.sqrt() * f.cwnd);
        common::increase(f, delta, newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Ewtcp::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        let mut cc = Ewtcp::new();
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }

    #[test]
    fn four_paths_grow_at_half_reno_rate() {
        let mut cc = Ewtcp::new();
        let mut flows =
            [ca_flow(10.0, 0.1), ca_flow(10.0, 0.1), ca_flow(10.0, 0.1), ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        // 1/(√4·10) = 0.05.
        assert!((flows[0].cwnd - 10.05).abs() < 1e-9);
    }

    #[test]
    fn increase_ignores_other_paths_state() {
        // EWTCP has no traffic shifting: a congested sibling (huge RTT) does
        // not change this path's increase.
        let mut cc = Ewtcp::new();
        let mut a = [ca_flow(10.0, 0.1), ca_flow(10.0, 0.1)];
        let mut b = [ca_flow(10.0, 0.1), ca_flow(10.0, 1.0)];
        cc.on_ack(0, &mut a, 1, false);
        cc.on_ack(0, &mut b, 1, false);
        assert!((a[0].cwnd - b[0].cwnd).abs() < 1e-12);
    }
}
