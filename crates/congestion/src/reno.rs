//! TCP Reno / NewReno congestion avoidance.
//!
//! The single-path baseline of every experiment in the paper. When attached
//! to a multi-subflow connection it runs *uncoupled*: each subflow behaves
//! like an independent Reno flow (this is the "regular TCP over each path"
//! strawman that MPTCP coupling is designed to avoid).

use crate::common;
use crate::state::SubflowCc;
use crate::MultipathCongestionControl;

/// TCP Reno: AIMD with `Δw = 1/w` per ACK and window halving on loss.
#[derive(Clone, Debug, Default)]
pub struct Reno {
    _private: (),
}

impl Reno {
    /// Creates a Reno controller.
    pub fn new() -> Self {
        Reno::default()
    }
}

impl MultipathCongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        let f = &mut flows[r];
        if common::slow_start(f, newly_acked) {
            return;
        }
        let delta = 1.0 / f.cwnd;
        common::increase(f, delta, newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Reno::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(0.1);
        f
    }

    #[test]
    fn one_window_of_acks_adds_one_packet() {
        let mut cc = Reno::new();
        let mut flows = [ca_flow(10.0)];
        for _ in 0..10 {
            cc.on_ack(0, &mut flows, 1, false);
        }
        // Sum of 1/w over a window ≈ 1 packet (slightly less as w grows).
        assert!((flows[0].cwnd - 11.0).abs() < 0.05, "cwnd {}", flows[0].cwnd);
    }

    #[test]
    fn loss_halves() {
        let mut cc = Reno::new();
        let mut flows = [ca_flow(32.0)];
        cc.on_loss(0, &mut flows);
        assert_eq!(flows[0].cwnd, 16.0);
    }

    #[test]
    fn subflows_are_independent() {
        let mut cc = Reno::new();
        let mut flows = [ca_flow(10.0), ca_flow(10.0)];
        let before = flows[1].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        assert_eq!(flows[1].cwnd, before);
        // Reno's increase on one path ignores the other path entirely.
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }
}
