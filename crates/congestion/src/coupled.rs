//! Fully coupled congestion control (Kelly & Voice 2005; Han et al. 2006).
//!
//! The paper's decomposition gives `ψ_r = RTT_r²(Σ_k x_k)²/(Σ_k w_k)²`, which
//! discretizes to the per-ACK rule `Δw_r = w_r / (Σ_k w_k)²`. On a single
//! path this is Reno; across paths it couples so hard that all traffic
//! eventually concentrates on the least-congested path ("flappiness"), the
//! known drawback that motivated LIA's semi-coupling.

use crate::common;
use crate::state::{total_cwnd, SubflowCc};
use crate::MultipathCongestionControl;

/// Fully coupled Kelly/Voice window control.
#[derive(Clone, Debug, Default)]
pub struct CoupledKv {
    _private: (),
}

impl CoupledKv {
    /// Creates a fully coupled controller.
    pub fn new() -> Self {
        CoupledKv::default()
    }
}

impl MultipathCongestionControl for CoupledKv {
    fn name(&self) -> &'static str {
        "coupled"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let wt = total_cwnd(flows);
        if wt <= 0.0 {
            return;
        }
        let delta = flows[r].cwnd / (wt * wt);
        common::increase(&mut flows[r], delta, newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(CoupledKv::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        let mut cc = CoupledKv::new();
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }

    #[test]
    fn total_increase_is_at_most_one_tcp() {
        // Two equal paths, one round (w ACKs per path): each ACK adds
        // w_r/(Σw)², so the round's total growth is Σ_r w_r²/(Σw)² = 1/2 —
        // strictly TCP-friendly (≤ 1 packet/round, the single-TCP rate).
        let mut cc = CoupledKv::new();
        let mut flows = [ca_flow(10.0, 0.1), ca_flow(10.0, 0.1)];
        let before = total_cwnd(&flows);
        for _ in 0..10 {
            cc.on_ack(0, &mut flows, 1, false);
            cc.on_ack(1, &mut flows, 1, false);
        }
        let grown = total_cwnd(&flows) - before;
        assert!((grown - 0.5).abs() < 0.05, "total growth {grown}");
        assert!(grown <= 1.0);
    }

    #[test]
    fn bigger_window_grows_faster_concentrating_traffic() {
        let mut cc = CoupledKv::new();
        let mut flows = [ca_flow(15.0, 0.1), ca_flow(5.0, 0.1)];
        let d0 = {
            let w = flows[0].cwnd;
            cc.on_ack(0, &mut flows, 1, false);
            flows[0].cwnd - w
        };
        let d1 = {
            let w = flows[1].cwnd;
            cc.on_ack(1, &mut flows, 1, false);
            flows[1].cwnd - w
        };
        assert!(d0 > d1, "coupled favours the larger window ({d0} vs {d1})");
    }
}
