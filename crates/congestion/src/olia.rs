//! OLIA — Opportunistic Linked Increases Algorithm (Khalili et al., CoNEXT
//! 2012).
//!
//! The only Pareto-optimal algorithm among the paper's four TCP-friendly
//! baselines (`ψ_r = 1` in the §IV decomposition), which is exactly why it
//! wins the paper's Fig. 6 energy comparison. Congestion avoidance:
//!
//! ```text
//! Δw_r = ( w_r/RTT_r² ) / ( Σ_k w_k/RTT_k )²  +  α_r / w_r    per ACK
//! ```
//!
//! where `α_r` opportunistically re-balances toward "best" paths (largest
//! inter-loss distance `l_r` relative to RTT) that currently hold small
//! windows:
//!
//! * `r ∈ B∖M` (best path, not max-window): `α_r = +1 / (n·|B∖M|)`
//! * `r ∈ M` and `B∖M ≠ ∅` (max-window path): `α_r = −1 / (n·|M|)`
//! * otherwise `α_r = 0`.
//!
//! `l_r` is estimated kernel-style as `max(l1_r, l2_r)` with `l1_r` packets
//! acked since the last loss and `l2_r` packets between the last two losses.

use crate::common;
use crate::state::SubflowCc;
use crate::MultipathCongestionControl;

#[derive(Clone, Copy, Debug, Default)]
struct LossHistory {
    /// Packets acked since the last loss.
    l1: f64,
    /// Packets acked between the previous two losses.
    l2: f64,
}

impl LossHistory {
    fn inter_loss(&self) -> f64 {
        // Before any loss l2 is 0 and l1 grows without bound, matching the
        // kernel's "everything since the start" semantics.
        self.l1.max(self.l2).max(1.0)
    }
}

/// OLIA coupled congestion avoidance.
#[derive(Clone, Debug)]
pub struct Olia {
    history: Vec<LossHistory>,
}

impl Olia {
    /// Creates an OLIA controller for `n_subflows` paths.
    pub fn new(n_subflows: usize) -> Self {
        Olia { history: vec![LossHistory::default(); n_subflows.max(1)] }
    }

    fn ensure(&mut self, n: usize) {
        if self.history.len() < n {
            self.history.resize(n, LossHistory::default());
        }
    }

    /// Computes `α_r` for every subflow.
    pub fn alphas(&self, flows: &[SubflowCc]) -> Vec<f64> {
        let n = flows.len();
        let mut alphas = vec![0.0; n];
        let usable: Vec<usize> =
            (0..n).filter(|&k| flows[k].active && flows[k].has_rtt()).collect();
        if usable.len() < 2 {
            return alphas;
        }
        // Best paths: max l²/rtt² among usable paths.
        let quality = |k: usize| {
            let l = self.history.get(k).copied().unwrap_or_default().inter_loss();
            let rtt = flows[k].srtt;
            (l / rtt) * (l / rtt)
        };
        let qmax = usable.iter().map(|&k| quality(k)).fold(0.0f64, f64::max);
        let wmax = usable.iter().map(|&k| flows[k].cwnd).fold(0.0f64, f64::max);
        let best: Vec<usize> =
            usable.iter().copied().filter(|&k| quality(k) >= qmax * (1.0 - 1e-9)).collect();
        let maxw: Vec<usize> =
            usable.iter().copied().filter(|&k| flows[k].cwnd >= wmax * (1.0 - 1e-9)).collect();
        let b_minus_m: Vec<usize> = best.iter().copied().filter(|k| !maxw.contains(k)).collect();
        if b_minus_m.is_empty() {
            return alphas; // collected = ∅: no transfer needed.
        }
        let nf = usable.len() as f64;
        for &k in &b_minus_m {
            alphas[k] = 1.0 / (nf * b_minus_m.len() as f64);
        }
        for &k in &maxw {
            alphas[k] = -1.0 / (nf * maxw.len() as f64);
        }
        alphas
    }
}

impl MultipathCongestionControl for Olia {
    fn name(&self) -> &'static str {
        "olia"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        self.ensure(flows.len());
        self.history[r].l1 += newly_acked as f64;
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let base = common::model_increase(1.0, r, flows);
        let alpha = self.alphas(flows)[r];
        let delta = base + alpha / flows[r].cwnd;
        // OLIA's α can be negative; allow gentle decrease but never below the
        // floor (common::increase clamps positives only, so handle directly).
        flows[r].cwnd += delta * newly_acked as f64;
        flows[r].clamp_cwnd();
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        self.ensure(flows.len());
        let h = &mut self.history[r];
        h.l2 = h.l1;
        h.l1 = 0.0;
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Olia::new(self.history.len()))
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        let mut cc = Olia::new(1);
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
    }

    #[test]
    fn alphas_sum_to_zero() {
        let mut cc = Olia::new(3);
        // Give path 0 a clean loss record (best) but the smallest window.
        cc.history[0].l1 = 1000.0;
        cc.history[1].l1 = 10.0;
        cc.history[2].l1 = 10.0;
        let flows = [ca_flow(2.0, 0.1), ca_flow(20.0, 0.1), ca_flow(20.0, 0.1)];
        let alphas = cc.alphas(&flows);
        let sum: f64 = alphas.iter().sum();
        assert!(sum.abs() < 1e-12, "alphas {alphas:?}");
        assert!(alphas[0] > 0.0, "best small-window path gets positive alpha");
        assert!(alphas[1] < 0.0 && alphas[2] < 0.0);
    }

    #[test]
    #[allow(clippy::float_cmp)]
    fn no_transfer_when_best_path_has_max_window() {
        let mut cc = Olia::new(2);
        cc.history[0].l1 = 1000.0;
        cc.history[1].l1 = 10.0;
        let flows = [ca_flow(20.0, 0.1), ca_flow(5.0, 0.1)];
        let alphas = cc.alphas(&flows);
        // simlint: allow(F001, the no-transfer branch assigns literal 0.0 alphas; the test pins that they are exactly zero, not merely small)
        assert!(alphas.iter().all(|a| *a == 0.0), "alphas {alphas:?}");
    }

    #[test]
    fn loss_rotates_history_and_halves() {
        let mut cc = Olia::new(1);
        let mut flows = [ca_flow(10.0, 0.1)];
        for _ in 0..7 {
            cc.on_ack(0, &mut flows, 1, false);
        }
        cc.on_loss(0, &mut flows);
        assert_eq!(cc.history[0].l1, 0.0);
        assert_eq!(cc.history[0].l2, 7.0);
        assert!((flows[0].cwnd - (10.0 + 7.0 * 0.1) / 2.0).abs() < 0.05);
    }

    #[test]
    fn rebalancing_grows_starved_best_path_faster() {
        let mut cc = Olia::new(2);
        cc.history[0].l1 = 1000.0; // path 0: rarely loses = best
        cc.history[1].l1 = 5.0;
        let mut flows = [ca_flow(2.0, 0.1), ca_flow(30.0, 0.1)];
        let b = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let with_alpha = flows[0].cwnd - b;
        // Compare against the pure ψ=1 base term.
        let flows2 = [ca_flow(2.0, 0.1), ca_flow(30.0, 0.1)];
        let base = common::model_increase(1.0, 0, &flows2);
        assert!(with_alpha > base, "alpha should boost: {with_alpha} vs {base}");
    }
}
