//! Balia — Balanced Linked Adaptation (Peng, Walid & Low, SIGMETRICS 2013;
//! the `balia` module of the MPTCP Linux kernel).
//!
//! Congestion avoidance on subflow `r`, with rates `x_k = w_k/RTT_k` and
//! `α_r = max_k x_k / x_r ≥ 1`:
//!
//! ```text
//! Δw_r = (w_r/RTT_r²) / (Σ_k x_k)² · ((1+α_r)/2) · ((4+α_r)/5)   per ACK
//! loss: w_r ← w_r · (1 − min(α_r, 1.5)/2)
//! ```
//!
//! Expanding the product gives the paper's §IV decomposition
//! `ψ_r = 2/5 + α_r/2 + α_r²/10`. Balia trades some friendliness for better
//! responsiveness than OLIA (its design goal).

use crate::common;
use crate::state::{total_rate, SubflowCc};
use crate::MultipathCongestionControl;

/// Balia coupled congestion avoidance.
#[derive(Clone, Debug, Default)]
pub struct Balia {
    _private: (),
}

impl Balia {
    /// Creates a Balia controller.
    pub fn new() -> Self {
        Balia::default()
    }

    /// `α_r = max_k x_k / x_r` (1.0 when `r` is the fastest path or rates are
    /// unknown).
    pub fn alpha(r: usize, flows: &[SubflowCc]) -> f64 {
        let xr = flows[r].rate();
        if xr <= 0.0 {
            return 1.0;
        }
        let xmax = flows.iter().map(SubflowCc::rate).fold(0.0f64, f64::max);
        (xmax / xr).max(1.0)
    }
}

impl MultipathCongestionControl for Balia {
    fn name(&self) -> &'static str {
        "balia"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let alpha = Balia::alpha(r, flows);
        let psi = ((1.0 + alpha) / 2.0) * ((4.0 + alpha) / 5.0);
        let delta = common::model_increase(psi, r, flows);
        common::increase(&mut flows[r], delta, newly_acked);
        let _ = total_rate(flows); // (kept for symmetry with the fluid model)
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        let alpha = Balia::alpha(r, flows);
        common::decrease(&mut flows[r], alpha.min(1.5) / 2.0);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Balia::new())
    }
}

#[cfg(test)]
// Tests drive window arithmetic whose operands (halving, +1 steps,
// literal initial values) are exact in f64, so strict comparison pins
// the algorithm without tolerance slop.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn single_path_reduces_to_reno() {
        // α = 1 → ψ = (2/2)·(5/5) = 1 → Δw = 1/w; loss factor min(1,1.5)/2 = 1/2.
        let mut cc = Balia::new();
        let mut flows = [ca_flow(10.0, 0.1)];
        cc.on_ack(0, &mut flows, 1, false);
        assert!((flows[0].cwnd - 10.1).abs() < 1e-9);
        cc.on_loss(0, &mut flows);
        assert!((flows[0].cwnd - 5.05).abs() < 1e-9);
    }

    #[test]
    fn slow_path_gets_boosted_increase() {
        // The slower path (smaller rate) has α > 1 and thus ψ > 1: Balia
        // keeps it from starving (balanced adaptation).
        let flows = [ca_flow(10.0, 0.05), ca_flow(10.0, 0.2)];
        let a_fast = Balia::alpha(0, &flows);
        let a_slow = Balia::alpha(1, &flows);
        assert_eq!(a_fast, 1.0);
        assert!((a_slow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn loss_backoff_is_capped_at_three_quarters() {
        let mut cc = Balia::new();
        let mut flows = [ca_flow(10.0, 0.01), ca_flow(40.0, 1.0)];
        // Path 1 is much slower: α huge, capped at 1.5 → factor 0.75.
        cc.on_loss(1, &mut flows);
        assert!((flows[1].cwnd - 10.0).abs() < 1e-9);
    }

    #[test]
    fn psi_matches_paper_decomposition() {
        // ψ = ((1+α)/2)((4+α)/5) must equal 2/5 + α/2 + α²/10.
        for alpha in [1.0f64, 1.5, 2.0, 4.0, 10.0] {
            let product = ((1.0 + alpha) / 2.0) * ((4.0 + alpha) / 5.0);
            let expanded = 0.4 + alpha / 2.0 + alpha * alpha / 10.0;
            assert!((product - expanded).abs() < 1e-12);
        }
    }
}
