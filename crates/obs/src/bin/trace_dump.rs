//! `trace_dump` — summarize JSONL traces produced by `--trace`/`SWEEP_TRACE`.
//!
//! Usage: `trace_dump <trace.jsonl>...`
//!
//! Prints, per file: event counts by kind, drops by cause and by link, and
//! recovery/RTO episodes by (conn, subflow). Exits non-zero on unreadable
//! input; malformed lines are counted, not fatal.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use obs::summary::summarize;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_dump <trace.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut status = ExitCode::SUCCESS;
    for path in &paths {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("trace_dump: {path}: {e}");
                status = ExitCode::FAILURE;
                continue;
            }
        };
        match summarize(BufReader::new(file)) {
            Ok(summary) => {
                println!("== {path}");
                print!("{}", summary.render());
            }
            Err(e) => {
                eprintln!("trace_dump: {path}: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}
