//! JSONL trace summarizer: the library behind the `trace_dump` binary.
//!
//! Parsing is deliberately minimal — traces are flat one-line JSON objects
//! emitted by [`crate::event::TraceEvent::to_json`] (plus harness-written
//! `raw_line` records), so field extraction by key scan is exact for our own
//! output and gracefully lossy for anything else: unknown `"ev"` values are
//! still counted by kind, and lines without an `"ev"` field are tallied as
//! malformed rather than aborting the summary.

use std::collections::BTreeMap;
use std::io::BufRead;

/// Extracts the string value of `"key":"value"` from a flat JSON line.
pub fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts the numeric value of `"key":123` from a flat JSON line.
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Aggregates over one JSONL trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total well-formed event lines.
    pub events: u64,
    /// Lines that are not flat JSON objects with an `"ev"` field.
    pub malformed_lines: u64,
    /// Event counts by kind name.
    pub by_kind: BTreeMap<String, u64>,
    /// Drop counts by cause name.
    pub drops_by_cause: BTreeMap<String, u64>,
    /// Drop counts by link id.
    pub drops_by_link: BTreeMap<u64, u64>,
    /// Recovery-enter counts by (conn, subflow).
    pub recoveries_by_subflow: BTreeMap<(u64, u64), u64>,
    /// RTO counts by (conn, subflow).
    pub rtos_by_subflow: BTreeMap<(u64, u64), u64>,
    /// Earliest event timestamp seen (ns).
    pub first_t_ns: Option<u64>,
    /// Latest event timestamp seen (ns).
    pub last_t_ns: Option<u64>,
}

impl TraceSummary {
    fn note_time(&mut self, t: u64) {
        self.first_t_ns = Some(self.first_t_ns.map_or(t, |f| f.min(t)));
        self.last_t_ns = Some(self.last_t_ns.map_or(t, |l| l.max(t)));
    }

    /// Folds one line into the summary.
    pub fn add_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let Some(ev) = json_str_field(line, "ev") else {
            self.malformed_lines += 1;
            return;
        };
        self.events += 1;
        *self.by_kind.entry(ev.to_string()).or_insert(0) += 1;
        if let Some(t) = json_u64_field(line, "t_ns") {
            self.note_time(t);
        }
        match ev {
            "drop" => {
                let cause = json_str_field(line, "cause").unwrap_or("unknown").to_string();
                *self.drops_by_cause.entry(cause).or_insert(0) += 1;
                if let Some(link) = json_u64_field(line, "link") {
                    *self.drops_by_link.entry(link).or_insert(0) += 1;
                }
            }
            "recovery_enter" | "rto_fired" => {
                let conn = json_u64_field(line, "conn").unwrap_or(0);
                let sf = json_u64_field(line, "subflow").unwrap_or(0);
                let map = if ev == "recovery_enter" {
                    &mut self.recoveries_by_subflow
                } else {
                    &mut self.rtos_by_subflow
                };
                *map.entry((conn, sf)).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Renders the summary as the human-readable report `trace_dump` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let span_ms = match (self.first_t_ns, self.last_t_ns) {
            (Some(a), Some(b)) => (b - a) as f64 / 1e6,
            _ => 0.0,
        };
        let _ = writeln!(
            out,
            "{} events over {span_ms:.3} ms sim time ({} malformed lines)",
            self.events, self.malformed_lines
        );
        if !self.by_kind.is_empty() {
            let _ = writeln!(out, "events by kind:");
            for (kind, n) in &self.by_kind {
                let _ = writeln!(out, "  {kind:<16} {n}");
            }
        }
        if !self.drops_by_cause.is_empty() {
            let _ = writeln!(out, "drops by cause:");
            for (cause, n) in &self.drops_by_cause {
                let _ = writeln!(out, "  {cause:<16} {n}");
            }
            let _ = writeln!(out, "drops by link:");
            for (link, n) in &self.drops_by_link {
                let _ = writeln!(out, "  link {link:<11} {n}");
            }
        }
        if !self.recoveries_by_subflow.is_empty() || !self.rtos_by_subflow.is_empty() {
            let _ = writeln!(out, "recovery episodes by (conn, subflow):");
            for (&(conn, sf), n) in &self.recoveries_by_subflow {
                let rtos = self.rtos_by_subflow.get(&(conn, sf)).copied().unwrap_or(0);
                let _ = writeln!(out, "  conn {conn} subflow {sf}: {n} recoveries, {rtos} rtos");
            }
            for (&(conn, sf), n) in &self.rtos_by_subflow {
                if !self.recoveries_by_subflow.contains_key(&(conn, sf)) {
                    let _ = writeln!(out, "  conn {conn} subflow {sf}: 0 recoveries, {n} rtos");
                }
            }
        }
        out
    }
}

/// Summarizes a whole JSONL stream.
pub fn summarize(reader: impl BufRead) -> std::io::Result<TraceSummary> {
    let mut summary = TraceSummary::default();
    for line in reader.lines() {
        summary.add_line(&line?);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, RecoveryCause, TraceEvent};

    fn line(ev: &TraceEvent) -> String {
        let mut s = String::new();
        ev.to_json(&mut s);
        s
    }

    #[test]
    fn field_extraction_is_exact_on_our_output() {
        let l =
            line(&TraceEvent::Drop { t_ns: 17, link: 3, pkt_id: 9, cause: DropCause::Blackout });
        assert_eq!(json_str_field(&l, "ev"), Some("drop"));
        assert_eq!(json_str_field(&l, "cause"), Some("blackout"));
        assert_eq!(json_u64_field(&l, "t_ns"), Some(17));
        assert_eq!(json_u64_field(&l, "link"), Some(3));
        assert_eq!(json_u64_field(&l, "missing"), None);
    }

    #[test]
    fn summary_buckets_drops_and_recoveries() {
        let mut s = TraceSummary::default();
        s.add_line(&line(&TraceEvent::Drop {
            t_ns: 1,
            link: 0,
            pkt_id: 0,
            cause: DropCause::QueueOverflow,
        }));
        s.add_line(&line(&TraceEvent::Drop {
            t_ns: 2,
            link: 0,
            pkt_id: 1,
            cause: DropCause::Blackout,
        }));
        s.add_line(&line(&TraceEvent::RecoveryEnter {
            t_ns: 3,
            conn: 7,
            subflow: 1,
            recover: 40,
            cause: RecoveryCause::Rto,
        }));
        s.add_line(&line(&TraceEvent::RtoFired { t_ns: 4, conn: 7, subflow: 1, backoff: 0 }));
        s.add_line("{\"ev\":\"fluid_cell\",\"psi\":0.5}");
        s.add_line("not json at all");
        s.add_line("");
        assert_eq!(s.events, 5);
        assert_eq!(s.malformed_lines, 1);
        assert_eq!(s.drops_by_cause.get("queue_overflow"), Some(&1));
        assert_eq!(s.drops_by_cause.get("blackout"), Some(&1));
        assert_eq!(s.drops_by_link.get(&0), Some(&2));
        assert_eq!(s.recoveries_by_subflow.get(&(7, 1)), Some(&1));
        assert_eq!(s.rtos_by_subflow.get(&(7, 1)), Some(&1));
        assert_eq!(s.by_kind.get("fluid_cell"), Some(&1));
        assert_eq!((s.first_t_ns, s.last_t_ns), (Some(1), Some(4)));
        let text = s.render();
        assert!(text.contains("drops by cause"), "{text}");
        assert!(text.contains("conn 7 subflow 1: 1 recoveries, 1 rtos"), "{text}");
    }
}
