//! The counter registry: cheap always-on aggregates, independent of whether
//! a trace sink is installed.
//!
//! Counters are assembled *after* a run from state the simulator and sender
//! already maintain (link stats, subflow counters), so the hot path pays
//! nothing for them. They ride along in `bench_harness::runner::RunSummary`
//! and in scenario outputs, making every sweep cell auditable without
//! re-running it.

/// Per-link counters: drops split by cause, plus queue high-water.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkCounters {
    /// Link id.
    pub link: u64,
    /// Packets transmitted onto the wire.
    pub tx_pkts: u64,
    /// Drops because the DropTail queue was full.
    pub drops_queue: u64,
    /// Drops consumed by an injected loss process.
    pub drops_fault: u64,
    /// Drops because the link was down (offers while dark + drained queue).
    pub drops_blackout: u64,
    /// ECN marks applied.
    pub ecn_marks: u64,
    /// Maximum queue occupancy observed (packets).
    pub queue_high_water: usize,
}

impl LinkCounters {
    /// Total drops across all causes.
    pub fn drops(&self) -> u64 {
        self.drops_queue + self.drops_fault + self.drops_blackout
    }
}

/// Per-subflow counters mirrored out of the sender's scoreboard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SubflowCounters {
    /// Connection id.
    pub conn: u64,
    /// Path index within the connection.
    pub subflow: usize,
    /// Retransmission-timer firings.
    pub rtos: u64,
    /// Scoreboard-driven (non-timeout) retransmissions.
    pub fast_rexmits: u64,
    /// Retransmissions later proven unnecessary (lower bound).
    pub spurious_rexmits: u64,
    /// Fast-recovery episodes entered.
    pub recoveries: u64,
    /// Times the subflow was declared dead.
    pub deaths: u64,
    /// Times a dead subflow was revived.
    pub revivals: u64,
    /// Revival probes sent while dead.
    pub probes: u64,
}

/// Process-wide counters that have no per-link/per-subflow home.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalCounters {
    /// NaN samples filtered out of summary statistics instead of panicking.
    pub nan_samples: u64,
    /// Flow samples dropped by `HostLoadSeries::add_flow` (past horizon).
    pub dropped_load_samples: u64,
}

/// A full counter snapshot for one run: the FlowSample-style view the sweep
/// runner attaches to each `RunSummary`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterSnapshot {
    /// One entry per link, in link-id order.
    pub links: Vec<LinkCounters>,
    /// One entry per (connection, subflow).
    pub subflows: Vec<SubflowCounters>,
    /// Process-wide counts.
    pub global: GlobalCounters,
}

impl CounterSnapshot {
    /// Total drops across every link and cause.
    pub fn total_drops(&self) -> u64 {
        self.links.iter().map(LinkCounters::drops).sum()
    }

    /// Total fast-recovery episodes across every subflow.
    pub fn total_recoveries(&self) -> u64 {
        self.subflows.iter().map(|s| s.recoveries).sum()
    }

    /// Total RTO firings across every subflow.
    pub fn total_rtos(&self) -> u64 {
        self.subflows.iter().map(|s| s.rtos).sum()
    }

    /// Renders a compact human-readable digest (one line per non-idle link
    /// and subflow) for harness stdout.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for l in self.links.iter().filter(|l| l.drops() > 0 || l.queue_high_water > 0) {
            let _ = writeln!(
                out,
                "link {}: tx={} drops(queue={} fault={} blackout={}) ecn={} q_hwm={}",
                l.link,
                l.tx_pkts,
                l.drops_queue,
                l.drops_fault,
                l.drops_blackout,
                l.ecn_marks,
                l.queue_high_water
            );
        }
        for s in &self.subflows {
            let _ = writeln!(
                out,
                "conn {} subflow {}: rtos={} fast_rexmits={} spurious={} recoveries={} \
                 deaths={} revivals={} probes={}",
                s.conn,
                s.subflow,
                s.rtos,
                s.fast_rexmits,
                s.spurious_rexmits,
                s.recoveries,
                s.deaths,
                s.revivals,
                s.probes
            );
        }
        if self.global.nan_samples > 0 || self.global.dropped_load_samples > 0 {
            let _ = writeln!(
                out,
                "global: nan_samples={} dropped_load_samples={}",
                self.global.nan_samples, self.global.dropped_load_samples
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_links_and_subflows() {
        let snap = CounterSnapshot {
            links: vec![
                LinkCounters { link: 0, drops_queue: 2, drops_blackout: 1, ..Default::default() },
                LinkCounters { link: 1, drops_fault: 4, ..Default::default() },
            ],
            subflows: vec![
                SubflowCounters { rtos: 3, recoveries: 2, ..Default::default() },
                SubflowCounters { subflow: 1, rtos: 1, recoveries: 1, ..Default::default() },
            ],
            global: GlobalCounters::default(),
        };
        assert_eq!(snap.total_drops(), 7);
        assert_eq!(snap.total_recoveries(), 3);
        assert_eq!(snap.total_rtos(), 4);
        let text = snap.render();
        assert!(text.contains("blackout=1"), "{text}");
        assert!(text.contains("recoveries=2"), "{text}");
    }
}
