//! The counter registry: cheap always-on aggregates, independent of whether
//! a trace sink is installed.
//!
//! Counters are assembled *after* a run from state the simulator and sender
//! already maintain (link stats, subflow counters), so the hot path pays
//! nothing for them. They ride along in `bench_harness::runner::RunSummary`
//! and in scenario outputs, making every sweep cell auditable without
//! re-running it.

/// Per-link counters: drops split by cause, plus queue high-water.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkCounters {
    /// Link id.
    pub link: u64,
    /// Packets transmitted onto the wire.
    pub tx_pkts: u64,
    /// Drops because the DropTail queue was full.
    pub drops_queue: u64,
    /// Drops consumed by an injected loss process.
    pub drops_fault: u64,
    /// Drops because the link was down (offers while dark + drained queue).
    pub drops_blackout: u64,
    /// ECN marks applied.
    pub ecn_marks: u64,
    /// Maximum queue occupancy observed (packets).
    pub queue_high_water: usize,
    /// Packets offered to the link (accepted, queued, or dropped).
    pub offered: u64,
    /// Packet copies given extra reorder jitter after transmission.
    pub reordered: u64,
    /// Extra packet copies created by the duplication impairment.
    pub duplicated: u64,
    /// Packets poisoned by the corruption impairment (still delivered).
    pub corrupted: u64,
}

impl LinkCounters {
    /// Total drops across all causes.
    pub fn drops(&self) -> u64 {
        self.drops_queue + self.drops_fault + self.drops_blackout
    }
}

/// Per-subflow counters mirrored out of the sender's scoreboard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SubflowCounters {
    /// Connection id.
    pub conn: u64,
    /// Path index within the connection.
    pub subflow: usize,
    /// Retransmission-timer firings.
    pub rtos: u64,
    /// Scoreboard-driven (non-timeout) retransmissions.
    pub fast_rexmits: u64,
    /// Retransmissions later proven unnecessary (lower bound).
    pub spurious_rexmits: u64,
    /// Fast-recovery episodes entered.
    pub recoveries: u64,
    /// Times the subflow was declared dead.
    pub deaths: u64,
    /// Times a dead subflow was revived.
    pub revivals: u64,
    /// Revival probes sent while dead.
    pub probes: u64,
}

/// Per-connection counters spanning sender and receiver: flow-control stalls
/// and the receive-side discard accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConnCounters {
    /// Connection id.
    pub conn: u64,
    /// Times the sender parked behind the persist timer (advertised window
    /// zero with nothing outstanding).
    pub zero_window_stalls: u64,
    /// Persist-timer window probes sent.
    pub persist_probes: u64,
    /// Corrupted ACKs the sender discarded unparsed.
    pub corrupt_acks: u64,
    /// Corrupted data segments the receiver discarded unparsed.
    pub corrupt_discards: u64,
    /// Data segments refused because the receive buffer was full.
    pub rwnd_dropped: u64,
    /// Data segments refused by the subflow out-of-order buffer bound.
    pub ooo_dropped: u64,
    /// Duplicate data segments the receiver absorbed idempotently.
    pub duplicates: u64,
}

impl ConnCounters {
    /// True when nothing noteworthy happened on this connection.
    pub fn is_quiet(&self) -> bool {
        self.zero_window_stalls == 0
            && self.persist_probes == 0
            && self.corrupt_acks == 0
            && self.corrupt_discards == 0
            && self.rwnd_dropped == 0
            && self.ooo_dropped == 0
            && self.duplicates == 0
    }
}

/// Process-wide counters that have no per-link/per-subflow home.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalCounters {
    /// NaN samples filtered out of summary statistics instead of panicking.
    pub nan_samples: u64,
    /// Flow samples dropped by `HostLoadSeries::add_flow` (past horizon).
    pub dropped_load_samples: u64,
}

/// Distributed-fabric accounting for one supervisor run: how shards moved
/// between workers, and how every injected or organic failure was absorbed.
/// Each field is one arm of the failure matrix drilled by `fabric_chaos` —
/// a loss that is not visible here is a loss the fabric cannot prove it
/// survived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistCounters {
    /// Shards the supervisor dispatched (zero for in-process runs).
    pub shards: u64,
    /// Worker processes spawned (initial dispatch + re-dispatches).
    pub workers_spawned: u64,
    /// Shard leases granted (one per dispatch generation).
    pub leases_granted: u64,
    /// Leases revoked and re-dispatched to a fresh generation.
    pub redispatches: u64,
    /// Workers that exited without a complete, valid response.
    pub worker_crashes: u64,
    /// Leases revoked because heartbeats stopped arriving.
    pub heartbeat_lapses: u64,
    /// Leases revoked because heartbeats continued but no cell completed
    /// before the lease deadline (the livelock arm).
    pub stalls: u64,
    /// Attach-mode dispatches given up because no worker claimed the
    /// request within the claim timeout (e.g. no attached worker hosts
    /// the suite).
    pub claim_timeouts: u64,
    /// Response files rejected for truncation, corruption, or undecodable
    /// payloads.
    pub invalid_responses: u64,
    /// Responses rejected for a protocol-version or grid-digest mismatch.
    pub stale_protocol: u64,
    /// Cell results discarded because an earlier valid result already won
    /// (first-valid-wins).
    pub duplicate_cells: u64,
    /// Responses (or response growth) ignored because their lease generation
    /// had already been revoked.
    pub late_responses: u64,
    /// Cells salvaged from the partial response of a crashed or revoked
    /// worker — completed work that re-dispatch did not repeat.
    pub harvested_cells: u64,
}

impl DistCounters {
    /// True when no distributed machinery ran (pure in-process sweep).
    pub fn is_idle(&self) -> bool {
        *self == DistCounters::default()
    }

    /// Renders the one-line digest the supervisor prints on stderr.
    pub fn render(&self) -> String {
        format!(
            "fabric-dist: shards={} workers_spawned={} leases_granted={} redispatches={} \
             worker_crashes={} heartbeat_lapses={} stalls={} claim_timeouts={} \
             invalid_responses={} stale_protocol={} duplicate_cells={} late_responses={} \
             harvested_cells={}",
            self.shards,
            self.workers_spawned,
            self.leases_granted,
            self.redispatches,
            self.worker_crashes,
            self.heartbeat_lapses,
            self.stalls,
            self.claim_timeouts,
            self.invalid_responses,
            self.stale_protocol,
            self.duplicate_cells,
            self.late_responses,
            self.harvested_cells
        )
    }
}

/// Sweep-fabric accounting for one `bench_harness::fabric` run: how much
/// work the journal saved, how hard the retry layer worked, and what was
/// quarantined. Assembled by the fabric after the pool joins — like every
/// other counter here, the hot path pays nothing for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Cells in the planned grid.
    pub planned: u64,
    /// Cells satisfied by replaying the journal (not executed).
    pub replayed: u64,
    /// Cells executed this run (including ones later quarantined).
    pub executed: u64,
    /// Extra attempts beyond each cell's first (the retry bill).
    pub retries: u64,
    /// Attempts that ended in a caught panic.
    pub panics: u64,
    /// Attempts abandoned at their wall-clock deadline.
    pub deadline_kills: u64,
    /// Cells quarantined after retry exhaustion.
    pub quarantined: u64,
    /// Supervisor/worker accounting; all-zero for in-process runs.
    pub dist: DistCounters,
}

impl FabricCounters {
    /// Renders the one-line digest the fabric prints on stderr (two lines
    /// when the distributed layer ran).
    pub fn render(&self) -> String {
        let base = format!(
            "fabric: planned={} replayed={} executed={} retries={} panics={} \
             deadline_kills={} quarantined={}",
            self.planned,
            self.replayed,
            self.executed,
            self.retries,
            self.panics,
            self.deadline_kills,
            self.quarantined
        );
        if self.dist.is_idle() {
            base
        } else {
            format!("{base}\n{}", self.dist.render())
        }
    }
}

/// Accounting for one hybrid fluid/packet engine run: how flows were split
/// between the regimes, how often state crossed the boundary, and how hard
/// the fluid integrator worked. Assembled per epoch by the engine — the
/// integration hot path pays nothing for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridCounters {
    /// Coupling epochs advanced.
    pub epochs: u64,
    /// Flows currently integrated in the fluid regime.
    pub fluid_flows: u64,
    /// Flows attached to the packet engine over the run.
    pub packet_flows: u64,
    /// Packet flows that outlived the age threshold and were handed off to
    /// the fluid regime.
    pub handoffs: u64,
    /// RK4 steps integrated across all epochs.
    pub fluid_steps: u64,
    /// Times a fluid link price hit the loss-probability cap.
    pub price_cap_hits: u64,
    /// Packet links carrying a nonzero fluid background load after the last
    /// epoch.
    pub background_links: u64,
}

impl HybridCounters {
    /// Renders the one-line digest the hybrid harness prints on stderr.
    pub fn render(&self) -> String {
        format!(
            "hybrid: epochs={} fluid_flows={} packet_flows={} handoffs={} fluid_steps={} \
             price_cap_hits={} background_links={}",
            self.epochs,
            self.fluid_flows,
            self.packet_flows,
            self.handoffs,
            self.fluid_steps,
            self.price_cap_hits,
            self.background_links
        )
    }
}

/// A full counter snapshot for one run: the FlowSample-style view the sweep
/// runner attaches to each `RunSummary`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterSnapshot {
    /// One entry per link, in link-id order.
    pub links: Vec<LinkCounters>,
    /// One entry per (connection, subflow).
    pub subflows: Vec<SubflowCounters>,
    /// One entry per connection.
    pub conns: Vec<ConnCounters>,
    /// Process-wide counts.
    pub global: GlobalCounters,
}

impl CounterSnapshot {
    /// Total drops across every link and cause.
    pub fn total_drops(&self) -> u64 {
        self.links.iter().map(LinkCounters::drops).sum()
    }

    /// Total fast-recovery episodes across every subflow.
    pub fn total_recoveries(&self) -> u64 {
        self.subflows.iter().map(|s| s.recoveries).sum()
    }

    /// Total RTO firings across every subflow.
    pub fn total_rtos(&self) -> u64 {
        self.subflows.iter().map(|s| s.rtos).sum()
    }

    /// Renders a compact human-readable digest (one line per non-idle link
    /// and subflow) for harness stdout.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for l in self.links.iter().filter(|l| {
            l.drops() > 0
                || l.queue_high_water > 0
                || l.reordered > 0
                || l.duplicated > 0
                || l.corrupted > 0
        }) {
            let _ = writeln!(
                out,
                "link {}: tx={} drops(queue={} fault={} blackout={}) ecn={} q_hwm={} \
                 reordered={} duplicated={} corrupted={}",
                l.link,
                l.tx_pkts,
                l.drops_queue,
                l.drops_fault,
                l.drops_blackout,
                l.ecn_marks,
                l.queue_high_water,
                l.reordered,
                l.duplicated,
                l.corrupted
            );
        }
        for s in &self.subflows {
            let _ = writeln!(
                out,
                "conn {} subflow {}: rtos={} fast_rexmits={} spurious={} recoveries={} \
                 deaths={} revivals={} probes={}",
                s.conn,
                s.subflow,
                s.rtos,
                s.fast_rexmits,
                s.spurious_rexmits,
                s.recoveries,
                s.deaths,
                s.revivals,
                s.probes
            );
        }
        for c in self.conns.iter().filter(|c| !c.is_quiet()) {
            let _ = writeln!(
                out,
                "conn {}: zw_stalls={} persist_probes={} corrupt(acks={} data={}) \
                 rwnd_dropped={} ooo_dropped={} duplicates={}",
                c.conn,
                c.zero_window_stalls,
                c.persist_probes,
                c.corrupt_acks,
                c.corrupt_discards,
                c.rwnd_dropped,
                c.ooo_dropped,
                c.duplicates
            );
        }
        if self.global.nan_samples > 0 || self.global.dropped_load_samples > 0 {
            let _ = writeln!(
                out,
                "global: nan_samples={} dropped_load_samples={}",
                self.global.nan_samples, self.global.dropped_load_samples
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_links_and_subflows() {
        let snap = CounterSnapshot {
            links: vec![
                LinkCounters { link: 0, drops_queue: 2, drops_blackout: 1, ..Default::default() },
                LinkCounters { link: 1, drops_fault: 4, ..Default::default() },
            ],
            subflows: vec![
                SubflowCounters { rtos: 3, recoveries: 2, ..Default::default() },
                SubflowCounters { subflow: 1, rtos: 1, recoveries: 1, ..Default::default() },
            ],
            conns: vec![
                ConnCounters { conn: 7, ..Default::default() },
                ConnCounters {
                    conn: 8,
                    zero_window_stalls: 1,
                    persist_probes: 4,
                    ..Default::default()
                },
            ],
            global: GlobalCounters::default(),
        };
        assert_eq!(snap.total_drops(), 7);
        assert_eq!(snap.total_recoveries(), 3);
        assert_eq!(snap.total_rtos(), 4);
        let text = snap.render();
        assert!(text.contains("blackout=1"), "{text}");
        assert!(text.contains("recoveries=2"), "{text}");
        // Quiet connections stay out of the digest; noisy ones show up.
        assert!(!text.contains("conn 7:"), "{text}");
        assert!(text.contains("conn 8: zw_stalls=1 persist_probes=4"), "{text}");
    }
}
