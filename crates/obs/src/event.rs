//! The typed trace-event taxonomy.
//!
//! Every event is a small all-`Copy` value: no strings, no heap. Emitting an
//! event with no sink installed must not allocate (pinned by
//! `netsim/tests/trace_noalloc.rs`), so the taxonomy carries numeric ids and
//! the `&'static str` names live in the enum discriminants, not the events.
//!
//! Timestamps are simulation nanoseconds (`SimTime::as_nanos`), not wall
//! clock, so a trace is as deterministic as the run that produced it.

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// The DropTail queue was full.
    QueueOverflow,
    /// An injected random/burst loss process consumed the packet.
    FaultLoss,
    /// The link was down (offer while dark, or queue drained on transition).
    Blackout,
}

impl DropCause {
    /// Stable lowercase name used in JSONL output and counter keys.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::QueueOverflow => "queue_overflow",
            DropCause::FaultLoss => "fault_loss",
            DropCause::Blackout => "blackout",
        }
    }
}

/// What pushed a subflow into fast recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryCause {
    /// SACK scoreboard declared losses (dupack path).
    FastRetransmit,
    /// Retransmission timer fired.
    Rto,
    /// A dead subflow was revived and restarts conservatively.
    Revival,
}

impl RecoveryCause {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryCause::FastRetransmit => "fast_retransmit",
            RecoveryCause::Rto => "rto",
            RecoveryCause::Revival => "revival",
        }
    }
}

/// Which adversarial impairment touched a packet in flight. Unlike a drop,
/// the packet is still delivered — late, twice, or poisoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImpairKind {
    /// Extra per-packet delay jitter pushed this packet behind later ones.
    Reorder,
    /// A second copy of the packet was scheduled for delivery.
    Duplicate,
    /// The packet was poisoned; the endpoint must discard it on receipt.
    Corrupt,
}

impl ImpairKind {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            ImpairKind::Reorder => "reorder",
            ImpairKind::Duplicate => "duplicate",
            ImpairKind::Corrupt => "corrupt",
        }
    }
}

/// Why a transport endpoint refused a delivered packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscardCause {
    /// The packet arrived poisoned (checksum-failure semantics): no state
    /// change, no ACK.
    Corrupt,
    /// The receive buffer had no room for new connection-level data.
    WindowFull,
    /// The subflow out-of-order reassembly buffer was at its bound.
    OooLimit,
}

impl DiscardCause {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            DiscardCause::Corrupt => "corrupt",
            DiscardCause::WindowFull => "window_full",
            DiscardCause::OooLimit => "ooo_limit",
        }
    }
}

/// Which fault primitive a `Fault` event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Loss model replaced (iid / Gilbert-Elliott / off).
    SetLoss,
    /// Link bandwidth changed.
    SetBandwidth,
    /// Propagation delay changed.
    SetPropagation,
    /// Link blacked out.
    LinkDown,
    /// Link restored.
    LinkUp,
    /// Reorder (extra-delay jitter) model replaced.
    SetReorder,
    /// Duplication probability changed.
    SetDuplicate,
    /// Corruption probability changed.
    SetCorrupt,
}

impl FaultKind {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SetLoss => "set_loss",
            FaultKind::SetBandwidth => "set_bandwidth",
            FaultKind::SetPropagation => "set_propagation",
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::SetReorder => "set_reorder",
            FaultKind::SetDuplicate => "set_duplicate",
            FaultKind::SetCorrupt => "set_corrupt",
        }
    }
}

/// One structured trace event. `t_ns` is simulation time in nanoseconds;
/// `link` is a link id; `conn`/`subflow` identify an MPTCP connection and the
/// path index within it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A packet entered a link queue (or went straight to the wire).
    Enqueue { t_ns: u64, link: u64, pkt_id: u64, qlen: usize },
    /// A packet was dropped, with the cause.
    Drop { t_ns: u64, link: u64, pkt_id: u64, cause: DropCause },
    /// A scoreboard-driven (non-timeout) retransmission was sent.
    FastRexmit { t_ns: u64, conn: u64, subflow: usize, seq: u64 },
    /// The retransmission timer fired; `backoff` is the exponent applied.
    RtoFired { t_ns: u64, conn: u64, subflow: usize, backoff: u32 },
    /// An ACK arrived for a segment that had already been delivered but was
    /// retransmitted anyway — a spurious retransmission (lower bound).
    SpuriousRexmit { t_ns: u64, conn: u64, subflow: usize, seq: u64 },
    /// The subflow entered fast recovery; `recover` is the exit threshold.
    RecoveryEnter { t_ns: u64, conn: u64, subflow: usize, recover: u64, cause: RecoveryCause },
    /// The subflow left fast recovery at cumulative ack `cum_ack`.
    RecoveryExit { t_ns: u64, conn: u64, subflow: usize, cum_ack: u64 },
    /// The congestion window changed (emitted only on actual change).
    CwndChange { t_ns: u64, conn: u64, subflow: usize, cwnd_pkts: f64 },
    /// The subflow was declared dead after repeated RTO backoffs.
    SubflowDead { t_ns: u64, conn: u64, subflow: usize },
    /// A dead subflow came back (probe was acknowledged).
    SubflowRevived { t_ns: u64, conn: u64, subflow: usize },
    /// The scheduler picked this subflow for new data `data_seq`.
    SchedulerPick { t_ns: u64, conn: u64, subflow: usize, data_seq: u64 },
    /// A fault primitive was applied to a link.
    Fault { t_ns: u64, link: u64, kind: FaultKind },
    /// An impairment touched a packet that is still delivered (late, doubled,
    /// or poisoned).
    Impair { t_ns: u64, link: u64, pkt_id: u64, kind: ImpairKind },
    /// A transport endpoint discarded a delivered packet, with the cause.
    SegDiscard { t_ns: u64, conn: u64, pkt_id: u64, cause: DiscardCause },
    /// The sender ran out of send credit: advertised window is zero with
    /// nothing outstanding, so it parks behind the persist timer.
    ZeroWindowStall { t_ns: u64, conn: u64 },
    /// A persist-timer window probe was sent; `backoff` is the exponent.
    ZeroWindowProbe { t_ns: u64, conn: u64, subflow: usize, backoff: u32 },
    /// An ACK reopened the window and the sender resumed.
    ZeroWindowResume { t_ns: u64, conn: u64, rwnd_pkts: u64 },
}

impl TraceEvent {
    /// Stable event-kind name: the value of the `"ev"` field in JSONL.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::FastRexmit { .. } => "fast_rexmit",
            TraceEvent::RtoFired { .. } => "rto_fired",
            TraceEvent::SpuriousRexmit { .. } => "spurious_rexmit",
            TraceEvent::RecoveryEnter { .. } => "recovery_enter",
            TraceEvent::RecoveryExit { .. } => "recovery_exit",
            TraceEvent::CwndChange { .. } => "cwnd_change",
            TraceEvent::SubflowDead { .. } => "subflow_dead",
            TraceEvent::SubflowRevived { .. } => "subflow_revived",
            TraceEvent::SchedulerPick { .. } => "scheduler_pick",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Impair { .. } => "impair",
            TraceEvent::SegDiscard { .. } => "seg_discard",
            TraceEvent::ZeroWindowStall { .. } => "zero_window_stall",
            TraceEvent::ZeroWindowProbe { .. } => "zero_window_probe",
            TraceEvent::ZeroWindowResume { .. } => "zero_window_resume",
        }
    }

    /// The event's simulation timestamp in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match *self {
            TraceEvent::Enqueue { t_ns, .. }
            | TraceEvent::Drop { t_ns, .. }
            | TraceEvent::FastRexmit { t_ns, .. }
            | TraceEvent::RtoFired { t_ns, .. }
            | TraceEvent::SpuriousRexmit { t_ns, .. }
            | TraceEvent::RecoveryEnter { t_ns, .. }
            | TraceEvent::RecoveryExit { t_ns, .. }
            | TraceEvent::CwndChange { t_ns, .. }
            | TraceEvent::SubflowDead { t_ns, .. }
            | TraceEvent::SubflowRevived { t_ns, .. }
            | TraceEvent::SchedulerPick { t_ns, .. }
            | TraceEvent::Fault { t_ns, .. }
            | TraceEvent::Impair { t_ns, .. }
            | TraceEvent::SegDiscard { t_ns, .. }
            | TraceEvent::ZeroWindowStall { t_ns, .. }
            | TraceEvent::ZeroWindowProbe { t_ns, .. }
            | TraceEvent::ZeroWindowResume { t_ns, .. } => t_ns,
        }
    }

    /// Appends the event as one flat JSON object (no trailing newline) to
    /// `out`. Hand-rolled: field names and values never need escaping, so a
    /// serializer dependency would buy nothing.
    pub fn to_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let ev = self.kind_name();
        match *self {
            TraceEvent::Enqueue { t_ns, link, pkt_id, qlen } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"link\":{link},\"pkt\":{pkt_id},\"qlen\":{qlen}}}"
                );
            }
            TraceEvent::Drop { t_ns, link, pkt_id, cause } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"link\":{link},\"pkt\":{pkt_id},\"cause\":\"{}\"}}",
                    cause.name()
                );
            }
            TraceEvent::FastRexmit { t_ns, conn, subflow, seq } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"seq\":{seq}}}"
                );
            }
            TraceEvent::RtoFired { t_ns, conn, subflow, backoff } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"backoff\":{backoff}}}"
                );
            }
            TraceEvent::SpuriousRexmit { t_ns, conn, subflow, seq } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"seq\":{seq}}}"
                );
            }
            TraceEvent::RecoveryEnter { t_ns, conn, subflow, recover, cause } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"recover\":{recover},\"cause\":\"{}\"}}",
                    cause.name()
                );
            }
            TraceEvent::RecoveryExit { t_ns, conn, subflow, cum_ack } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"cum_ack\":{cum_ack}}}"
                );
            }
            TraceEvent::CwndChange { t_ns, conn, subflow, cwnd_pkts } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"cwnd_pkts\":{cwnd_pkts}}}"
                );
            }
            TraceEvent::SubflowDead { t_ns, conn, subflow }
            | TraceEvent::SubflowRevived { t_ns, conn, subflow } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow}}}"
                );
            }
            TraceEvent::SchedulerPick { t_ns, conn, subflow, data_seq } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"data_seq\":{data_seq}}}"
                );
            }
            TraceEvent::Fault { t_ns, link, kind } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"link\":{link},\"kind\":\"{}\"}}",
                    kind.name()
                );
            }
            TraceEvent::Impair { t_ns, link, pkt_id, kind } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"link\":{link},\"pkt\":{pkt_id},\"kind\":\"{}\"}}",
                    kind.name()
                );
            }
            TraceEvent::SegDiscard { t_ns, conn, pkt_id, cause } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"pkt\":{pkt_id},\"cause\":\"{}\"}}",
                    cause.name()
                );
            }
            TraceEvent::ZeroWindowStall { t_ns, conn } => {
                let _ = write!(out, "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn}}}");
            }
            TraceEvent::ZeroWindowProbe { t_ns, conn, subflow, backoff } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"subflow\":{subflow},\"backoff\":{backoff}}}"
                );
            }
            TraceEvent::ZeroWindowResume { t_ns, conn, rwnd_pkts } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"{ev}\",\"t_ns\":{t_ns},\"conn\":{conn},\"rwnd_pkts\":{rwnd_pkts}}}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_carries_the_cause() {
        let mut s = String::new();
        TraceEvent::Drop { t_ns: 5, link: 2, pkt_id: 7, cause: DropCause::Blackout }
            .to_json(&mut s);
        assert_eq!(s, "{\"ev\":\"drop\",\"t_ns\":5,\"link\":2,\"pkt\":7,\"cause\":\"blackout\"}");
    }

    #[test]
    fn every_kind_serializes_with_its_name_and_time() {
        let evs = [
            TraceEvent::Enqueue { t_ns: 1, link: 0, pkt_id: 0, qlen: 3 },
            TraceEvent::Drop { t_ns: 2, link: 0, pkt_id: 1, cause: DropCause::QueueOverflow },
            TraceEvent::FastRexmit { t_ns: 3, conn: 9, subflow: 0, seq: 4 },
            TraceEvent::RtoFired { t_ns: 4, conn: 9, subflow: 1, backoff: 2 },
            TraceEvent::SpuriousRexmit { t_ns: 5, conn: 9, subflow: 0, seq: 4 },
            TraceEvent::RecoveryEnter {
                t_ns: 6,
                conn: 9,
                subflow: 0,
                recover: 40,
                cause: RecoveryCause::Rto,
            },
            TraceEvent::RecoveryExit { t_ns: 7, conn: 9, subflow: 0, cum_ack: 40 },
            TraceEvent::CwndChange { t_ns: 8, conn: 9, subflow: 0, cwnd_pkts: 2.5 },
            TraceEvent::SubflowDead { t_ns: 9, conn: 9, subflow: 1 },
            TraceEvent::SubflowRevived { t_ns: 10, conn: 9, subflow: 1 },
            TraceEvent::SchedulerPick { t_ns: 11, conn: 9, subflow: 0, data_seq: 12 },
            TraceEvent::Fault { t_ns: 12, link: 0, kind: FaultKind::LinkDown },
            TraceEvent::Impair { t_ns: 13, link: 0, pkt_id: 2, kind: ImpairKind::Reorder },
            TraceEvent::SegDiscard { t_ns: 14, conn: 9, pkt_id: 2, cause: DiscardCause::Corrupt },
            TraceEvent::ZeroWindowStall { t_ns: 15, conn: 9 },
            TraceEvent::ZeroWindowProbe { t_ns: 16, conn: 9, subflow: 0, backoff: 1 },
            TraceEvent::ZeroWindowResume { t_ns: 17, conn: 9, rwnd_pkts: 4 },
        ];
        for ev in evs {
            let mut s = String::new();
            ev.to_json(&mut s);
            assert!(s.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind_name())), "{s}");
            assert!(s.contains(&format!("\"t_ns\":{}", ev.t_ns())), "{s}");
            assert!(s.ends_with('}'), "{s}");
        }
    }
}
