//! The distributed-fabric event taxonomy: the supervisor's audit log.
//!
//! Unlike [`crate::event::TraceEvent`] — which lives on the simulation hot
//! path and must be all-`Copy`, no-alloc — these events narrate the
//! *supervisor's* decisions: leases granted, workers lost, responses
//! rejected, shards re-dispatched. They are emitted a handful of times per
//! shard, far from any hot path, so they carry owned strings and render
//! straight to JSONL (`spool/events.jsonl`). Together with
//! [`crate::counters::DistCounters`] they make every absorbed failure
//! visible: the counters say *how many*, the events say *which and why*.
//!
//! Timestamps are supervisor wall-clock milliseconds since the run started
//! (`t_ms`). The distributed layer is explicitly outside the deterministic
//! domain — only *whether/when* work re-runs depends on the clock, never
//! any cell's output — so relative wall time is the honest axis here.

use std::fmt::Write as _;

/// One supervisor decision, rendered to the `events.jsonl` audit log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistEvent {
    /// A shard lease was granted to a worker (initial dispatch or
    /// re-dispatch generation).
    LeaseGranted {
        /// Shard index.
        shard: usize,
        /// Dispatch generation (0 for the first grant).
        gen: u64,
        /// Worker identity.
        worker: String,
        /// Cells assigned under this lease.
        cells: usize,
    },
    /// A complete, valid response was accepted for a lease.
    ResponseAccepted {
        /// Shard index.
        shard: usize,
        /// Dispatch generation.
        gen: u64,
        /// Cells completed in the response.
        done: usize,
        /// Cells the worker reported as failed (quarantine candidates).
        failed: usize,
    },
    /// A lease was revoked; the reason names the failure-matrix arm.
    LeaseRevoked {
        /// Shard index.
        shard: usize,
        /// Dispatch generation.
        gen: u64,
        /// `"crash"`, `"heartbeat_lapse"`, `"stall"`, `"invalid_response"`,
        /// or `"stale_protocol"`.
        reason: &'static str,
        /// Free-form detail (exit status, parse error, …).
        detail: String,
    },
    /// A cell result was salvaged from a revoked lease's partial response.
    CellHarvested {
        /// Shard index.
        shard: usize,
        /// Dispatch generation the cell was harvested from.
        gen: u64,
        /// The cell's content-addressed id (16 hex digits).
        cell: String,
    },
    /// A cell result was discarded because a valid result already won.
    DuplicateCell {
        /// Shard index of the losing response.
        shard: usize,
        /// Dispatch generation of the losing response.
        gen: u64,
        /// The cell's content-addressed id (16 hex digits).
        cell: String,
    },
    /// Response activity arrived for a lease that had already been revoked;
    /// it was ignored.
    LateResponse {
        /// Shard index.
        shard: usize,
        /// The revoked generation that kept writing.
        gen: u64,
    },
}

impl DistEvent {
    /// The stable event-kind tag used in JSONL output.
    pub fn kind(&self) -> &'static str {
        match self {
            DistEvent::LeaseGranted { .. } => "lease_granted",
            DistEvent::ResponseAccepted { .. } => "response_accepted",
            DistEvent::LeaseRevoked { .. } => "lease_revoked",
            DistEvent::CellHarvested { .. } => "cell_harvested",
            DistEvent::DuplicateCell { .. } => "duplicate_cell",
            DistEvent::LateResponse { .. } => "late_response",
        }
    }

    /// Appends this event as one JSONL line (no trailing newline).
    /// `t_ms` is supervisor wall-clock milliseconds since the run began.
    pub fn to_json(&self, t_ms: u64, out: &mut String) {
        let _ = write!(out, "{{\"dist_ev\":\"{}\",\"t_ms\":{t_ms}", self.kind());
        match self {
            DistEvent::LeaseGranted { shard, gen, worker, cells } => {
                let _ = write!(
                    out,
                    ",\"shard\":{shard},\"gen\":{gen},\"worker\":\"{}\",\"cells\":{cells}",
                    escape(worker)
                );
            }
            DistEvent::ResponseAccepted { shard, gen, done, failed } => {
                let _ = write!(
                    out,
                    ",\"shard\":{shard},\"gen\":{gen},\"done\":{done},\"failed\":{failed}"
                );
            }
            DistEvent::LeaseRevoked { shard, gen, reason, detail } => {
                let _ = write!(
                    out,
                    ",\"shard\":{shard},\"gen\":{gen},\"reason\":\"{reason}\",\"detail\":\"{}\"",
                    escape(detail)
                );
            }
            DistEvent::CellHarvested { shard, gen, cell }
            | DistEvent::DuplicateCell { shard, gen, cell } => {
                let _ = write!(out, ",\"shard\":{shard},\"gen\":{gen},\"cell\":\"{cell}\"");
            }
            DistEvent::LateResponse { shard, gen } => {
                let _ = write!(out, ",\"shard\":{shard},\"gen\":{gen}");
            }
        }
        out.push('}');
    }
}

/// Minimal JSON string escaping for the audit log (quotes, backslashes,
/// control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{json_str_field, json_u64_field};

    #[test]
    fn events_render_parseable_jsonl() {
        let ev = DistEvent::LeaseRevoked {
            shard: 2,
            gen: 1,
            reason: "stall",
            detail: "no progress for 3.0s, heartbeat seq 41 \"live\"".into(),
        };
        let mut out = String::new();
        ev.to_json(1234, &mut out);
        assert_eq!(json_str_field(&out, "dist_ev"), Some("lease_revoked"));
        assert_eq!(json_u64_field(&out, "t_ms"), Some(1234));
        assert_eq!(json_u64_field(&out, "shard"), Some(2));
        assert_eq!(json_str_field(&out, "reason"), Some("stall"));
        assert!(out.contains("\\\"live\\\""), "{out}");
        assert!(!out.contains('\n'));

        let ev = DistEvent::LeaseGranted { shard: 0, gen: 0, worker: "w0".into(), cells: 4 };
        let mut out = String::new();
        ev.to_json(0, &mut out);
        assert_eq!(json_str_field(&out, "worker"), Some("w0"));
        assert_eq!(json_u64_field(&out, "cells"), Some(4));
    }

    #[test]
    fn kinds_are_distinct_and_stable() {
        let kinds = [
            DistEvent::LeaseGranted { shard: 0, gen: 0, worker: String::new(), cells: 0 }.kind(),
            DistEvent::ResponseAccepted { shard: 0, gen: 0, done: 0, failed: 0 }.kind(),
            DistEvent::LeaseRevoked { shard: 0, gen: 0, reason: "crash", detail: String::new() }
                .kind(),
            DistEvent::CellHarvested { shard: 0, gen: 0, cell: String::new() }.kind(),
            DistEvent::DuplicateCell { shard: 0, gen: 0, cell: String::new() }.kind(),
            DistEvent::LateResponse { shard: 0, gen: 0 }.kind(),
        ];
        let unique: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
