//! Trace sinks: where emitted events go.
//!
//! The simulator holds an `Option<Box<dyn TraceSink>>`; `None` is the no-op
//! default and the only path the hot loop pays for (a branch on a niche —
//! no allocation, pinned by `netsim/tests/trace_noalloc.rs`).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A consumer of trace events. `Send` because simulators (and the sinks they
/// own) move across sweep-runner worker threads.
pub trait TraceSink: Send {
    /// Records one event. Events arrive in simulation order.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output; called when the sink is detached.
    fn flush(&mut self) {}
}

/// Discards every event. Exists for call sites that need *a* sink value;
/// prefer simply not installing one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Collects every event in memory. Handy in tests.
impl TraceSink for Vec<TraceEvent> {
    fn record(&mut self, ev: &TraceEvent) {
        self.push(*ev);
    }
}

/// Shared handle: lets a test keep a reader side while the simulator owns
/// the writer side.
impl<S: TraceSink> TraceSink for Arc<Mutex<S>> {
    fn record(&mut self, ev: &TraceEvent) {
        // A poisoned lock means some other thread is already unwinding; the
        // sink holds plain data, and recording through it anyway preserves
        // the trace tail that explains that very panic.
        self.lock().unwrap_or_else(std::sync::PoisonError::into_inner).record(ev);
    }
    fn flush(&mut self) {
        self.lock().unwrap_or_else(std::sync::PoisonError::into_inner).flush();
    }
}

/// Keeps the most recent `cap` events in a ring; older events fall off the
/// front. Useful for "what led up to the failure" captures without unbounded
/// memory.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    /// Total events ever recorded (including evicted ones).
    pub total: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `cap` events (`cap` clamped to ≥ 1).
    pub fn new(cap: usize) -> RingSink {
        let cap = cap.max(1);
        RingSink { cap, buf: VecDeque::with_capacity(cap), total: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
        self.total += 1;
    }
}

/// Fans every event out to two sinks. Lets a harness keep a full JSONL trace
/// on disk *and* an in-memory ring tail for failure artifacts in one run.
pub struct TeeSink {
    a: Box<dyn TraceSink>,
    b: Box<dyn TraceSink>,
}

impl TeeSink {
    /// Combines two sinks; both see every event, `a` first.
    pub fn new(a: Box<dyn TraceSink>, b: Box<dyn TraceSink>) -> TeeSink {
        TeeSink { a, b }
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.a.record(ev);
        self.b.record(ev);
    }
    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

/// Keeps only events passing a predicate, in an unbounded Vec. Lets tests
/// capture the low-rate control-plane events (recovery, death, revival) of a
/// long run without retaining the packet firehose.
pub struct FilterSink<F: FnMut(&TraceEvent) -> bool + Send> {
    keep: F,
    /// The retained events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl<F: FnMut(&TraceEvent) -> bool + Send> FilterSink<F> {
    /// Creates a sink retaining events for which `keep` returns true.
    pub fn new(keep: F) -> FilterSink<F> {
        FilterSink { keep, events: Vec::new() }
    }
}

impl<F: FnMut(&TraceEvent) -> bool + Send> TraceSink for FilterSink<F> {
    fn record(&mut self, ev: &TraceEvent) {
        if (self.keep)(ev) {
            self.events.push(*ev);
        }
    }
}

/// Writes one flat JSON object per line to any `Write` target, reusing a
/// single line buffer.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    line: String,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out, line: String::with_capacity(160) }
    }

    /// Writes a caller-formatted raw JSONL line (used by harnesses that log
    /// cell-level records alongside simulator events).
    pub fn raw_line(&mut self, json: &str) {
        let _ = writeln!(self.out, "{json}");
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        self.line.clear();
        ev.to_json(&mut self.line);
        self.line.push('\n');
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Maps an arbitrary cell label to a filesystem-safe file stem.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(
            |c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' },
        )
        .collect()
}

/// The conventional per-cell trace path: `<dir>/<sanitized label>.jsonl`.
pub fn trace_path(dir: &Path, label: &str) -> PathBuf {
    dir.join(format!("{}.jsonl", sanitize_label(label)))
}

/// Creates `<dir>/<sanitized label>.jsonl` (and `dir` itself if missing),
/// returning a boxed sink ready to hand to a simulator. Errors are reported
/// on stderr and yield `None` — tracing is diagnostics, never a reason to
/// fail a run.
pub fn jsonl_sink_in(dir: &Path, label: &str) -> Option<Box<dyn TraceSink>> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
        return None;
    }
    let path = trace_path(dir, label);
    match JsonlSink::create(&path) {
        Ok(sink) => Some(Box::new(sink)),
        Err(e) => {
            eprintln!("warning: cannot create trace file {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropCause;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::Enqueue { t_ns: t, link: 0, pkt_id: t, qlen: 0 }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut ring = RingSink::new(3);
        for t in 0..10 {
            ring.record(&ev(t));
        }
        assert_eq!(ring.total, 10);
        assert_eq!(ring.len(), 3);
        let times: Vec<u64> = ring.events().map(TraceEvent::t_ns).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn tee_sink_feeds_both_sides() {
        let left: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let right = Arc::new(Mutex::new(RingSink::new(2)));
        let mut tee = TeeSink::new(Box::new(left.clone()), Box::new(right.clone()));
        for t in 0..5 {
            tee.record(&ev(t));
        }
        assert_eq!(left.lock().unwrap().len(), 5);
        assert_eq!(right.lock().unwrap().total, 5);
        assert_eq!(right.lock().unwrap().len(), 2);
    }

    #[test]
    fn filter_sink_keeps_only_matches() {
        let mut sink = FilterSink::new(|e: &TraceEvent| matches!(e, TraceEvent::Drop { .. }));
        sink.record(&ev(1));
        sink.record(&TraceEvent::Drop { t_ns: 2, link: 0, pkt_id: 1, cause: DropCause::Blackout });
        sink.record(&ev(3));
        assert_eq!(sink.events.len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&ev(2));
        sink.raw_line("{\"ev\":\"custom\"}");
        sink.flush();
        let text = String::from_utf8(sink.out.clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with("{\"ev\":\"")));
    }

    #[test]
    fn labels_sanitize_to_safe_stems() {
        assert_eq!(sanitize_label("slope=0.5 c/2"), "slope_0.5_c_2");
        assert_eq!(trace_path(Path::new("/tmp/t"), "a b").file_name().unwrap(), "a_b.jsonl");
    }
}
