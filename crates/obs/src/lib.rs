//! # obs — structured trace/counter observability layer
//!
//! The paper's energy claims rest on *why* traffic shifts between paths:
//! which drops, retransmissions, and recovery episodes drove each
//! algorithm's window evolution. This crate makes every simulation run
//! auditable without re-running it under a debugger:
//!
//! - [`event::TraceEvent`] — a typed, all-`Copy` event taxonomy (packet
//!   enqueue/drop with cause, fast retransmit vs RTO, recovery enter/exit,
//!   cwnd change, subflow death/revival, scheduler decision, fault
//!   transition);
//! - [`sink::TraceSink`] — the consumer trait, with JSONL
//!   ([`sink::JsonlSink`]), ring-buffer ([`sink::RingSink`]), filtering and
//!   in-memory implementations; the no-op default is simply *no sink
//!   installed*, which costs one branch and zero allocations on the hot path;
//! - [`counters`] — always-on per-link / per-subflow / global counter
//!   snapshots assembled after a run, carried through
//!   `bench_harness::runner::RunSummary`;
//! - [`summary`] — the JSONL summarizer behind the `trace_dump` binary.
//!
//! ## Determinism contract
//!
//! Sinks **observe**; they never consume simulator RNG, schedule events, or
//! otherwise feed back into the run. `tests/sweep_determinism.rs` pins that
//! a traced run and an untraced run of the same cell are byte-identical in
//! simulation results, and `netsim/tests/trace_noalloc.rs` pins that the
//! disabled path allocates nothing.

pub mod counters;
pub mod dist_event;
pub mod event;
pub mod sink;
pub mod summary;

pub use counters::{
    ConnCounters, CounterSnapshot, DistCounters, FabricCounters, GlobalCounters, HybridCounters,
    LinkCounters, SubflowCounters,
};
pub use dist_event::DistEvent;
pub use event::{DiscardCause, DropCause, FaultKind, ImpairKind, RecoveryCause, TraceEvent};
pub use sink::{
    jsonl_sink_in, sanitize_label, trace_path, FilterSink, JsonlSink, NullSink, RingSink, TeeSink,
    TraceSink,
};
pub use summary::{json_str_field, json_u64_field, summarize, TraceSummary};
