//! Fluid-level validation of the DTS-Φ price (Equation (9)): the φ term must
//! lower the equilibrium rate relative to plain DTS, proportionally to κ,
//! and the trajectory API must expose the transient.

use mptcp_energy::{
    disjoint_paths_net, CcModel, DtsConfig, DtsPhiConfig, FluidFlow, FluidLink, FluidNet, FluidPath,
};

fn phi_cfg(kappa: f64) -> DtsPhiConfig {
    DtsPhiConfig { kappa, rho: 1.0, queue_target_s: 0.005, ..DtsPhiConfig::default() }
}

fn equilibrium_total(model: CcModel) -> f64 {
    let net = disjoint_paths_net(model, &[2000.0, 2000.0], &[0.05, 0.05]);
    let x = net.equilibrium(vec![vec![10.0, 10.0]], 5e-4, 1e-8, 2_000_000);
    x[0].iter().sum()
}

#[test]
fn phi_price_lowers_equilibrium_rate_monotonically_in_kappa() {
    let dts = equilibrium_total(CcModel::dts(DtsConfig::default()));
    let weak = equilibrium_total(CcModel::dts_phi(phi_cfg(1e-6)));
    let strong = equilibrium_total(CcModel::dts_phi(phi_cfg(1e-4)));
    assert!(weak <= dts * 1.001, "weak phi {weak} vs dts {dts}");
    assert!(strong < weak, "stronger kappa must price rate down: {strong} vs {weak}");
    assert!(strong > 0.2 * dts, "the price must not collapse the flow");
}

#[test]
fn trajectory_records_transient_and_converges() {
    let net =
        disjoint_paths_net(CcModel::dts(DtsConfig::default()), &[1000.0, 1000.0], &[0.05, 0.05]);
    let traj = net.trajectory(vec![vec![5.0, 5.0]], 1e-3, 200_000, 10_000);
    assert!(traj.len() > 10);
    // Time stamps increase; rates move from the start point.
    for pair in traj.windows(2) {
        assert!(pair[0].0 < pair[1].0);
    }
    let first: f64 = traj[0].1[0].iter().sum();
    let last: f64 = traj.last().unwrap().1[0].iter().sum();
    assert!(last > first, "flow should grow from a cold start");
    // The tail of the trajectory is near-stationary.
    let prev: f64 = traj[traj.len() - 2].1[0].iter().sum();
    assert!((last - prev).abs() / last < 0.05, "tail not settled: {prev} -> {last}");
}

#[test]
fn shared_bottleneck_with_price_yields_to_unpriced_flow() {
    // Two DTS flows share one link; one carries the energy price. At
    // equilibrium the priced flow takes the smaller share — the φ tradeoff
    // the paper's Fig. 17 measures.
    let mut net = FluidNet::new();
    let l = net.add_link(FluidLink::new(2000.0));
    net.add_flow(FluidFlow {
        model: CcModel::dts(DtsConfig::default()),
        paths: vec![FluidPath::new(vec![l], 0.05)],
    });
    net.add_flow(FluidFlow {
        model: CcModel::dts_phi(phi_cfg(5e-5)),
        paths: vec![FluidPath::new(vec![l], 0.05)],
    });
    let x = net.equilibrium(vec![vec![100.0], vec![100.0]], 5e-4, 1e-8, 2_000_000);
    assert!(x[1][0] < x[0][0], "priced flow {} should yield to unpriced {}", x[1][0], x[0][0]);
    assert!(x[1][0] > 0.05 * x[0][0], "but not starve");
}
