//! Cross-validation of the Equation-(3) fluid solver against the
//! packet-level stack — the evidence behind the hybrid engine's handoff.
//!
//! Each case builds the *same* scenario twice: once as a `netsim` +
//! `transport` packet simulation measured in steady state (slow start and
//! convergence excluded by a warmup window), and once as a [`FluidNet`]
//! whose links are calibrated with [`FluidLink::calibrated`] at the
//! topology's propagation RTT and a 90 % target utilization — exactly the
//! mapping [`mptcp_energy::hybrid::HybridEngine`] applies.
//!
//! # Tolerances (documented, deliberately honest)
//!
//! The fluid model is a mean-field approximation: it has no slow start, no
//! discrete loss bursts, no queueing delay (paths run at propagation RTT),
//! and its price curve is a calibrated power law rather than DropTail. The
//! two regimes are expected to agree on *operating points*, not packet
//! counts:
//!
//! * **Aggregate rate**: within `AGG_TOL = 25 %` relative. DropTail with a
//!   queue well above the BDP holds loss-based CC near 100 % utilization;
//!   the calibration targets 90 %, so ~10 % systematic gap plus stochastic
//!   spread is inherent.
//! * **Multipath aggregate on disjoint paths**: within `MP_AGG_TOL = 45 %`.
//!   Two known systematic factors stack here: the utilization gap above,
//!   and the Equation-(3) coupling `(Σ_k x_k)²` in the increase term, which
//!   for one flow alone on `n` symmetric disjoint paths lowers each path's
//!   fixed point by `n^(2/(B+2))` (≈ 26 % for n = 2, B = 4) relative to a
//!   single Reno — while DropTail, whose loss is zero below capacity, still
//!   fills both pipes. Measured gap ≈ 40 %; at datacenter scale, where many
//!   flows share each link, the aggregate is price-determined and this
//!   solo-flow artifact washes out.
//! * **Bottleneck share** (multipath vs single-path TCP on one bottleneck):
//!   within `SHARE_TOL = 0.15` absolute. OLIA's design point — a two-path
//!   flow through one bottleneck takes one TCP's share — is an exact fluid
//!   fixed point but only an average for the packet stack.
//! * **DTS aggregate**: within `DTS_AGG_TOL = 35 %` relative. With ψ > 1 the
//!   uncapped fluid fixed point sits slightly *above* link capacity (the
//!   power-law price admits y > c at p < 1), while the wire cannot exceed
//!   c; the comparison clamps the fluid prediction at capacity and keeps a
//!   wider band.

use congestion::AlgorithmKind;
use mptcp_energy::scenarios::CcChoice;
use mptcp_energy::{CcModel, FluidFlow, FluidLink, FluidNet, FluidPath, Psi};
use netsim::{LinkConfig, SimDuration, SimTime, Simulator};
use transport::{attach_flow, FlowConfig, FlowHandle, PathSpec};

/// Relative tolerance on aggregate steady-state rate, loss-based models.
const AGG_TOL: f64 = 0.25;
/// Relative tolerance for a solo multipath flow on disjoint paths (see
/// module docs for the two stacked systematic factors).
const MP_AGG_TOL: f64 = 0.45;
/// Absolute tolerance on the multipath share of a shared bottleneck.
const SHARE_TOL: f64 = 0.15;
/// Relative tolerance on the DTS aggregate (see module docs).
const DTS_AGG_TOL: f64 = 0.35;

const BW_BPS: u64 = 10_000_000;
const MSS: u32 = 1500;
const PROP_MS: u64 = 10;
const QUEUE_PKTS: usize = 64;
/// The calibration the hybrid engine uses for packet links.
const TARGET_UTIL: f64 = 0.9;

fn cap_pps() -> f64 {
    BW_BPS as f64 / (8.0 * f64::from(MSS))
}

/// Propagation + serialization RTT of one duplex link pair.
fn path_rtt() -> f64 {
    let prop = 2.0 * (PROP_MS as f64) / 1e3;
    let ser_data = f64::from(MSS) * 8.0 / BW_BPS as f64;
    let ser_ack = 40.0 * 8.0 / BW_BPS as f64;
    prop + ser_data + ser_ack
}

fn duplex_sim(seed: u64, pairs: usize) -> Simulator {
    let mut sim = Simulator::new(seed);
    for _ in 0..2 * pairs {
        sim.add_link(
            LinkConfig::new(BW_BPS, SimDuration::from_millis(PROP_MS)).queue_limit(QUEUE_PKTS),
        );
    }
    sim
}

/// Runs the packet simulation to `warmup_s`, then measures per-subflow
/// steady-state rates (packets/second) over `measure_s`.
fn packet_steady_pps(
    sim: &mut Simulator,
    flows: &[FlowHandle],
    warmup_s: f64,
    measure_s: f64,
) -> Vec<Vec<f64>> {
    sim.run_until(SimTime::from_secs_f64(warmup_s));
    let before: Vec<Vec<u64>> = flows
        .iter()
        .map(|f| {
            let snd = f.sender_ref(sim);
            (0..snd.subflow_count()).map(|r| snd.subflow(r).acked_pkts).collect()
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(warmup_s + measure_s));
    flows
        .iter()
        .zip(&before)
        .map(|(f, b)| {
            let snd = f.sender_ref(sim);
            (0..snd.subflow_count())
                .map(|r| (snd.subflow(r).acked_pkts - b[r]) as f64 / measure_s)
                .collect()
        })
        .collect()
}

/// Solves the fluid equilibrium, asserting convergence.
fn fluid_equilibrium(net: &FluidNet, x0: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let report = net.solve_equilibrium(x0, 2e-4, 1e-9, 2_000_000);
    assert!(report.converged, "fluid solve did not converge: residual {}", report.residual);
    report.x
}

fn rel_err(measured: f64, predicted: f64) -> f64 {
    (measured - predicted).abs() / predicted
}

#[test]
fn reno_single_path_operating_points_agree() {
    // Packet: one Reno flow on one duplex pair.
    let mut sim = duplex_sim(11, 1);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0),
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![0], vec![1])],
        SimDuration::ZERO,
    );
    let pps = packet_steady_pps(&mut sim, &[flow], 10.0, 15.0);
    let packet_rate = pps[0][0];

    // Fluid: the same link under the hybrid engine's calibration.
    let mut net = FluidNet::new();
    let l = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    net.add_flow(FluidFlow {
        model: CcModel::loss_based(Psi::Olia),
        paths: vec![FluidPath::new(vec![l], path_rtt())],
    });
    let x = fluid_equilibrium(&net, vec![vec![10.0]]);
    let fluid_rate = x[0][0];

    assert!(
        rel_err(packet_rate, fluid_rate) < AGG_TOL,
        "packet {packet_rate:.1} pps vs fluid {fluid_rate:.1} pps"
    );
}

#[test]
fn olia_two_disjoint_paths_aggregate_and_split_agree() {
    // Packet: one OLIA flow over two disjoint duplex pairs.
    let mut sim = duplex_sim(12, 2);
    let paths = [PathSpec::new(vec![0], vec![1]), PathSpec::new(vec![2], vec![3])];
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0),
        AlgorithmKind::Olia.build(2),
        &paths,
        SimDuration::ZERO,
    );
    let pps = packet_steady_pps(&mut sim, &[flow], 10.0, 15.0);
    let packet_total: f64 = pps[0].iter().sum();

    // Fluid mirror.
    let mut net = FluidNet::new();
    let l0 = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    let l1 = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    net.add_flow(FluidFlow {
        model: CcModel::loss_based(Psi::Olia),
        paths: vec![FluidPath::new(vec![l0], path_rtt()), FluidPath::new(vec![l1], path_rtt())],
    });
    let x = fluid_equilibrium(&net, vec![vec![10.0, 10.0]]);
    let fluid_total: f64 = x[0].iter().sum();

    assert!(
        rel_err(packet_total, fluid_total) < MP_AGG_TOL,
        "packet {packet_total:.1} pps vs fluid {fluid_total:.1} pps"
    );
    // The gap has a known sign: DropTail fills the pipes, the coupled
    // fluid fixed point sits below them.
    assert!(packet_total > fluid_total);
    // Symmetric paths: both regimes split close to 50/50.
    let packet_share = pps[0][0] / packet_total;
    let fluid_share = x[0][0] / fluid_total;
    assert!(
        (packet_share - fluid_share).abs() < SHARE_TOL,
        "packet split {packet_share:.3} vs fluid split {fluid_share:.3}"
    );
}

#[test]
fn olia_shared_bottleneck_takes_one_tcp_share_in_both_regimes() {
    // Packet: a two-subflow OLIA flow and a single-path Reno flow share one
    // duplex pair.
    let mut sim = duplex_sim(13, 1);
    let mp = attach_flow(
        &mut sim,
        FlowConfig::new(0),
        AlgorithmKind::Olia.build(2),
        &[PathSpec::new(vec![0], vec![1]), PathSpec::new(vec![0], vec![1])],
        SimDuration::ZERO,
    );
    let tcp = attach_flow(
        &mut sim,
        FlowConfig::new(1),
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![0], vec![1])],
        SimDuration::ZERO,
    );
    let pps = packet_steady_pps(&mut sim, &[mp, tcp], 10.0, 15.0);
    let mp_rate: f64 = pps[0].iter().sum();
    let tcp_rate: f64 = pps[1].iter().sum();
    let packet_share = mp_rate / (mp_rate + tcp_rate);

    // Fluid mirror: same link, one 2-path OLIA flow + one 1-path flow.
    let mut net = FluidNet::new();
    let l = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    net.add_flow(FluidFlow {
        model: CcModel::loss_based(Psi::Olia),
        paths: vec![FluidPath::new(vec![l], path_rtt()), FluidPath::new(vec![l], path_rtt())],
    });
    net.add_flow(FluidFlow {
        model: CcModel::loss_based(Psi::Olia),
        paths: vec![FluidPath::new(vec![l], path_rtt())],
    });
    let x = fluid_equilibrium(&net, vec![vec![10.0, 10.0], vec![10.0]]);
    let fluid_mp: f64 = x[0].iter().sum();
    let fluid_share = fluid_mp / (fluid_mp + x[1][0]);

    // OLIA's fixed point gives the multipath flow exactly one TCP share
    // (0.5); the packet stack should sit near it.
    assert!(
        (fluid_share - 0.5).abs() < 0.02,
        "fluid shared-bottleneck share {fluid_share:.3} != 0.5"
    );
    assert!(
        (packet_share - fluid_share).abs() < SHARE_TOL,
        "packet share {packet_share:.3} vs fluid share {fluid_share:.3}"
    );
}

#[test]
fn dts_two_disjoint_paths_aggregate_agrees_with_capped_fluid_prediction() {
    // Packet: one DTS flow over two disjoint duplex pairs.
    let mut sim = duplex_sim(14, 2);
    let paths = [PathSpec::new(vec![0], vec![1]), PathSpec::new(vec![2], vec![3])];
    let cc = CcChoice::dts();
    let flow = attach_flow(&mut sim, FlowConfig::new(0), cc.build(2), &paths, SimDuration::ZERO);
    let pps = packet_steady_pps(&mut sim, &[flow], 10.0, 15.0);
    let packet_total: f64 = pps[0].iter().sum();

    // Fluid mirror via the same mapping the hybrid engine uses.
    let model = mptcp_energy::hybrid::fluid_model_of(&cc).expect("dts has a fluid form");
    let mut net = FluidNet::new();
    let l0 = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    let l1 = net.add_link(FluidLink::calibrated(cap_pps(), path_rtt(), TARGET_UTIL));
    net.add_flow(FluidFlow {
        model,
        paths: vec![FluidPath::new(vec![l0], path_rtt()), FluidPath::new(vec![l1], path_rtt())],
    });
    let x = fluid_equilibrium(&net, vec![vec![10.0, 10.0]]);
    // ψ > 1 pushes the uncapped fixed point slightly above capacity; the
    // wire cannot follow, so clamp the prediction per path (module docs).
    let fluid_total: f64 = x[0].iter().map(|&xr| xr.min(cap_pps())).sum();

    assert!(
        rel_err(packet_total, fluid_total) < DTS_AGG_TOL,
        "packet {packet_total:.1} pps vs capped fluid {fluid_total:.1} pps"
    );
}
