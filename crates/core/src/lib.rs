//! # mptcp-energy — energy-efficient congestion control for Multipath TCP
//!
//! A full reproduction of Zhao, Liu & Wang, *On Energy-Efficient Congestion
//! Control for Multipath TCP* (IEEE ICDCS 2017), built over from-scratch
//! Rust substrates (packet-level simulator, MPTCP stack, power models,
//! datacenter topologies — see the `netsim`, `transport`, `congestion`,
//! `energy-model`, `topology` and `workload` crates).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`model`] — the general congestion-control model of Equation (3) and
//!   the §IV per-algorithm decompositions of the traffic-shifting parameter
//!   `ψ_r`;
//! * [`conditions`] — numeric checkers for Condition 1 (TCP-friendliness)
//!   and the Pareto-efficiency test behind Condition 2;
//! * [`dts`] — **DTS**, Delay-based Traffic Shifting: the Equation-(5)
//!   sigmoid window-increase factor, in both exact and kernel fixed-point
//!   (Algorithm 1) forms;
//! * [`dts_phi`] — **DTS-Φ**, the §V-C extension with the
//!   energy-proportional compensative price of Equations (6)–(9);
//! * [`fluid`] — an RK4 fluid solver for networks of Equation-(3) flows;
//! * [`scenarios`] — the paper's evaluation scenarios (Figs. 6–17) as
//!   deterministic, seedable experiment runners;
//! * [`stats`] — box-whisker summaries matching the paper's reporting.
//!
//! # Examples
//!
//! Compare LIA and DTS on the paper's bursty two-path scenario:
//!
//! ```no_run
//! use mptcp_energy::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};
//! use congestion::AlgorithmKind;
//!
//! let opts = BurstyOptions { duration_s: 30.0, ..BurstyOptions::default() };
//! let lia = run_two_path_bursty(&CcChoice::Base(AlgorithmKind::Lia), &opts);
//! let dts = run_two_path_bursty(&CcChoice::dts(), &opts);
//! println!("LIA: {:.1} J, DTS: {:.1} J", lia.energy.joules, dts.energy.joules);
//! ```

pub mod conditions;
pub mod dts;
pub mod dts_phi;
pub mod fluid;
pub mod hybrid;
pub mod model;
pub mod path_select;
pub mod report;
pub mod scenarios;
pub mod stats;

pub use conditions::{check_condition1, friendliness_ratio, pareto_efficiency};
pub use dts::{epsilon_exact, epsilon_fixed_point, Dts, DtsConfig};
pub use dts_phi::{DtsPhi, DtsPhiConfig};
pub use fluid::{
    disjoint_paths_net, EquilibriumInfo, EquilibriumReport, FluidFlow, FluidLink, FluidNet,
    FluidPath, FluidSolver,
};
pub use hybrid::{classify, fluid_model_of, HybridConfig, HybridEngine, Regime};
pub use model::{CcModel, FlowView, Phi, Psi};
pub use path_select::{run_wireless_with_policy, select_paths, PathPolicy};
pub use scenarios::CcChoice;
pub use stats::{mean, std_dev, FiveNumber};
