//! Numeric checkers for the paper's §V design conditions.
//!
//! * **Condition 1 (TCP-friendliness):** at equilibrium, on the best path
//!   `h = argmax_k x_k*`, the parameters satisfy `ψ_h ≤ 1`, `β_h = ½`,
//!   `φ_h = 0` — then the MPTCP aggregate `√(2ψ_h/λ_h)/RTT_h` never exceeds
//!   a single TCP's `√(2/λ_h)/RTT_h` on that path.
//! * **Condition 2 (Pareto optimality):** the increase rate matches the
//!   gradient of a concave utility at the welfare maximizer. We check it
//!   operationally: an algorithm's equilibrium aggregate should not be
//!   improvable without hurting others — measured as the gap to the OLIA
//!   (`ψ = 1`, provably Pareto-optimal) reference on the same network.

use crate::fluid::{disjoint_paths_net, FluidNet};
use crate::model::{CcModel, FlowView, Psi};

/// A violation of Condition 1, describing which clause failed.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition1Violation {
    /// `ψ_h > 1` on the best path.
    PsiTooLarge {
        /// Best-path index.
        path: usize,
        /// Observed ψ value.
        psi: f64,
    },
    /// `β ≠ ½`.
    BetaNotHalf {
        /// Observed β.
        beta: f64,
    },
    /// `φ_h ≠ 0` on the best path.
    PhiNonZero {
        /// Best-path index.
        path: usize,
        /// Observed φ value.
        phi: f64,
    },
}

impl std::fmt::Display for Condition1Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Condition1Violation::PsiTooLarge { path, psi } => {
                write!(f, "psi on best path {path} is {psi} > 1")
            }
            Condition1Violation::BetaNotHalf { beta } => write!(f, "beta is {beta}, not 1/2"),
            Condition1Violation::PhiNonZero { path, phi } => {
                write!(f, "phi on best path {path} is {phi}, not 0")
            }
        }
    }
}

/// Checks the paper's Condition 1 at an equilibrium state.
pub fn check_condition1(
    model: &CcModel,
    view: &FlowView<'_>,
    tol: f64,
) -> Result<(), Condition1Violation> {
    // total_cmp gives NaN a fixed position in the order instead of panicking
    // on incomparable rates; a flow with zero paths has no best path, so the
    // check vacuously passes.
    let Some(h) = (0..view.n()).max_by(|&a, &b| view.x[a].total_cmp(&view.x[b])) else {
        return Ok(());
    };
    if (model.beta - 0.5).abs() > tol {
        return Err(Condition1Violation::BetaNotHalf { beta: model.beta });
    }
    let psi = model.psi.eval(h, view);
    if psi > 1.0 + tol {
        return Err(Condition1Violation::PsiTooLarge { path: h, psi });
    }
    let phi = model.phi.eval(h, view);
    if phi.abs() > tol {
        return Err(Condition1Violation::PhiNonZero { path: h, phi });
    }
    Ok(())
}

/// The fluid-equilibrium aggregate throughput of `model` over disjoint equal
/// paths, normalized by the OLIA (Pareto-optimal) reference on the same
/// network. Values near 1 mean the algorithm extracts the Pareto-efficient
/// allocation; materially below 1 means it leaves throughput on the table
/// (the inefficiency the paper's Fig. 6 converts into wasted energy).
pub fn pareto_efficiency(model: CcModel, caps: &[f64], rtts: &[f64]) -> f64 {
    let run = |m: CcModel| -> f64 {
        let net: FluidNet = disjoint_paths_net(m, caps, rtts);
        let x0 = vec![vec![10.0; caps.len()]];
        let x = net.equilibrium(x0, 1e-3, 1e-8, 2_000_000);
        x[0].iter().sum()
    };
    let reference = run(CcModel::loss_based(Psi::Olia));
    run(model) / reference
}

/// Aggregate-vs-best-path-TCP friendliness ratio at fluid equilibrium:
/// ≤ 1 means the multipath flow takes no more than one TCP on its best path
/// *would get alone* on that path — the operational form of Condition 1
/// (single shared-bottleneck case).
pub fn friendliness_ratio(model: CcModel, cap: f64, rtt: f64, n_paths: usize) -> f64 {
    // n paths crossing ONE shared bottleneck.
    let mut net = FluidNet::new();
    let l = net.add_link(crate::fluid::FluidLink::new(cap));
    net.add_flow(crate::fluid::FluidFlow {
        model,
        paths: (0..n_paths).map(|_| crate::fluid::FluidPath::new(vec![l], rtt)).collect(),
    });
    let multi: f64 =
        net.equilibrium(vec![vec![10.0; n_paths]], 1e-3, 1e-8, 2_000_000)[0].iter().sum();
    let single_net = disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[cap], &[rtt]);
    let single = single_net.equilibrium(vec![vec![10.0]], 1e-3, 1e-8, 2_000_000)[0][0];
    multi / single
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dts::DtsConfig;
    use crate::dts_phi::DtsPhiConfig;

    fn sym_view<'a>(x: &'a [f64], rtt: &'a [f64]) -> FlowView<'a> {
        FlowView { x, rtt, base_rtt: rtt }
    }

    #[test]
    fn baselines_satisfy_condition1_at_symmetric_equilibrium() {
        let x = [100.0, 100.0];
        let rtt = [0.1, 0.1];
        let v = sym_view(&x, &rtt);
        for psi in [Psi::Coupled, Psi::Lia, Psi::Olia, Psi::Balia, Psi::EcMtcp] {
            let m = CcModel::loss_based(psi);
            assert!(check_condition1(&m, &v, 1e-6).is_ok(), "{}", psi.name());
        }
    }

    #[test]
    fn ewtcp_violates_condition1() {
        // EWTCP's ψ = (Σx)²/(x²√n) = 4/√2 > 1 on equal paths: it is NOT
        // TCP-friendly in the coupled sense (known result the paper uses).
        let x = [100.0, 100.0];
        let rtt = [0.1, 0.1];
        let m = CcModel::loss_based(Psi::Ewtcp);
        let err = check_condition1(&m, &sym_view(&x, &rtt), 1e-6).unwrap_err();
        assert!(matches!(err, Condition1Violation::PsiTooLarge { .. }));
    }

    #[test]
    fn dts_at_expected_ratio_satisfies_condition1() {
        // At the design point baseRTT/RTT = ½, ε = 1, so ψ = c·ε = 1.
        let x = [100.0, 90.0];
        let rtt = [0.1, 0.1];
        let base = [0.05, 0.05];
        let v = FlowView { x: &x, rtt: &rtt, base_rtt: &base };
        let m = CcModel::dts(DtsConfig::default());
        assert!(check_condition1(&m, &v, 1e-6).is_ok());
    }

    #[test]
    fn dts_phi_fails_phi_clause_by_design() {
        // The §V-C extension deliberately trades Condition 1's φ = 0 for the
        // energy price — the paper's own throughput/energy tradeoff. At the
        // design-point ratio (baseRTT/RTT = ½) ψ = 1, so the φ clause is
        // what fails.
        let x = [100.0, 90.0];
        let rtt = [0.1, 0.1];
        let base = [0.05, 0.05];
        let v = FlowView { x: &x, rtt: &rtt, base_rtt: &base };
        let m = CcModel::dts_phi(DtsPhiConfig::default());
        let err = check_condition1(&m, &v, 1e-9).unwrap_err();
        assert!(matches!(err, Condition1Violation::PhiNonZero { .. }));
    }

    #[test]
    fn olia_pareto_efficiency_is_one_by_definition() {
        let eff = pareto_efficiency(CcModel::loss_based(Psi::Olia), &[500.0, 500.0], &[0.1, 0.1]);
        assert!((eff - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lia_leaves_throughput_on_the_table() {
        // The paper (after Khalili et al.): LIA is not Pareto-optimal; OLIA
        // extracts at least as much.
        let eff = pareto_efficiency(CcModel::loss_based(Psi::Lia), &[500.0, 500.0], &[0.1, 0.1]);
        assert!(eff <= 1.0 + 1e-6, "LIA efficiency {eff}");
    }

    #[test]
    fn friendliness_ratio_bounded_for_friendly_algorithms() {
        for psi in [Psi::Lia, Psi::Olia, Psi::Balia] {
            let ratio = friendliness_ratio(CcModel::loss_based(psi), 1000.0, 0.1, 2);
            assert!(
                ratio < 1.15,
                "{} aggregate {ratio} should not exceed one TCP by much",
                psi.name()
            );
        }
    }
}
