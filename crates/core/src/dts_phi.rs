//! DTS-Φ — DTS extended with the energy-proportional compensative price of
//! the paper's §V-C (Equations (6)–(9)).
//!
//! The paper adds a data-center cost utility
//! `U_ep = Σ_{l'} (Q_{l'} − Q)⁺ + ρ·Σ_{l'} y_{l'}` (queue-excess service
//! penalty plus per-unit-traffic energy price ρ) to the resource-allocation
//! problem and derives the compensative parameter
//! `φ_r = κ·x_r²·∂U_ep/∂x_r`, giving the fluid model of Equation (9):
//!
//! ```text
//! dx_r/dt = c·ε_r·x_r²/(RTT_r²(Σx)²) − ½·p_r·x_r² − κ·x_r²·∂U_ep/∂x_r
//! ```
//!
//! Discretizing the φ term per ACK (`dw/dt = dx/dt·RTT`, one ACK per
//! `1/x_r` seconds) yields a gentle multiplicative drain
//! `Δw_r = −κ·w_r·(ρ + η·(d̂_r − D)⁺/D)`, where `d̂_r = RTT_r − baseRTT_r`
//! is the path's queueing delay and `D` the delay target. The paper's
//! `(Q_l − Q)⁺` terms are switch-queue sizes; end-to-end, the queueing
//! *delay* of the path is the observable proxy that does not dilute with
//! the number of flows sharing the bottleneck — no switch support needed,
//! which is what makes the design deployable on the hierarchical topologies
//! of §VI-C.

use crate::dts::{Dts, DtsConfig};
use congestion::{MultipathCongestionControl, SubflowCc};

/// Tunable parameters of DTS-Φ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DtsPhiConfig {
    /// The underlying DTS parameters.
    pub dts: DtsConfig,
    /// Price weight `κ_s` of Equation (7).
    pub kappa: f64,
    /// Per-unit-traffic energy price `ρ` of Equation (6).
    pub rho: f64,
    /// Expected (target) queueing delay — the end-to-end proxy for
    /// Equation (6)'s expected queue size `Q` — in seconds.
    pub queue_target_s: f64,
    /// Weight of the queue-excess term.
    pub eta: f64,
}

impl Default for DtsPhiConfig {
    fn default() -> Self {
        DtsPhiConfig {
            dts: DtsConfig::default(),
            kappa: 1e-4,
            rho: 0.2,
            queue_target_s: 0.005,
            eta: 1.0,
        }
    }
}

/// DTS with the energy-proportional compensative price.
#[derive(Clone, Debug, Default)]
pub struct DtsPhi {
    dts: Dts,
    cfg: DtsPhiConfig,
}

impl DtsPhi {
    /// DTS-Φ with default parameters.
    pub fn new() -> Self {
        DtsPhi::default()
    }

    /// DTS-Φ with custom parameters.
    pub fn with_config(cfg: DtsPhiConfig) -> Self {
        DtsPhi { dts: Dts::with_config(cfg.dts), cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DtsPhiConfig {
        &self.cfg
    }

    /// Estimated queueing delay of the subflow's path, in seconds:
    /// `d̂ = RTT − baseRTT`.
    pub fn queue_delay_estimate(f: &SubflowCc) -> f64 {
        if f.last_rtt > 0.0 && f.base_rtt.is_finite() {
            (f.last_rtt - f.base_rtt).max(0.0)
        } else {
            0.0
        }
    }

    /// The marginal energy price `∂U_ep/∂x_r` estimate.
    pub fn price_gradient(&self, f: &SubflowCc) -> f64 {
        let excess = (Self::queue_delay_estimate(f) - self.cfg.queue_target_s).max(0.0);
        self.cfg.rho + self.cfg.eta * excess / self.cfg.queue_target_s
    }
}

impl MultipathCongestionControl for DtsPhi {
    fn name(&self) -> &'static str {
        "dts-phi"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, ecn: bool) {
        self.dts.on_ack(r, flows, newly_acked, ecn);
        // The compensative drain applies in congestion avoidance only.
        let f = &mut flows[r];
        if f.cwnd >= f.ssthresh {
            let grad = {
                let fr = &*f;
                let excess = (DtsPhi::queue_delay_estimate(fr) - self.cfg.queue_target_s).max(0.0);
                self.cfg.rho + self.cfg.eta * excess / self.cfg.queue_target_s
            };
            f.cwnd -= self.cfg.kappa * f.cwnd * grad * newly_acked as f64;
            f.clamp_cwnd();
        }
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        self.dts.on_loss(r, flows);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(DtsPhi::with_config(self.cfg))
    }
}

#[cfg(test)]
// Tests assert values produced by exact f64 arithmetic on small literals
// (window steps, order statistics of integer samples), so strict float
// comparison is the intended precision.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn ca_flow(cwnd: f64, rtt: f64, base: f64) -> SubflowCc {
        let mut f = SubflowCc::new();
        f.cwnd = cwnd;
        f.ssthresh = 1.0;
        f.observe_rtt(base);
        f.observe_rtt(rtt);
        f
    }

    #[test]
    fn queue_delay_estimate_from_rtt_inflation() {
        let f = ca_flow(40.0, 0.2, 0.1);
        let d = DtsPhi::queue_delay_estimate(&f);
        assert!((d - 0.1).abs() < 1e-12, "d {d}");
    }

    #[test]
    fn gradient_is_rho_when_queue_below_target() {
        let phi = DtsPhi::new();
        let f = ca_flow(10.0, 0.1, 0.1); // no inflation
        assert!((phi.price_gradient(&f) - phi.config().rho).abs() < 1e-12);
    }

    #[test]
    fn gradient_grows_with_queue_excess() {
        let phi = DtsPhi::new();
        let calm = ca_flow(10.0, 0.1, 0.1);
        let queued = ca_flow(80.0, 0.3, 0.1);
        assert!(phi.price_gradient(&queued) > phi.price_gradient(&calm) * 2.0);
    }

    #[test]
    fn phi_drains_relative_to_plain_dts() {
        let mut dts = Dts::new();
        let mut phi = DtsPhi::new();
        let mut a = [ca_flow(50.0, 0.25, 0.1)];
        let mut b = [ca_flow(50.0, 0.25, 0.1)];
        for _ in 0..100 {
            dts.on_ack(0, &mut a, 1, false);
            phi.on_ack(0, &mut b, 1, false);
        }
        assert!(b[0].cwnd < a[0].cwnd, "phi {} should stay below dts {}", b[0].cwnd, a[0].cwnd);
    }

    #[test]
    fn phi_is_gentle_on_uncongested_paths() {
        let mut dts = Dts::new();
        let mut phi = DtsPhi::new();
        let mut a = [ca_flow(20.0, 0.1, 0.1)];
        let mut b = [ca_flow(20.0, 0.1, 0.1)];
        for _ in 0..50 {
            dts.on_ack(0, &mut a, 1, false);
            phi.on_ack(0, &mut b, 1, false);
        }
        // Only the tiny ρ drain separates them.
        let gap = (a[0].cwnd - b[0].cwnd) / a[0].cwnd;
        assert!(gap < 0.05, "gap {gap}");
        assert!(b[0].cwnd > 20.0, "still grows");
    }

    #[test]
    fn loss_halves_like_dts() {
        let mut phi = DtsPhi::new();
        let mut flows = [ca_flow(30.0, 0.1, 0.1)];
        phi.on_loss(0, &mut flows);
        assert_eq!(flows[0].cwnd, 15.0);
    }
}
