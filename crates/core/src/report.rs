//! Plot-ready CSV export of experiment results.
//!
//! Every figure harness prints human-readable tables; these helpers emit the
//! same data as CSV for external plotting (gnuplot, matplotlib, R).

use crate::scenarios::{FleetResult, FlowResult};

fn esc(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// CSV of single-flow results: one row per result.
pub fn flow_results_csv(results: &[FlowResult]) -> String {
    let mut out =
        String::from("algorithm,goodput_bps,energy_j,mean_power_w,finish_s,rexmits,timeouts\n");
    for r in results {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{},{},{}\n",
            esc(&r.label),
            r.goodput_bps,
            r.energy.joules,
            r.energy.mean_power_w,
            r.finish_s.map_or(String::new(), |t| format!("{t:.3}")),
            r.rexmits,
            r.timeouts
        ));
    }
    out
}

/// CSV of fleet results: one row per result.
pub fn fleet_results_csv(results: &[FleetResult]) -> String {
    let mut out = String::from(
        "algorithm,total_energy_j,aggregate_goodput_bps,joules_per_gbit,mean_finish_s,completion_rate\n",
    );
    for r in results {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{},{:.4}\n",
            esc(&r.label),
            r.total_energy_j,
            r.aggregate_goodput_bps,
            r.joules_per_gbit,
            r.mean_finish_s.map_or(String::new(), |t| format!("{t:.3}")),
            r.completion_rate
        ));
    }
    out
}

/// CSV time series of one flow: `t_s, throughput_bps, power_w`.
pub fn trace_csv(result: &FlowResult) -> String {
    let mut out = String::from("t_s,throughput_bps,power_w\n");
    let n = result.tput_trace.len().min(result.energy.trace.len());
    for i in 0..n {
        out.push_str(&format!(
            "{:.4},{:.3},{:.4}\n",
            result.tput_trace[i].0, result.tput_trace[i].1, result.energy.trace[i].1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy_model::EnergyReport;

    fn result(label: &str) -> FlowResult {
        FlowResult {
            label: label.to_owned(),
            goodput_bps: 1e6,
            energy: EnergyReport {
                joules: 12.5,
                duration_s: 1.0,
                mean_power_w: 12.5,
                trace: vec![(0.0, 12.0), (0.5, 13.0)],
            },
            finish_s: Some(1.0),
            rexmits: 3,
            timeouts: 0,
            tput_trace: vec![(0.0, 9e5), (0.5, 1.1e6)],
        }
    }

    #[test]
    fn flow_csv_has_header_and_rows() {
        let csv = flow_results_csv(&[result("lia"), result("dts")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("algorithm,"));
        assert!(lines[1].starts_with("lia,"));
        assert!(lines[2].starts_with("dts,"));
    }

    #[test]
    fn csv_escapes_awkward_labels() {
        let mut r = result("weird,\"label\"");
        r.finish_s = None;
        let csv = flow_results_csv(&[r]);
        assert!(csv.contains("\"weird,\"\"label\"\"\""));
        // Missing finish time renders as an empty field.
        assert!(csv.lines().nth(1).unwrap().contains(",,"));
    }

    #[test]
    fn trace_csv_zips_series() {
        let csv = trace_csv(&result("x"));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.0000,900000.000,12.0000"));
    }
}
