//! RK4 fluid-model solver for networks of Equation-(3) flows sharing links.
//!
//! Links carry smooth congestion prices `p_l(y) = p0·(y/c_l)^B` (the standard
//! fluid approximation of loss probability); a flow's per-path signal is
//! `λ_r = Σ_{l ∈ r} p_l(y_l)`. The solver integrates every flow's Equation
//! (3) simultaneously, which lets the analytical layer (a) verify each
//! algorithm's published fixed point, (b) check TCP-friendliness and
//! Pareto-efficiency numerically, and (c) cross-validate the packet-level
//! simulator's equilibria.

use crate::model::{CcModel, FlowView};

/// Minimum rate floor (packets/second): flows never go extinct, matching the
/// one-packet window floor of the packet level.
pub const X_MIN: f64 = 1.0;

/// A fluid link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidLink {
    /// Capacity in packets/second.
    pub capacity: f64,
    /// Price scale `p0`.
    pub p0: f64,
    /// Price exponent `B` (sharpness of congestion onset).
    pub exponent: f64,
}

impl FluidLink {
    /// A link with the standard price curve (`p0 = 1e-2`, `B = 4`).
    pub fn new(capacity: f64) -> Self {
        FluidLink { capacity, p0: 1e-2, exponent: 4.0 }
    }

    /// The congestion price at aggregate rate `y`.
    pub fn price(&self, y: f64) -> f64 {
        if y <= 0.0 {
            0.0
        } else {
            self.p0 * (y / self.capacity).powf(self.exponent)
        }
    }
}

/// One path of a fluid flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidPath {
    /// Indices into the net's link table.
    pub links: Vec<usize>,
    /// Propagation RTT of the path, seconds.
    pub rtt: f64,
    /// Base (minimum) RTT exposed to delay-based ψ, seconds.
    pub base_rtt: f64,
}

impl FluidPath {
    /// A path over `links` with equal RTT and base RTT.
    pub fn new(links: Vec<usize>, rtt: f64) -> Self {
        FluidPath { links, rtt, base_rtt: rtt }
    }
}

/// A multipath fluid flow governed by a [`CcModel`].
#[derive(Clone, Debug, PartialEq)]
pub struct FluidFlow {
    /// The Equation-(3) parameterization.
    pub model: CcModel,
    /// The flow's paths.
    pub paths: Vec<FluidPath>,
}

/// A network of fluid links and flows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FluidNet {
    /// Links.
    pub links: Vec<FluidLink>,
    /// Flows.
    pub flows: Vec<FluidFlow>,
}

impl FluidNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        FluidNet::default()
    }

    /// Adds a link, returning its index.
    pub fn add_link(&mut self, link: FluidLink) -> usize {
        self.links.push(link);
        self.links.len() - 1
    }

    /// Adds a flow, returning its index.
    pub fn add_flow(&mut self, flow: FluidFlow) -> usize {
        self.flows.push(flow);
        self.flows.len() - 1
    }

    /// Aggregate rate per link under state `x` (`x[flow][path]`).
    pub fn link_rates(&self, x: &[Vec<f64>]) -> Vec<f64> {
        let mut y = vec![0.0; self.links.len()];
        for (f, flow) in self.flows.iter().enumerate() {
            for (p, path) in flow.paths.iter().enumerate() {
                for &l in &path.links {
                    y[l] += x[f][p];
                }
            }
        }
        y
    }

    /// `dx/dt` for every flow-path under state `x`.
    pub fn derivatives(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let y = self.link_rates(x);
        let prices: Vec<f64> = self.links.iter().zip(&y).map(|(l, &yl)| l.price(yl)).collect();
        self.flows
            .iter()
            .enumerate()
            .map(|(f, flow)| {
                let rtts: Vec<f64> = flow.paths.iter().map(|p| p.rtt).collect();
                let bases: Vec<f64> = flow.paths.iter().map(|p| p.base_rtt).collect();
                let view = FlowView { x: &x[f], rtt: &rtts, base_rtt: &bases };
                flow.paths
                    .iter()
                    .enumerate()
                    .map(|(p, path)| {
                        let lambda: f64 = path.links.iter().map(|&l| prices[l]).sum();
                        flow.model.dxdt(p, &view, lambda)
                    })
                    .collect()
            })
            .collect()
    }

    /// Integrates with classic RK4 from `x0` for `steps` of size `dt`,
    /// returning the final state. Rates are floored at [`X_MIN`].
    pub fn run(&self, x0: Vec<Vec<f64>>, dt: f64, steps: usize) -> Vec<Vec<f64>> {
        let mut x = x0;
        for _ in 0..steps {
            x = self.rk4_step(&x, dt);
        }
        x
    }

    /// Integrates and records `(t, state)` every `record_every` steps.
    pub fn trajectory(
        &self,
        x0: Vec<Vec<f64>>,
        dt: f64,
        steps: usize,
        record_every: usize,
    ) -> Vec<(f64, Vec<Vec<f64>>)> {
        let mut x = x0;
        let mut out = Vec::new();
        for s in 0..steps {
            if s % record_every.max(1) == 0 {
                out.push((s as f64 * dt, x.clone()));
            }
            x = self.rk4_step(&x, dt);
        }
        out.push((steps as f64 * dt, x));
        out
    }

    fn rk4_step(&self, x: &[Vec<f64>], dt: f64) -> Vec<Vec<f64>> {
        let add = |a: &[Vec<f64>], b: &[Vec<f64>], s: f64| -> Vec<Vec<f64>> {
            a.iter()
                .zip(b)
                .map(|(ar, br)| {
                    ar.iter().zip(br).map(|(&av, &bv)| (av + s * bv).max(X_MIN)).collect()
                })
                .collect()
        };
        let k1 = self.derivatives(x);
        let k2 = self.derivatives(&add(x, &k1, dt / 2.0));
        let k3 = self.derivatives(&add(x, &k2, dt / 2.0));
        let k4 = self.derivatives(&add(x, &k3, dt));
        x.iter()
            .enumerate()
            .map(|(f, xr)| {
                xr.iter()
                    .enumerate()
                    .map(|(p, &v)| {
                        let d = (k1[f][p] + 2.0 * k2[f][p] + 2.0 * k3[f][p] + k4[f][p]) / 6.0;
                        (v + dt * d).max(X_MIN)
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs to (approximate) equilibrium: integrates until the max relative
    /// rate change over a window falls below `tol`, or `max_steps` elapse.
    pub fn equilibrium(
        &self,
        x0: Vec<Vec<f64>>,
        dt: f64,
        tol: f64,
        max_steps: usize,
    ) -> Vec<Vec<f64>> {
        let mut x = x0;
        let window = 200;
        let mut since_check = x.clone();
        for s in 1..=max_steps {
            x = self.rk4_step(&x, dt);
            if s % window == 0 {
                let mut worst: f64 = 0.0;
                for (a, b) in x.iter().flatten().zip(since_check.iter().flatten()) {
                    worst = worst.max((a - b).abs() / b.max(X_MIN));
                }
                if worst < tol {
                    return x;
                }
                since_check = x.clone();
            }
        }
        x
    }
}

/// Convenience: a single-bottleneck net with one multipath flow whose paths
/// each cross a dedicated link — the canonical §IV analysis setup.
pub fn disjoint_paths_net(model: CcModel, caps: &[f64], rtts: &[f64]) -> FluidNet {
    assert_eq!(caps.len(), rtts.len());
    let mut net = FluidNet::new();
    let links: Vec<usize> = caps.iter().map(|&c| net.add_link(FluidLink::new(c))).collect();
    let paths = links.iter().zip(rtts).map(|(&l, &rtt)| FluidPath::new(vec![l], rtt)).collect();
    net.add_flow(FluidFlow { model, paths });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CcModel, Psi};

    fn reno_single(cap: f64, rtt: f64) -> FluidNet {
        disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[cap], &[rtt])
    }

    #[test]
    fn single_reno_converges_to_fixed_point() {
        // Equilibrium: ψ x²/(rtt²x²) = β p(x) x² → 1/rtt² = ½ p0 (x/c)^B x².
        let net = reno_single(1000.0, 0.1);
        let x = net.equilibrium(vec![vec![10.0]], 1e-3, 1e-8, 2_000_000);
        let xr = x[0][0];
        // Analytic fixed point: 1/rtt² = ½·p0·(x/c)^B·x² → x* = (2c^B/(p0·rtt²))^(1/(B+2)).
        let expected = (2.0 * 1000.0f64.powi(4) / (1e-2 * 0.01)).powf(1.0 / 6.0);
        assert!((xr - expected).abs() / expected < 0.01, "x* = {xr}, expected {expected}");
    }

    #[test]
    fn equilibrium_is_independent_of_start() {
        let net = reno_single(1000.0, 0.1);
        let a = net.equilibrium(vec![vec![5.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        let b = net.equilibrium(vec![vec![500.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        assert!((a - b).abs() / a < 1e-3, "a {a} b {b}");
    }

    #[test]
    fn two_reno_flows_share_a_bottleneck_equally() {
        let mut net = FluidNet::new();
        let l = net.add_link(FluidLink::new(1000.0));
        for _ in 0..2 {
            net.add_flow(FluidFlow {
                model: CcModel::loss_based(Psi::Olia),
                paths: vec![FluidPath::new(vec![l], 0.1)],
            });
        }
        let x = net.equilibrium(vec![vec![10.0], vec![300.0]], 1e-3, 1e-8, 4_000_000);
        let (a, b) = (x[0][0], x[1][0]);
        assert!((a - b).abs() / a < 0.01, "unfair split {a} vs {b}");
    }

    #[test]
    fn olia_on_two_paths_is_tcp_friendly() {
        // Multipath OLIA over two disjoint equal links gets less aggregate
        // than two independent Renos would (coupling), but more than one.
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[1000.0, 1000.0], &[0.1, 0.1]);
        let x = net.equilibrium(vec![vec![10.0, 10.0]], 1e-3, 1e-8, 2_000_000);
        let total: f64 = x[0].iter().sum();
        let single =
            reno_single(1000.0, 0.1).equilibrium(vec![vec![10.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        assert!(total > single * 1.05, "multipath should beat one path");
        assert!(total < single * 2.0, "multipath must not beat two independent TCPs");
    }

    #[test]
    fn dts_shifts_rate_to_good_ratio_path() {
        let cfg = crate::dts::DtsConfig::default();
        let mut net = disjoint_paths_net(CcModel::dts(cfg), &[1000.0, 1000.0], &[0.1, 0.1]);
        // Path 1 shows heavy RTT inflation (base ≪ rtt).
        net.flows[0].paths[1].rtt = 0.2;
        net.flows[0].paths[1].base_rtt = 0.05; // ratio 0.25
        let x = net.equilibrium(vec![vec![10.0, 10.0]], 1e-3, 1e-8, 2_000_000);
        assert!(x[0][0] > 2.0 * x[0][1], "DTS should favour the clean path: {:?}", x[0]);
    }

    #[test]
    fn rates_never_drop_below_floor() {
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[10.0, 10000.0], &[1.0, 0.01]);
        let x = net.run(vec![vec![5.0, 5.0]], 1e-3, 100_000);
        assert!(x[0].iter().all(|&v| v >= X_MIN));
    }
}
