//! RK4 fluid-model solver for networks of Equation-(3) flows sharing links.
//!
//! Links carry smooth congestion prices `p_l(y) = min(p0·(y/c_l)^B, 1)` (the
//! standard fluid approximation of loss probability, capped at 1 because it
//! *is* a probability); a flow's per-path signal is `λ_r = Σ_{l ∈ r} p_l(y_l)`.
//! The solver integrates every flow's Equation (3) simultaneously, which lets
//! the analytical layer (a) verify each algorithm's published fixed point,
//! (b) check TCP-friendliness and Pareto-efficiency numerically, and
//! (c) cross-validate the packet-level simulator's equilibria.
//!
//! Two integration front-ends share one core:
//!
//! * [`FluidNet`] keeps the ergonomic nested `Vec<Vec<f64>>` API used by the
//!   small analysis binaries and tests.
//! * [`FluidSolver`] is the flat, allocation-free workhorse behind it: state,
//!   RK4 stages, link rates and prices live in preallocated flat arrays with a
//!   CSR path→link index, so a step over 10⁵ flows allocates nothing. The
//!   hybrid engine drives this directly.
//!
//! # Integrator semantics
//!
//! Equation (3) is undefined at `x_r = 0` (several ψ decompositions divide by
//! `x_r` or `w_r`), so the vector field is extended *constantly* below the
//! rate floor: `F̃(x) := F(max(x, X_MIN))` componentwise. RK4 stages are formed
//! without clamping and evaluate `F̃`; only the final combined state is
//! projected back onto `[X_MIN, ∞)`. Off the floor the extension is inert and
//! the integrator is classic RK4, bit-for-bit (pinned by test).

use crate::model::{CcModel, FlowView};

/// Minimum rate floor (packets/second): flows never go extinct, matching the
/// one-packet window floor of the packet level.
pub const X_MIN: f64 = 1.0;

/// The shared price curve: `min(p0·(y/c)^B, 1)`. Returns the price and
/// whether the probability cap engaged.
#[inline]
fn price_of(p0: f64, exponent: f64, capacity: f64, y: f64) -> (f64, bool) {
    if y <= 0.0 {
        return (0.0, false);
    }
    let p = p0 * (y / capacity).powf(exponent);
    if p >= 1.0 {
        (1.0, true)
    } else {
        (p, false)
    }
}

/// A fluid link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidLink {
    /// Capacity in packets/second.
    pub capacity: f64,
    /// Price scale `p0`.
    pub p0: f64,
    /// Price exponent `B` (sharpness of congestion onset).
    pub exponent: f64,
}

impl FluidLink {
    /// A link with the standard price curve (`p0 = 1e-2`, `B = 4`).
    pub fn new(capacity: f64) -> Self {
        FluidLink { capacity, p0: 1e-2, exponent: 4.0 }
    }

    /// A link whose price scale is calibrated so that a *single Reno flow*
    /// with round-trip time `rtt` has its Equation-(3) fixed point at
    /// `target_util · capacity`.
    ///
    /// From `1/rtt² = ½·p0·(x/c)^B·x²` at `x = u·c`:
    /// `p0 = 2 / (rtt² · (u·c)² · u^B)`. This is how the hybrid engine maps
    /// packet-level links (which run near full utilization under loss-based
    /// CC) onto fluid links whose equilibria land in the same place.
    pub fn calibrated(capacity: f64, rtt: f64, target_util: f64) -> Self {
        let exponent = 4.0;
        let xs = target_util * capacity;
        let p0 = 2.0 / (rtt * rtt * xs * xs * target_util.powf(exponent));
        FluidLink { capacity, p0, exponent }
    }

    /// The congestion price at aggregate rate `y`, capped at 1.0 (it models
    /// a loss probability).
    pub fn price(&self, y: f64) -> f64 {
        price_of(self.p0, self.exponent, self.capacity, y).0
    }
}

/// One path of a fluid flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidPath {
    /// Indices into the net's link table.
    pub links: Vec<usize>,
    /// Propagation RTT of the path, seconds.
    pub rtt: f64,
    /// Base (minimum) RTT exposed to delay-based ψ, seconds.
    pub base_rtt: f64,
}

impl FluidPath {
    /// A path over `links` with equal RTT and base RTT.
    pub fn new(links: Vec<usize>, rtt: f64) -> Self {
        FluidPath { links, rtt, base_rtt: rtt }
    }
}

/// A multipath fluid flow governed by a [`CcModel`].
#[derive(Clone, Debug, PartialEq)]
pub struct FluidFlow {
    /// The Equation-(3) parameterization.
    pub model: CcModel,
    /// The flow's paths.
    pub paths: Vec<FluidPath>,
}

/// The result of [`FluidNet::solve_equilibrium`]: the final state plus how
/// the run terminated.
#[derive(Clone, Debug, PartialEq)]
pub struct EquilibriumReport {
    /// Final per-flow per-path rates.
    pub x: Vec<Vec<f64>>,
    /// Whether the relative-change test passed before `max_steps` elapsed.
    pub converged: bool,
    /// Steps actually integrated.
    pub steps: usize,
    /// Worst relative rate change over the last tested window
    /// (`f64::INFINITY` if no window was ever tested, i.e. `max_steps == 0`).
    pub residual: f64,
    /// Times a link price hit the probability cap during the run.
    pub price_cap_hits: u64,
}

/// A network of fluid links and flows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FluidNet {
    /// Links.
    pub links: Vec<FluidLink>,
    /// Flows.
    pub flows: Vec<FluidFlow>,
}

impl FluidNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        FluidNet::default()
    }

    /// Adds a link, returning its index.
    pub fn add_link(&mut self, link: FluidLink) -> usize {
        self.links.push(link);
        self.links.len() - 1
    }

    /// Adds a flow, returning its index.
    pub fn add_flow(&mut self, flow: FluidFlow) -> usize {
        self.flows.push(flow);
        self.flows.len() - 1
    }

    /// Aggregate rate per link under state `x` (`x[flow][path]`).
    pub fn link_rates(&self, x: &[Vec<f64>]) -> Vec<f64> {
        let mut y = vec![0.0; self.links.len()];
        for (f, flow) in self.flows.iter().enumerate() {
            for (p, path) in flow.paths.iter().enumerate() {
                for &l in &path.links {
                    y[l] += x[f][p];
                }
            }
        }
        y
    }

    /// `dx/dt` for every flow-path under state `x` (one-shot convenience;
    /// the solver's flat evaluation is the hot path).
    pub fn derivatives(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let y = self.link_rates(x);
        let prices: Vec<f64> = self.links.iter().zip(&y).map(|(l, &yl)| l.price(yl)).collect();
        self.flows
            .iter()
            .enumerate()
            .map(|(f, flow)| {
                let rtts: Vec<f64> = flow.paths.iter().map(|p| p.rtt).collect();
                let bases: Vec<f64> = flow.paths.iter().map(|p| p.base_rtt).collect();
                let view = FlowView { x: &x[f], rtt: &rtts, base_rtt: &bases };
                flow.paths
                    .iter()
                    .enumerate()
                    .map(|(p, path)| {
                        let lambda: f64 = path.links.iter().map(|&l| prices[l]).sum();
                        flow.model.dxdt(p, &view, lambda)
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds a flat solver over this net starting from state `x0`.
    ///
    /// # Panics
    /// Panics if `x0`'s shape does not match the net's flows/paths, or if a
    /// path references a link index out of range.
    pub fn solver_from(&self, x0: &[Vec<f64>]) -> FluidSolver {
        FluidSolver::from_state(self, x0)
    }

    /// Integrates with classic RK4 from `x0` for `steps` of size `dt`,
    /// returning the final state. Rates are floored at [`X_MIN`].
    pub fn run(&self, x0: Vec<Vec<f64>>, dt: f64, steps: usize) -> Vec<Vec<f64>> {
        let mut solver = self.solver_from(&x0);
        solver.run(dt, steps);
        solver.state()
    }

    /// Integrates and records `(t, state)` every `record_every` steps.
    pub fn trajectory(
        &self,
        x0: Vec<Vec<f64>>,
        dt: f64,
        steps: usize,
        record_every: usize,
    ) -> Vec<(f64, Vec<Vec<f64>>)> {
        let mut solver = self.solver_from(&x0);
        let mut out = Vec::new();
        for s in 0..steps {
            if s % record_every.max(1) == 0 {
                out.push((s as f64 * dt, solver.state()));
            }
            solver.step(dt);
        }
        out.push((steps as f64 * dt, solver.state()));
        out
    }

    /// Runs to (approximate) equilibrium: integrates until the max relative
    /// rate change over a window falls below `tol`, or `max_steps` elapse.
    /// Returns only the final state; see [`FluidNet::solve_equilibrium`] for
    /// the convergence verdict.
    pub fn equilibrium(
        &self,
        x0: Vec<Vec<f64>>,
        dt: f64,
        tol: f64,
        max_steps: usize,
    ) -> Vec<Vec<f64>> {
        self.solve_equilibrium(x0, dt, tol, max_steps).x
    }

    /// Like [`FluidNet::equilibrium`] but reports whether the tolerance was
    /// actually met. The relative-change test runs every `window` steps *and*
    /// on the final step, so small `max_steps` (< 200) still get a verdict
    /// instead of silently passing through.
    pub fn solve_equilibrium(
        &self,
        x0: Vec<Vec<f64>>,
        dt: f64,
        tol: f64,
        max_steps: usize,
    ) -> EquilibriumReport {
        let mut solver = self.solver_from(&x0);
        let info = solver.solve_equilibrium(dt, tol, max_steps);
        EquilibriumReport {
            x: solver.state(),
            converged: info.converged,
            steps: info.steps,
            residual: info.residual,
            price_cap_hits: solver.price_cap_hits(),
        }
    }
}

/// Convergence verdict from [`FluidSolver::solve_equilibrium`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EquilibriumInfo {
    /// Whether the relative-change test passed.
    pub converged: bool,
    /// Steps actually integrated.
    pub steps: usize,
    /// Worst relative change over the last tested window.
    pub residual: f64,
}

/// Immutable flat topology: links, flows and the CSR path→link index.
struct FlatTopo {
    /// Per-link capacity (packets/second).
    capacity: Vec<f64>,
    /// Per-link price scale.
    p0: Vec<f64>,
    /// Per-link price exponent.
    exponent: Vec<f64>,
    /// Per-flow model.
    models: Vec<CcModel>,
    /// Flow `f` owns global paths `path_off[f]..path_off[f+1]`.
    path_off: Vec<usize>,
    /// Per-path RTT (seconds), flow-major.
    rtt: Vec<f64>,
    /// Per-path base RTT (seconds), flow-major.
    base_rtt: Vec<f64>,
    /// Path `p` crosses links `link_idx[link_off[p]..link_off[p+1]]`.
    link_off: Vec<usize>,
    /// CSR link indices.
    link_idx: Vec<usize>,
}

/// Preallocated integration scratch.
struct Scratch {
    /// Clamped copy of the stage state (the constant extension `F̃`).
    xc: Vec<f64>,
    /// RK4 stage derivatives.
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    /// Unclamped stage state.
    stage: Vec<f64>,
    /// Per-link aggregate rates.
    y: Vec<f64>,
    /// Per-link prices.
    prices: Vec<f64>,
}

impl FlatTopo {
    /// Evaluates the constantly-extended field `F̃(xs) = F(max(xs, X_MIN))`
    /// into `out`, using `xc`/`y`/`prices` as scratch. Counts price-cap hits.
    fn field(
        &self,
        xs: &[f64],
        xc: &mut [f64],
        y: &mut [f64],
        prices: &mut [f64],
        out: &mut [f64],
        cap_hits: &mut u64,
    ) {
        for (c, &v) in xc.iter_mut().zip(xs) {
            *c = v.max(X_MIN);
        }
        y.fill(0.0);
        for (p, &xv) in xc.iter().enumerate() {
            for &l in &self.link_idx[self.link_off[p]..self.link_off[p + 1]] {
                y[l] += xv;
            }
        }
        for l in 0..prices.len() {
            let (pv, capped) = price_of(self.p0[l], self.exponent[l], self.capacity[l], y[l]);
            prices[l] = pv;
            if capped {
                *cap_hits = cap_hits.saturating_add(1);
            }
        }
        for f in 0..self.models.len() {
            let r = self.path_off[f]..self.path_off[f + 1];
            let view = FlowView {
                x: &xc[r.clone()],
                rtt: &self.rtt[r.clone()],
                base_rtt: &self.base_rtt[r.clone()],
            };
            for (local, p) in r.enumerate() {
                let lambda: f64 = self.link_idx[self.link_off[p]..self.link_off[p + 1]]
                    .iter()
                    .map(|&l| prices[l])
                    .sum();
                out[p] = self.models[f].dxdt(local, &view, lambda);
            }
        }
    }
}

/// Flat, preallocated RK4 integrator over a [`FluidNet`]. A step allocates
/// nothing; state is flow-major (`flow 0`'s paths, then `flow 1`'s, …).
pub struct FluidSolver {
    topo: FlatTopo,
    ws: Scratch,
    x: Vec<f64>,
    price_cap_hits: u64,
}

impl FluidSolver {
    /// Builds a solver from `net` starting at state `x0` (`x0[flow][path]`).
    ///
    /// # Panics
    /// Panics if `x0`'s shape does not match the net, or a path references a
    /// link index out of range.
    pub fn from_state(net: &FluidNet, x0: &[Vec<f64>]) -> Self {
        assert_eq!(x0.len(), net.flows.len(), "x0 must have one row per flow");
        let n_links = net.links.len();
        let mut topo = FlatTopo {
            capacity: net.links.iter().map(|l| l.capacity).collect(),
            p0: net.links.iter().map(|l| l.p0).collect(),
            exponent: net.links.iter().map(|l| l.exponent).collect(),
            models: net.flows.iter().map(|f| f.model).collect(),
            path_off: Vec::with_capacity(net.flows.len() + 1),
            rtt: Vec::new(),
            base_rtt: Vec::new(),
            link_off: Vec::new(),
            link_idx: Vec::new(),
        };
        let mut x = Vec::new();
        topo.path_off.push(0);
        topo.link_off.push(0);
        for (f, flow) in net.flows.iter().enumerate() {
            assert_eq!(x0[f].len(), flow.paths.len(), "x0 row {f} must match the flow's paths");
            for (p, path) in flow.paths.iter().enumerate() {
                topo.rtt.push(path.rtt);
                topo.base_rtt.push(path.base_rtt);
                for &l in &path.links {
                    assert!(l < n_links, "path references link {l} of {n_links}");
                    topo.link_idx.push(l);
                }
                topo.link_off.push(topo.link_idx.len());
                x.push(x0[f][p]);
            }
            topo.path_off.push(topo.rtt.len());
        }
        let n_paths = x.len();
        let ws = Scratch {
            xc: vec![0.0; n_paths],
            k1: vec![0.0; n_paths],
            k2: vec![0.0; n_paths],
            k3: vec![0.0; n_paths],
            k4: vec![0.0; n_paths],
            stage: vec![0.0; n_paths],
            y: vec![0.0; n_links],
            prices: vec![0.0; n_links],
        };
        FluidSolver { topo, ws, x, price_cap_hits: 0 }
    }

    /// Builds a solver from `net` with the state given flat (flow-major, as
    /// [`FluidSolver::x`] exposes it) — the zero-copy path the hybrid engine
    /// uses across epochs.
    ///
    /// # Panics
    /// Panics if `x0`'s length does not equal the net's total path count, or
    /// a path references a link index out of range.
    pub fn from_flat_state(net: &FluidNet, x0: &[f64]) -> Self {
        let total: usize = net.flows.iter().map(|f| f.paths.len()).sum();
        assert_eq!(x0.len(), total, "flat x0 must have one entry per path");
        let mut nested = Vec::with_capacity(net.flows.len());
        let mut off = 0;
        for flow in &net.flows {
            nested.push(x0[off..off + flow.paths.len()].to_vec());
            off += flow.paths.len();
        }
        FluidSolver::from_state(net, &nested)
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.topo.models.len()
    }

    /// Total number of paths (the flat state length).
    pub fn n_paths(&self) -> usize {
        self.x.len()
    }

    /// The flat state, flow-major.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Flow `f`'s per-path rates.
    pub fn rates_of(&self, f: usize) -> &[f64] {
        &self.x[self.topo.path_off[f]..self.topo.path_off[f + 1]]
    }

    /// Copies the state back into the nested `x[flow][path]` form.
    pub fn state(&self) -> Vec<Vec<f64>> {
        (0..self.n_flows()).map(|f| self.rates_of(f).to_vec()).collect()
    }

    /// Per-link aggregate rates under the *current* state (clamped to the
    /// floor, as the field sees them). Recomputed into the scratch buffer.
    pub fn link_rates(&mut self) -> &[f64] {
        for (c, &v) in self.ws.xc.iter_mut().zip(&self.x) {
            *c = v.max(X_MIN);
        }
        self.ws.y.fill(0.0);
        for p in 0..self.ws.xc.len() {
            let xv = self.ws.xc[p];
            for &l in &self.topo.link_idx[self.topo.link_off[p]..self.topo.link_off[p + 1]] {
                self.ws.y[l] += xv;
            }
        }
        &self.ws.y
    }

    /// Times a link price hit the probability cap since construction.
    pub fn price_cap_hits(&self) -> u64 {
        self.price_cap_hits
    }

    /// One classic RK4 step of size `dt` on the constantly-extended field;
    /// the final state is projected onto `[X_MIN, ∞)`.
    pub fn step(&mut self, dt: f64) {
        let t = &self.topo;
        let w = &mut self.ws;
        t.field(&self.x, &mut w.xc, &mut w.y, &mut w.prices, &mut w.k1, &mut self.price_cap_hits);
        for i in 0..self.x.len() {
            w.stage[i] = self.x[i] + (dt / 2.0) * w.k1[i];
        }
        t.field(&w.stage, &mut w.xc, &mut w.y, &mut w.prices, &mut w.k2, &mut self.price_cap_hits);
        for i in 0..self.x.len() {
            w.stage[i] = self.x[i] + (dt / 2.0) * w.k2[i];
        }
        t.field(&w.stage, &mut w.xc, &mut w.y, &mut w.prices, &mut w.k3, &mut self.price_cap_hits);
        for i in 0..self.x.len() {
            w.stage[i] = self.x[i] + dt * w.k3[i];
        }
        t.field(&w.stage, &mut w.xc, &mut w.y, &mut w.prices, &mut w.k4, &mut self.price_cap_hits);
        for i in 0..self.x.len() {
            let d = (w.k1[i] + 2.0 * w.k2[i] + 2.0 * w.k3[i] + w.k4[i]) / 6.0;
            self.x[i] = (self.x[i] + dt * d).max(X_MIN);
        }
    }

    /// Integrates `steps` steps of size `dt`.
    pub fn run(&mut self, dt: f64, steps: usize) {
        for _ in 0..steps {
            self.step(dt);
        }
    }

    /// Integrates until the max relative rate change over a window falls
    /// below `tol`, or `max_steps` elapse. The test runs every 200 steps
    /// *and* on the final step, so `max_steps < 200` still gets a verdict.
    pub fn solve_equilibrium(&mut self, dt: f64, tol: f64, max_steps: usize) -> EquilibriumInfo {
        let window = 200usize;
        let mut since_check = self.x.clone();
        let mut residual = f64::INFINITY;
        for s in 1..=max_steps {
            self.step(dt);
            if s % window == 0 || s == max_steps {
                let mut worst: f64 = 0.0;
                for (a, b) in self.x.iter().zip(&since_check) {
                    worst = worst.max((a - b).abs() / b.max(X_MIN));
                }
                residual = worst;
                if worst < tol {
                    return EquilibriumInfo { converged: true, steps: s, residual };
                }
                since_check.copy_from_slice(&self.x);
            }
        }
        EquilibriumInfo { converged: false, steps: max_steps, residual }
    }
}

/// Convenience: a single-bottleneck net with one multipath flow whose paths
/// each cross a dedicated link — the canonical §IV analysis setup.
pub fn disjoint_paths_net(model: CcModel, caps: &[f64], rtts: &[f64]) -> FluidNet {
    assert_eq!(caps.len(), rtts.len());
    let mut net = FluidNet::new();
    let links: Vec<usize> = caps.iter().map(|&c| net.add_link(FluidLink::new(c))).collect();
    let paths = links.iter().zip(rtts).map(|(&l, &rtt)| FluidPath::new(vec![l], rtt)).collect();
    net.add_flow(FluidFlow { model, paths });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CcModel, Psi};

    fn reno_single(cap: f64, rtt: f64) -> FluidNet {
        disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[cap], &[rtt])
    }

    #[test]
    fn single_reno_converges_to_fixed_point() {
        // Equilibrium: ψ x²/(rtt²x²) = β p(x) x² → 1/rtt² = ½ p0 (x/c)^B x².
        let net = reno_single(1000.0, 0.1);
        let x = net.equilibrium(vec![vec![10.0]], 1e-3, 1e-8, 2_000_000);
        let xr = x[0][0];
        // Analytic fixed point: 1/rtt² = ½·p0·(x/c)^B·x² → x* = (2c^B/(p0·rtt²))^(1/(B+2)).
        let expected = (2.0 * 1000.0f64.powi(4) / (1e-2 * 0.01)).powf(1.0 / 6.0);
        assert!((xr - expected).abs() / expected < 0.01, "x* = {xr}, expected {expected}");
    }

    #[test]
    fn equilibrium_is_independent_of_start() {
        let net = reno_single(1000.0, 0.1);
        let a = net.equilibrium(vec![vec![5.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        let b = net.equilibrium(vec![vec![500.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        assert!((a - b).abs() / a < 1e-3, "a {a} b {b}");
    }

    #[test]
    fn two_reno_flows_share_a_bottleneck_equally() {
        let mut net = FluidNet::new();
        let l = net.add_link(FluidLink::new(1000.0));
        for _ in 0..2 {
            net.add_flow(FluidFlow {
                model: CcModel::loss_based(Psi::Olia),
                paths: vec![FluidPath::new(vec![l], 0.1)],
            });
        }
        let x = net.equilibrium(vec![vec![10.0], vec![300.0]], 1e-3, 1e-8, 4_000_000);
        let (a, b) = (x[0][0], x[1][0]);
        assert!((a - b).abs() / a < 0.01, "unfair split {a} vs {b}");
    }

    #[test]
    fn olia_on_two_paths_is_tcp_friendly() {
        // Multipath OLIA over two disjoint equal links gets less aggregate
        // than two independent Renos would (coupling), but more than one.
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[1000.0, 1000.0], &[0.1, 0.1]);
        let x = net.equilibrium(vec![vec![10.0, 10.0]], 1e-3, 1e-8, 2_000_000);
        let total: f64 = x[0].iter().sum();
        let single =
            reno_single(1000.0, 0.1).equilibrium(vec![vec![10.0]], 1e-3, 1e-8, 2_000_000)[0][0];
        assert!(total > single * 1.05, "multipath should beat one path");
        assert!(total < single * 2.0, "multipath must not beat two independent TCPs");
    }

    #[test]
    fn dts_shifts_rate_to_good_ratio_path() {
        let cfg = crate::dts::DtsConfig::default();
        let mut net = disjoint_paths_net(CcModel::dts(cfg), &[1000.0, 1000.0], &[0.1, 0.1]);
        // Path 1 shows heavy RTT inflation (base ≪ rtt).
        net.flows[0].paths[1].rtt = 0.2;
        net.flows[0].paths[1].base_rtt = 0.05; // ratio 0.25
        let x = net.equilibrium(vec![vec![10.0, 10.0]], 1e-3, 1e-8, 2_000_000);
        assert!(x[0][0] > 2.0 * x[0][1], "DTS should favour the clean path: {:?}", x[0]);
    }

    #[test]
    fn rates_never_drop_below_floor() {
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[10.0, 10000.0], &[1.0, 0.01]);
        let x = net.run(vec![vec![5.0, 5.0]], 1e-3, 100_000);
        assert!(x[0].iter().all(|&v| v >= X_MIN));
    }

    // ---- price cap (satellite: price must stay a probability) ----

    #[test]
    // The cap saturates via `.min(1.0)`, so 1.0 is exact, not approximate.
    #[allow(clippy::float_cmp)]
    fn price_is_capped_at_one() {
        let l = FluidLink::new(1000.0);
        // p0·(y/c)^B = 1 at y/c = (1/p0)^(1/B) = 100^(1/4) ≈ 3.1623.
        let cap_y = 1000.0 * (1.0 / 1e-2f64).powf(1.0 / 4.0);
        assert_eq!(l.price(cap_y * 1.0001), 1.0, "at/above the cap the price is exactly 1");
        assert_eq!(l.price(cap_y * 10.0), 1.0);
        assert_eq!(l.price(1e12), 1.0);
        assert!(l.price(cap_y * 0.999) < 1.0, "just below the cap stays below 1");
    }

    #[test]
    fn price_below_cap_is_bit_identical_to_uncapped_curve() {
        // The cap must be inert in the uncongested regime: below the
        // crossing the capped price is the raw formula, bit for bit.
        let l = FluidLink::new(1000.0);
        for frac in [0.01, 0.1, 0.5, 0.9, 1.0, 1.5, 2.0, 3.0] {
            let y = 1000.0 * frac;
            let raw = l.p0 * (y / l.capacity).powf(l.exponent);
            assert_eq!(l.price(y).to_bits(), raw.to_bits(), "y/c = {frac}");
        }
    }

    #[test]
    fn solver_counts_price_cap_hits_when_overloaded() {
        // Two aggressive flows vastly over a tiny link: the cap must engage.
        let mut net = FluidNet::new();
        let l = net.add_link(FluidLink::new(10.0));
        for _ in 0..2 {
            net.add_flow(FluidFlow {
                model: CcModel::loss_based(Psi::Olia),
                paths: vec![FluidPath::new(vec![l], 0.1)],
            });
        }
        let report = net.solve_equilibrium(vec![vec![500.0], vec![500.0]], 1e-4, 1e-8, 10_000);
        assert!(report.price_cap_hits > 0, "overload must hit the cap");
        // And the capped system still settles to a finite, floored state.
        assert!(report.x.iter().flatten().all(|v| v.is_finite() && *v >= X_MIN));
    }

    // ---- equilibrium window (satellite: small max_steps must test tol) ----

    #[test]
    fn equilibrium_with_small_max_steps_still_tests_tolerance() {
        // Start *at* the analytic fixed point. With max_steps < 200 the old
        // code never ran the tolerance test and reported non-convergence
        // implicitly; the fix tests on the final step.
        let net = reno_single(1000.0, 0.1);
        let xstar = (2.0 * 1000.0f64.powi(4) / (1e-2 * 0.01)).powf(1.0 / 6.0);
        let report = net.solve_equilibrium(vec![vec![xstar]], 1e-3, 1e-6, 50);
        assert!(report.converged, "at the fixed point, 50 steps must converge");
        assert_eq!(report.steps, 50);
        assert!(report.residual < 1e-6);
    }

    #[test]
    fn equilibrium_far_from_fixed_point_reports_not_converged() {
        let net = reno_single(1000.0, 0.1);
        let report = net.solve_equilibrium(vec![vec![10.0]], 1e-3, 1e-10, 50);
        assert!(!report.converged, "50 steps from x=10 cannot meet 1e-10");
        assert!(report.residual > 1e-10);
    }

    // ---- RK4 stage handling (satellite: classic RK4 off the floor) ----

    /// The pre-refactor nested-`Vec` integrator, kept verbatim as the
    /// reference for byte-identity: price *uncapped* (as before the fix) and
    /// the stage floor applied inside `add`. The constant-extension field is
    /// provably the same map (`F(clamp(s))` vs `clamp` inside `add`), so the
    /// flat solver must reproduce it bit for bit wherever prices stay below
    /// the cap.
    fn reference_rk4_step(net: &FluidNet, x: &[Vec<f64>], dt: f64) -> Vec<Vec<f64>> {
        let deriv =
            |x: &[Vec<f64>]| -> Vec<Vec<f64>> {
                let y = net.link_rates(x);
                let prices: Vec<f64> =
                    net.links
                        .iter()
                        .zip(&y)
                        .map(|(l, &yl)| {
                            if yl <= 0.0 {
                                0.0
                            } else {
                                l.p0 * (yl / l.capacity).powf(l.exponent)
                            }
                        })
                        .collect();
                net.flows
                    .iter()
                    .enumerate()
                    .map(|(f, flow)| {
                        let rtts: Vec<f64> = flow.paths.iter().map(|p| p.rtt).collect();
                        let bases: Vec<f64> = flow.paths.iter().map(|p| p.base_rtt).collect();
                        let view = FlowView { x: &x[f], rtt: &rtts, base_rtt: &bases };
                        flow.paths
                            .iter()
                            .enumerate()
                            .map(|(p, path)| {
                                let lambda: f64 = path.links.iter().map(|&l| prices[l]).sum();
                                flow.model.dxdt(p, &view, lambda)
                            })
                            .collect()
                    })
                    .collect()
            };
        let add = |a: &[Vec<f64>], b: &[Vec<f64>], s: f64| -> Vec<Vec<f64>> {
            a.iter()
                .zip(b)
                .map(|(ar, br)| {
                    ar.iter().zip(br).map(|(&av, &bv)| (av + s * bv).max(X_MIN)).collect()
                })
                .collect()
        };
        let k1 = deriv(x);
        let k2 = deriv(&add(x, &k1, dt / 2.0));
        let k3 = deriv(&add(x, &k2, dt / 2.0));
        let k4 = deriv(&add(x, &k3, dt));
        x.iter()
            .enumerate()
            .map(|(f, xr)| {
                xr.iter()
                    .enumerate()
                    .map(|(p, &v)| {
                        let d = (k1[f][p] + 2.0 * k2[f][p] + 2.0 * k3[f][p] + k4[f][p]) / 6.0;
                        (v + dt * d).max(X_MIN)
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>], step: usize) {
        for (ra, rb) in a.iter().zip(b) {
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits(), "step {step}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn off_floor_trajectory_is_byte_identical_to_classic_rk4() {
        // Off the floor (all stage states ≥ X_MIN, prices < 1) the flat
        // solver, the constant extension, and the pre-fix integrator are the
        // same classic RK4, bit for bit.
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[1000.0, 2000.0], &[0.1, 0.05]);
        let mut solver = net.solver_from(&[vec![10.0, 10.0]]);
        let mut reference = vec![vec![10.0, 10.0]];
        for step in 0..5_000 {
            solver.step(1e-3);
            reference = reference_rk4_step(&net, &reference, 1e-3);
            assert_bits_eq(&solver.state(), &reference, step);
        }
    }

    #[test]
    fn near_floor_trajectory_is_byte_identical_to_reference() {
        // The starved path rides the X_MIN floor: the constant extension
        // still reproduces the reference map bit for bit, because
        // F̃(s) = F(max(s, X_MIN)) is exactly what the stage clamp computed.
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[10.0, 10000.0], &[1.0, 0.01]);
        let mut solver = net.solver_from(&[vec![5.0, 5.0]]);
        let mut reference = vec![vec![5.0, 5.0]];
        for step in 0..5_000 {
            solver.step(1e-3);
            reference = reference_rk4_step(&net, &reference, 1e-3);
            assert_bits_eq(&solver.state(), &reference, step);
        }
        assert!(solver.x().iter().all(|&v| v >= X_MIN));
    }

    // ---- calibrated links (hybrid handoff support) ----

    #[test]
    fn calibrated_link_puts_reno_fixed_point_at_target_utilization() {
        let cap = 8000.0; // ≈100 Mb/s of 1500 B packets
        let rtt = 0.02;
        let util = 0.9;
        let mut net = FluidNet::new();
        let l = net.add_link(FluidLink::calibrated(cap, rtt, util));
        net.add_flow(FluidFlow {
            model: CcModel::loss_based(Psi::Olia),
            paths: vec![FluidPath::new(vec![l], rtt)],
        });
        let report = net.solve_equilibrium(vec![vec![100.0]], 1e-5, 1e-9, 4_000_000);
        assert!(report.converged, "residual {}", report.residual);
        let x = report.x[0][0];
        let target = util * cap;
        assert!((x - target).abs() / target < 0.01, "x* = {x}, want {target}");
    }

    #[test]
    fn flat_solver_matches_nested_api() {
        // FluidNet::run delegates to the solver; spot-check rates_of and
        // link_rates agree with the nested accessors.
        let net =
            disjoint_paths_net(CcModel::loss_based(Psi::Olia), &[1000.0, 1000.0], &[0.1, 0.1]);
        let mut solver = net.solver_from(&[vec![10.0, 20.0]]);
        solver.run(1e-3, 1_000);
        let nested = net.run(vec![vec![10.0, 20.0]], 1e-3, 1_000);
        assert_bits_eq(&solver.state(), &nested, 1_000);
        let y = solver.link_rates().to_vec();
        let y_nested = net.link_rates(&nested);
        for (a, b) in y.iter().zip(&y_nested) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
