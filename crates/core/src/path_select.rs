//! Energy-aware *path selection* — the first class of related work the
//! paper's §II surveys (Pluntke et al. MobiArch 2011; Lim et al. eMPTCP,
//! CoNEXT 2015) and argues against.
//!
//! These schemes estimate a per-path energy cost from an interface energy
//! model and restrict MPTCP to the cheap path(s). The paper's critique,
//! which this module lets you reproduce: selecting only the cheapest path
//! "has the same performance as regular TCP over WiFi, thus losing MPTCP's
//! advantages such as throughput increment" — congestion-control-level
//! energy awareness (DTS) keeps the aggregation benefit instead.

use crate::scenarios::{CcChoice, FlowResult, WirelessOptions};
use energy_model::{LteModel, PathLoad, PhoneModel, WifiModel};
use netsim::{SimDuration, SimTime, Simulator};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig, PathSpec};
use workload::{attach_pareto_cross_traffic, ParetoOnOffConfig};

/// Which paths an energy-aware selector admits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PathPolicy {
    /// Plain MPTCP: use every path (no selection).
    AllPaths,
    /// The Pluntke-style scheduler: only the single cheapest path.
    CheapestOnly,
    /// eMPTCP-style thresholding: admit paths whose marginal energy cost is
    /// below `max_j_per_mbit` joules per megabit.
    BelowCost {
        /// Admission threshold, joules per megabit.
        max_j_per_mbit: f64,
    },
}

/// Marginal energy cost of moving one megabit over an interface running at
/// `at_mbps`, in joules: `(P(at) − P(idle-ish)) / rate`, i.e. slope plus the
/// amortized active base.
pub fn marginal_cost_j_per_mbit(base_w: f64, per_mbps_w: f64, at_mbps: f64) -> f64 {
    debug_assert!(at_mbps > 0.0);
    per_mbps_w + base_w / at_mbps
}

/// Estimated per-path costs for the WiFi+4G uplink scenario at the given
/// expected rates, using the Huang et al. uplink coefficients.
pub fn wireless_path_costs(wifi_mbps: f64, lte_mbps: f64) -> [f64; 2] {
    let wifi = WifiModel::mobisys2012_uplink();
    let lte = LteModel::mobisys2012_uplink();
    [
        marginal_cost_j_per_mbit(wifi.base_w, wifi.per_mbps_w, wifi_mbps),
        marginal_cost_j_per_mbit(lte.base_w, lte.per_mbps_w, lte_mbps),
    ]
}

/// Applies a policy to per-path costs, returning the admitted path indices
/// (never empty: the cheapest path is always admitted).
pub fn select_paths(costs: &[f64], policy: PathPolicy) -> Vec<usize> {
    assert!(!costs.is_empty(), "no paths to select from");
    // IEEE total order places NaN after every real cost, so a NaN entry can
    // never be chosen as cheapest; the assert above makes the iterator
    // non-empty, so the default index is unreachable.
    let cheapest = costs.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(i, _)| i);
    match policy {
        PathPolicy::AllPaths => (0..costs.len()).collect(),
        PathPolicy::CheapestOnly => vec![cheapest],
        PathPolicy::BelowCost { max_j_per_mbit } => {
            let mut out: Vec<usize> = costs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c <= max_j_per_mbit)
                .map(|(i, _)| i)
                .collect();
            if out.is_empty() {
                out.push(cheapest);
            }
            out
        }
    }
}

/// Runs the Fig. 17 wireless scenario with an energy-aware path selector in
/// front of the congestion controller.
pub fn run_wireless_with_policy(
    cc: &CcChoice,
    opts: &WirelessOptions,
    policy: PathPolicy,
) -> FlowResult {
    let mut sim = Simulator::new(opts.seed);
    let tp = TwoPath::wireless(&mut sim);
    crate::scenarios::apply_wireless_loss(&mut sim, &tp, opts);
    let mut cross = ParetoOnOffConfig::paper_fig5b();
    cross.burst_rate_bps = opts.wifi_cross_bps;
    attach_pareto_cross_traffic(&mut sim, vec![tp.p1.fwd], cross);
    cross.burst_rate_bps = opts.lte_cross_bps;
    attach_pareto_cross_traffic(&mut sim, vec![tp.p2.fwd], cross);

    // Offline cost estimate at the nominal link rates, as the MDP/eMPTCP
    // schedulers do.
    let costs = wireless_path_costs(10.0, 20.0);
    let admitted = select_paths(&costs, policy);
    let all = tp.both();
    let paths: Vec<PathSpec> = admitted.iter().map(|&i| all[i].clone()).collect();
    let lte_admitted = admitted.contains(&1);

    let n = paths.len();
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .rcv_buf_bytes(opts.rcv_buf_bytes)
            .sample_every(SimDuration::from_millis(50)),
        cc.build(n),
        &paths,
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(opts.duration_s));

    // Map samples back onto (wifi, lte) interface slots for the phone model.
    let sender = flow.sender_ref(&sim);
    let mut samples = sender.samples().to_vec();
    if n == 1 {
        let idle = transport::SubflowSample {
            throughput_bps: 0.0,
            srtt_s: 0.0,
            base_rtt_s: 0.0,
            cwnd_pkts: 0.0,
            active: false,
        };
        for s in &mut samples {
            if lte_admitted {
                s.subflows.insert(0, idle); // traffic is on the LTE slot
            } else {
                s.subflows.push(idle); // traffic is on the WiFi slot
            }
        }
    }
    let mut model = PhoneModel::nexus5_uplink();
    let energy = energy_model::energy_of_flow(&mut model, &samples);
    FlowResult {
        label: format!("{}+select", cc.label()),
        goodput_bps: sender.goodput_bps(sim.now()),
        energy,
        finish_s: sender.finished_at().map(SimTime::as_secs_f64),
        rexmits: sender.total_rexmits(),
        timeouts: sender.total_timeouts(),
        tput_trace: sender
            .samples()
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.total_throughput_bps()))
            .collect(),
    }
}

/// Reference for the marginal-cost helper: make the idle slots explicit.
pub fn phone_idle_power_w() -> f64 {
    let mut phone = PhoneModel::nexus5_uplink();
    use energy_model::PowerModel;
    phone.power_w(0.0, &[PathLoad::IDLE, PathLoad::IDLE])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_uplink_costs_more_per_bit_at_nominal_rates() {
        let [wifi, lte] = wireless_path_costs(10.0, 20.0);
        assert!(lte > wifi, "LTE uplink ({lte} J/Mb) should cost more than WiFi ({wifi} J/Mb)");
    }

    #[test]
    fn cheapest_only_picks_wifi() {
        let costs = wireless_path_costs(10.0, 20.0);
        assert_eq!(select_paths(&costs, PathPolicy::CheapestOnly), vec![0]);
    }

    #[test]
    fn all_paths_keeps_everything() {
        let costs = wireless_path_costs(10.0, 20.0);
        assert_eq!(select_paths(&costs, PathPolicy::AllPaths), vec![0, 1]);
    }

    #[test]
    fn below_cost_thresholds_and_never_returns_empty() {
        let costs = [0.3, 0.5, 0.9];
        let picked = select_paths(&costs, PathPolicy::BelowCost { max_j_per_mbit: 0.6 });
        assert_eq!(picked, vec![0, 1]);
        let none_qualify = select_paths(&costs, PathPolicy::BelowCost { max_j_per_mbit: 0.1 });
        assert_eq!(none_qualify, vec![0], "falls back to the cheapest path");
    }

    #[test]
    fn marginal_cost_amortizes_base_power() {
        // At higher rates the base power amortizes: cost per Mb falls.
        let slow = marginal_cost_j_per_mbit(1.0, 0.4, 2.0);
        let fast = marginal_cost_j_per_mbit(1.0, 0.4, 20.0);
        assert!(slow > fast);
        assert!((fast - (0.4 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn phone_idle_floor_is_positive() {
        assert!(phone_idle_power_w() > 0.0);
    }
}
