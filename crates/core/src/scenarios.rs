//! Ready-made experiment scenarios matching the paper's evaluation setups.
//!
//! Each runner builds a deterministic simulation (topology + workload +
//! flows + energy model), runs it, and returns a plain result struct. The
//! figure harnesses in `bench-harness` and the runnable examples are thin
//! wrappers over these functions; see DESIGN.md for the figure-by-figure
//! mapping and EXPERIMENTS.md for the scaling notes.

use crate::dts::{Dts, DtsConfig};
use crate::dts_phi::{DtsPhi, DtsPhiConfig};
use congestion::{AlgorithmKind, MultipathCongestionControl};
use energy_model::{
    energy_of_flow, EnergyReport, HostLoadSeries, PhoneModel, PowerModel, WiredCpuModel,
};
use netsim::{EngineConfig, LossModel, ReorderModel, SimDuration, SimTime, Simulator};
use obs::{CounterSnapshot, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use topology::{BCube, Ec2Vpc, FatTree, Hierarchy, LinkParams, SharedBottleneck, TwoPath, Vl2};
use transport::{attach_flow, FlowConfig, FlowHandle, PathSpec};
use workload::{
    attach_pareto_cross_traffic, permutation_pairs, short_flow_schedule, ParetoOnOffConfig,
    ShortFlowConfig,
};

/// A congestion-control configuration: a baseline algorithm, DTS, or DTS-Φ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcChoice {
    /// One of the literature baselines.
    Base(AlgorithmKind),
    /// The paper's Delay-based Traffic Shifting.
    Dts(DtsConfig),
    /// DTS extended with the energy-proportional price.
    DtsPhi(DtsPhiConfig),
}

impl CcChoice {
    /// DTS with default parameters.
    pub fn dts() -> Self {
        CcChoice::Dts(DtsConfig::default())
    }

    /// DTS-Φ with default parameters.
    pub fn dts_phi() -> Self {
        CcChoice::DtsPhi(DtsPhiConfig::default())
    }

    /// Instantiates the algorithm for `n_subflows` paths.
    pub fn build(&self, n_subflows: usize) -> Box<dyn MultipathCongestionControl> {
        match self {
            CcChoice::Base(kind) => kind.build(n_subflows),
            CcChoice::Dts(cfg) => Box::new(Dts::with_config(*cfg)),
            CcChoice::DtsPhi(cfg) => Box::new(DtsPhi::with_config(*cfg)),
        }
    }

    /// The display label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            CcChoice::Base(kind) => kind.to_string(),
            CcChoice::Dts(_) => "dts".to_owned(),
            CcChoice::DtsPhi(_) => "dts-phi".to_owned(),
        }
    }
}

/// Result of a single-flow scenario.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Algorithm label.
    pub label: String,
    /// Mean goodput, bits/second.
    pub goodput_bps: f64,
    /// Host energy over the run, joules.
    pub energy: EnergyReport,
    /// Transfer completion time, if the flow was finite.
    pub finish_s: Option<f64>,
    /// Retransmissions.
    pub rexmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// `(t, throughput_bps)` trace.
    pub tput_trace: Vec<(f64, f64)>,
}

impl FlowResult {
    fn collect(
        sim: &Simulator,
        flow: FlowHandle,
        label: String,
        model: &mut dyn PowerModel,
    ) -> FlowResult {
        let sender = flow.sender_ref(sim);
        let energy = energy_of_flow(model, sender.samples());
        FlowResult {
            label,
            goodput_bps: sender.goodput_bps(sim.now()),
            energy,
            finish_s: sender.finished_at().map(SimTime::as_secs_f64),
            rexmits: sender.total_rexmits(),
            timeouts: sender.total_timeouts(),
            tput_trace: sender
                .samples()
                .iter()
                .map(|s| (s.at.as_secs_f64(), s.total_throughput_bps()))
                .collect(),
        }
    }
}

/// Options for the Fig. 5(b) two-path bursty scenario (Figs. 7, 8, 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstyOptions {
    /// RNG seed.
    pub seed: u64,
    /// Run length, seconds.
    pub duration_s: f64,
    /// Path rate, bits/second (testbed NICs: 100 Mb/s).
    pub link_bps: u64,
    /// One-way propagation per path.
    pub one_way: SimDuration,
    /// Cross-traffic configuration (the paper's Pareto bursts).
    pub cross: ParetoOnOffConfig,
    /// Finite transfer size; `None` = long-lived.
    pub transfer_bytes: Option<u64>,
    /// Event-loop engine to run on. Results are byte-identical across
    /// engines (pinned by `tests/sweep_determinism.rs`); non-default values
    /// exist for that pin and for A/B benchmarking.
    pub engine: EngineConfig,
}

impl Default for BurstyOptions {
    fn default() -> Self {
        BurstyOptions {
            seed: 1,
            duration_s: 120.0,
            link_bps: 100_000_000,
            one_way: SimDuration::from_millis(10),
            cross: ParetoOnOffConfig::paper_fig5b(),
            transfer_bytes: None,
            engine: EngineConfig::default(),
        }
    }
}

/// Widens a host/flow index to `u64` for flow ids and stagger arithmetic.
/// Lossless on every supported target (`usize` is at most 64 bits); the
/// saturating fallback only exists to make the conversion total.
fn idx_u64(i: usize) -> u64 {
    u64::try_from(i).unwrap_or(u64::MAX)
}

/// Runs the Fig. 5(b) scenario: one MPTCP connection over two 100 Mb/s paths
/// whose quality flips Bad/Good at random under Pareto cross-traffic bursts.
pub fn run_two_path_bursty(cc: &CcChoice, opts: &BurstyOptions) -> FlowResult {
    run_two_path_bursty_traced(cc, opts, None).0
}

/// [`run_two_path_bursty`] with an optional trace sink installed for the
/// duration of the run, additionally returning the per-link / per-subflow
/// counter snapshot. Sinks observe only — traced and untraced runs produce
/// byte-identical [`FlowResult`]s (pinned by `tests/sweep_determinism.rs`).
pub fn run_two_path_bursty_traced(
    cc: &CcChoice,
    opts: &BurstyOptions,
    sink: Option<Box<dyn TraceSink>>,
) -> (FlowResult, CounterSnapshot) {
    let mut sim = Simulator::with_engine(opts.seed, opts.engine);
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    let params = LinkParams::new(opts.link_bps, opts.one_way).queue(100);
    let tp = TwoPath::symmetric(&mut sim, params);
    for link in tp.forward_links() {
        attach_pareto_cross_traffic(&mut sim, vec![link], opts.cross);
    }
    let mut cfg = FlowConfig::new(0).sample_every(SimDuration::from_millis(20));
    if let Some(bytes) = opts.transfer_bytes {
        cfg = cfg.transfer_bytes(bytes);
    }
    let flow = attach_flow(&mut sim, cfg, cc.build(2), &tp.both(), SimDuration::ZERO);
    sim.run_until(SimTime::from_secs_f64(opts.duration_s));
    let mut model = WiredCpuModel::i7_3770();
    let result = FlowResult::collect(&sim, flow, cc.label(), &mut model);
    let counters = counters_of(&sim, &[flow]);
    // Detach (and thereby flush) the sink before the simulator is dropped.
    drop(sim.take_trace_sink());
    (result, counters)
}

/// Assembles the observability counter snapshot for a finished simulation:
/// link counters from the world plus subflow counters from each sender and
/// connection-level robustness counters (zero-window stalls, persist
/// probes, corrupt/window discards) from each endpoint pair.
pub fn counters_of(sim: &Simulator, flows: &[FlowHandle]) -> CounterSnapshot {
    let mut snap =
        CounterSnapshot { links: sim.world().link_counters(), ..CounterSnapshot::default() };
    for f in flows {
        snap.subflows.extend(f.sender_ref(sim).subflow_counters());
        snap.conns.push(f.conn_counters(sim));
    }
    snap
}

/// Options for the Fig. 5(a) shared-bottleneck scenario (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedOptions {
    /// RNG seed.
    pub seed: u64,
    /// Number of MPTCP users `N` (the paper runs 10–100); `2N` TCP users
    /// are added automatically.
    pub n_users: usize,
    /// Per-user transfer size, bytes (the paper: 16 MB).
    pub transfer_bytes: u64,
    /// Bottleneck rate, bits/second.
    pub link_bps: u64,
    /// One-way propagation.
    pub one_way: SimDuration,
    /// Safety horizon, seconds.
    pub horizon_s: f64,
}

impl Default for SharedOptions {
    fn default() -> Self {
        SharedOptions {
            seed: 1,
            n_users: 10,
            transfer_bytes: 16 * 1024 * 1024,
            link_bps: 100_000_000,
            one_way: SimDuration::from_millis(5),
            horizon_s: 600.0,
        }
    }
}

/// Per-user energies (joules) for the Fig. 5(a) scenario: N MPTCP users
/// (16 MB each) racing 2N long-lived TCP users over two shared bottlenecks.
/// The host's idle power is attributed evenly across the N users.
pub fn run_shared_bottleneck(cc: &CcChoice, opts: &SharedOptions) -> Vec<f64> {
    use rand::Rng;
    let mut sim = Simulator::new(opts.seed);
    let mut stagger_rng = SmallRng::seed_from_u64(opts.seed ^ 0x5A);
    let sb =
        SharedBottleneck::new(&mut sim, LinkParams::new(opts.link_bps, opts.one_way).queue(100));
    // 2N competing TCP users, long-lived, randomly staggered starts.
    for i in 0..2 * opts.n_users {
        let start = SimDuration::from_millis(stagger_rng.gen_range(0..200));
        attach_flow(
            &mut sim,
            FlowConfig::new(1000 + idx_u64(i)).sample_every(SimDuration::from_millis(100)),
            AlgorithmKind::Reno.build(1),
            &sb.tcp_path(i),
            start,
        );
    }
    // N MPTCP users under test.
    let flows: Vec<FlowHandle> = (0..opts.n_users)
        .map(|i| {
            let start = SimDuration::from_millis(stagger_rng.gen_range(0..200));
            attach_flow(
                &mut sim,
                FlowConfig::new(i as u64)
                    .transfer_bytes(opts.transfer_bytes)
                    .sample_every(SimDuration::from_millis(50)),
                cc.build(2),
                &sb.mptcp_paths(),
                start,
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(opts.horizon_s));
    let mut model = WiredCpuModel::i7_3770();
    model.idle_w /= opts.n_users as f64; // all N senders share one machine
    flows.iter().map(|f| energy_of_flow(&mut model, f.sender_ref(&sim).samples()).joules).collect()
}

/// Options for the EC2 scenario (Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ec2Options {
    /// RNG seed.
    pub seed: u64,
    /// Number of instances (the paper rents 40).
    pub n_hosts: usize,
    /// Per-connection transfer, bytes (the paper: 10 GB; scaled in the
    /// harness — see EXPERIMENTS.md).
    pub transfer_bytes: u64,
    /// Safety horizon, seconds.
    pub horizon_s: f64,
}

impl Default for Ec2Options {
    fn default() -> Self {
        Ec2Options { seed: 1, n_hosts: 10, transfer_bytes: 64 * 1024 * 1024, horizon_s: 600.0 }
    }
}

/// Result of a fleet scenario (EC2 / datacenter).
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Algorithm label.
    pub label: String,
    /// Total sender-host energy, joules.
    pub total_energy_j: f64,
    /// Aggregate goodput across connections, bits/second.
    pub aggregate_goodput_bps: f64,
    /// Total data delivered, bits.
    pub delivered_bits: f64,
    /// Energy per gigabit delivered, joules.
    pub joules_per_gbit: f64,
    /// Mean per-flow completion time (finite transfers), seconds.
    pub mean_finish_s: Option<f64>,
    /// Fraction of finite transfers that completed within the horizon.
    pub completion_rate: f64,
}

fn fleet_result(
    sim: &Simulator,
    flows: &[FlowHandle],
    label: String,
    model: &WiredCpuModel,
) -> FleetResult {
    let mut total_energy = 0.0;
    let mut delivered_bits = 0.0;
    let mut goodput = 0.0;
    let mut finishes = Vec::new();
    let mut finite = 0usize;
    let mut done = 0usize;
    for f in flows {
        let sender = f.sender_ref(sim);
        let mut m = model.clone();
        total_energy += energy_of_flow(&mut m, sender.samples()).joules;
        delivered_bits += sender.data_acked() as f64 * f64::from(sender.config().mss_bytes) * 8.0;
        goodput += sender.goodput_bps(sim.now());
        if sender.config().total_pkts.is_some() {
            finite += 1;
            if let Some(t) = sender.finished_at() {
                done += 1;
                let start = sender.started_at().unwrap_or(SimTime::ZERO);
                finishes.push(t.saturating_since(start).as_secs_f64());
            }
        }
    }
    FleetResult {
        label,
        total_energy_j: total_energy,
        aggregate_goodput_bps: goodput,
        delivered_bits,
        joules_per_gbit: if delivered_bits > 0.0 {
            total_energy / (delivered_bits / 1e9)
        } else {
            f64::INFINITY
        },
        mean_finish_s: if finishes.is_empty() {
            None
        } else {
            Some(finishes.iter().sum::<f64>() / finishes.len() as f64)
        },
        completion_rate: if finite == 0 { 1.0 } else { done as f64 / finite as f64 },
    }
}

/// Runs the EC2 scenario: permutation traffic between multihomed instances,
/// one finite transfer per pair. Single-path choices (TCP Reno, DCTCP) use
/// one ENI; multipath choices use all four.
pub fn run_ec2(cc: &CcChoice, opts: &Ec2Options) -> FleetResult {
    let mut sim = Simulator::new(opts.seed);
    let vpc = Ec2Vpc::paper_scale(&mut sim, opts.n_hosts);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xEC2);
    let pairs = permutation_pairs(opts.n_hosts, &mut rng);
    let single_path = matches!(cc, CcChoice::Base(AlgorithmKind::Reno | AlgorithmKind::Dctcp));
    let flows: Vec<FlowHandle> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| {
            let paths: Vec<PathSpec> =
                if single_path { vpc.single_path(src, dst, 0) } else { vpc.paths(src, dst) };
            let n = paths.len();
            attach_flow(
                &mut sim,
                FlowConfig::new(i as u64)
                    .transfer_bytes(opts.transfer_bytes)
                    .rcv_buf_pkts(1024)
                    .min_rto(SimDuration::from_millis(20))
                    .sample_every(SimDuration::from_millis(50)),
                cc.build(n),
                &paths,
                SimDuration::from_millis(idx_u64(i) % 20),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(opts.horizon_s));
    fleet_result(&sim, &flows, cc.label(), &WiredCpuModel::xeon_e5())
}

/// Which datacenter fabric to build (Figs. 12–16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcKind {
    /// k-ary FatTree.
    FatTree {
        /// The arity (paper scale: 8 → 128 hosts).
        k: usize,
    },
    /// VL2 Clos at paper scale divided by `scale` (1 = 128 hosts).
    Vl2 {
        /// Divide the paper's host count by this factor.
        scale: usize,
    },
    /// BCube(n, k).
    BCube {
        /// Switch port count.
        n: usize,
        /// Level count minus one.
        k: usize,
    },
}

impl DcKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DcKind::FatTree { .. } => "fattree",
            DcKind::Vl2 { .. } => "vl2",
            DcKind::BCube { .. } => "bcube",
        }
    }
}

/// Options for the datacenter scenarios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcOptions {
    /// RNG seed.
    pub seed: u64,
    /// Subflows per connection.
    pub n_subflows: usize,
    /// Run length, seconds (the paper simulates 1000 s; scaled here).
    pub duration_s: f64,
    /// Host link rate, bits/second.
    pub host_bps: u64,
    /// Per-link one-way propagation.
    pub link_delay: SimDuration,
    /// DropTail queue bound per link, packets.
    pub queue_pkts: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            seed: 1,
            n_subflows: 2,
            duration_s: 10.0,
            host_bps: 100_000_000,
            link_delay: SimDuration::from_micros(100),
            queue_pkts: 32,
        }
    }
}

/// Runs a datacenter scenario: a random permutation of long-lived flows,
/// `n_subflows` sampled ECMP paths each.
pub fn run_datacenter(kind: DcKind, cc: &CcChoice, opts: &DcOptions) -> FleetResult {
    let mut sim = Simulator::new(opts.seed);
    let params = LinkParams::new(opts.host_bps, opts.link_delay).queue(opts.queue_pkts);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xDC);
    enum Fabric {
        Ft(FatTree),
        V(Vl2),
        B(BCube),
    }
    let fabric = match kind {
        DcKind::FatTree { k } => Fabric::Ft(FatTree::build(&mut sim, k, params)),
        DcKind::Vl2 { scale } => {
            let sw = LinkParams::new(opts.host_bps * 10, opts.link_delay).queue(opts.queue_pkts);
            let cfg = topology::Vl2Config {
                n_tor: (16 / scale.max(1)).max(2),
                n_agg: (8 / scale.max(1)).max(2),
                n_int: (4 / scale.max(1)).max(2),
                hosts_per_tor: 8,
                host_link: params,
                switch_link: sw,
            };
            Fabric::V(Vl2::build(&mut sim, cfg))
        }
        DcKind::BCube { n, k } => Fabric::B(BCube::build(&mut sim, n, k, params)),
    };
    let hosts = match &fabric {
        Fabric::Ft(f) => f.hosts(),
        Fabric::V(v) => v.hosts(),
        Fabric::B(b) => b.hosts(),
    };
    let pairs = permutation_pairs(hosts, &mut rng);
    let min_rto = SimDuration::from_millis(10);
    let flows: Vec<FlowHandle> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| {
            let paths = match &fabric {
                Fabric::Ft(f) => f.sample_paths(src, dst, opts.n_subflows, &mut rng),
                Fabric::V(v) => v.sample_paths(src, dst, opts.n_subflows, &mut rng),
                Fabric::B(b) => b.sample_paths(src, dst, opts.n_subflows, &mut rng),
            };
            let n = paths.len();
            attach_flow(
                &mut sim,
                FlowConfig::new(i as u64)
                    .min_rto(min_rto)
                    .rcv_buf_pkts(512)
                    .sample_every(SimDuration::from_millis(100)),
                cc.build(n),
                &paths,
                SimDuration::from_millis((idx_u64(i) * 7) % 100),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(opts.duration_s));
    fleet_result(&sim, &flows, cc.label(), &WiredCpuModel::energy_proportional_server())
}

/// Options for the heterogeneous wireless scenario (Fig. 17).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirelessOptions {
    /// RNG seed.
    pub seed: u64,
    /// Run length, seconds (the paper simulates 200 s).
    pub duration_s: f64,
    /// Cross-traffic burst rate on the WiFi path, bits/second.
    pub wifi_cross_bps: u64,
    /// Cross-traffic burst rate on the 4G path, bits/second.
    pub lte_cross_bps: u64,
    /// Receive buffer, bytes. The ns-2 default is 64 KB; we default to
    /// 256 KB so the congestion window (not flow control) governs — see
    /// EXPERIMENTS.md.
    pub rcv_buf_bytes: u64,
    /// Random (i.i.d.) uplink loss probability on the WiFi path, applied
    /// through the link impairment layer. The default, `0.0`, keeps the
    /// scenario lossless (and bit-identical to the pre-impairment runs).
    pub wifi_loss: f64,
    /// Random uplink loss probability on the 4G path.
    pub lte_loss: f64,
    /// Delivery impairments (reorder/duplicate/corrupt) on the WiFi uplink.
    /// All-zero by default — inert knobs draw nothing from the RNG, so the
    /// clean scenario stays bit-identical to the pre-impairment runs.
    pub wifi_impair: ImpairmentKnobs,
    /// Delivery impairments on the 4G uplink.
    pub lte_impair: ImpairmentKnobs,
}

/// Per-path delivery-impairment knobs for scenario options: reordering
/// jitter, duplication, and corruption probabilities. The all-zero default
/// is inert (no RNG draws, byte-identical runs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ImpairmentKnobs {
    /// Per-packet probability of an extra reordering delay.
    pub reorder_p: f64,
    /// Maximum extra delay drawn uniformly when reordering fires, seconds.
    pub reorder_max_s: f64,
    /// Per-packet duplication probability.
    pub duplicate_p: f64,
    /// Per-packet corruption probability (delivered but poisoned).
    pub corrupt_p: f64,
}

impl ImpairmentKnobs {
    /// Installs these knobs on `link` (no-ops stay no-ops).
    fn apply(&self, sim: &mut Simulator, link: netsim::LinkId) {
        let imp = sim.world_mut().link_mut(link).impairment_mut();
        imp.set_reorder(ReorderModel::uniform(
            self.reorder_p,
            SimDuration::from_secs_f64(self.reorder_max_s),
        ));
        imp.set_duplicate(self.duplicate_p);
        imp.set_corrupt(self.corrupt_p);
    }
}

impl Default for WirelessOptions {
    fn default() -> Self {
        WirelessOptions {
            seed: 1,
            duration_s: 200.0,
            wifi_cross_bps: 8_000_000,
            lte_cross_bps: 16_000_000,
            rcv_buf_bytes: 256 * 1024,
            wifi_loss: 0.0,
            lte_loss: 0.0,
            wifi_impair: ImpairmentKnobs::default(),
            lte_impair: ImpairmentKnobs::default(),
        }
    }
}

/// Installs the wireless scenario's random-loss and delivery impairments on
/// the uplink (data-direction) hops. `LossModel::iid(0.0)` is
/// `LossModel::None` and all-zero [`ImpairmentKnobs`] are inert, so the
/// lossless defaults draw nothing from the RNG.
pub(crate) fn apply_wireless_loss(sim: &mut Simulator, tp: &TwoPath, opts: &WirelessOptions) {
    sim.world_mut().link_mut(tp.p1.fwd).impairment_mut().set_loss(LossModel::iid(opts.wifi_loss));
    sim.world_mut().link_mut(tp.p2.fwd).impairment_mut().set_loss(LossModel::iid(opts.lte_loss));
    opts.wifi_impair.apply(sim, tp.p1.fwd);
    opts.lte_impair.apply(sim, tp.p2.fwd);
}

/// Runs the Fig. 17 scenario: an infinite MPTCP flow over WiFi (10 Mb/s,
/// 40 ms) + 4G (20 Mb/s, 100 ms) with bursty cross traffic on both links,
/// energy measured with the phone radio model.
pub fn run_wireless(cc: &CcChoice, opts: &WirelessOptions) -> FlowResult {
    let mut sim = Simulator::new(opts.seed);
    let tp = TwoPath::wireless(&mut sim);
    apply_wireless_loss(&mut sim, &tp, opts);
    let mut cross = ParetoOnOffConfig::paper_fig5b();
    cross.burst_rate_bps = opts.wifi_cross_bps;
    attach_pareto_cross_traffic(&mut sim, vec![tp.p1.fwd], cross);
    cross.burst_rate_bps = opts.lte_cross_bps;
    attach_pareto_cross_traffic(&mut sim, vec![tp.p2.fwd], cross);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0)
            .rcv_buf_bytes(opts.rcv_buf_bytes)
            .sample_every(SimDuration::from_millis(50)),
        cc.build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(opts.duration_s));
    let mut model = PhoneModel::nexus5_uplink();
    FlowResult::collect(&sim, flow, cc.label(), &mut model)
}

/// Aggregate host-level energy for a machine running `flows` in parallel
/// (used by the testbed figures where one machine hosts N senders).
pub fn host_energy(
    sim: &Simulator,
    flows: &[FlowHandle],
    model: &mut dyn PowerModel,
    n_ifaces: usize,
    bin_s: f64,
) -> EnergyReport {
    let horizon = sim.now().as_secs_f64();
    let mut series = HostLoadSeries::new(n_ifaces, bin_s, horizon);
    for f in flows {
        let iface_map: Vec<usize> = (0..n_ifaces).collect();
        series.add_flow(f.sender_ref(sim).samples(), &iface_map);
    }
    let last_finish = flows
        .iter()
        .filter_map(|f| f.finish_time(sim))
        .map(SimTime::as_secs_f64)
        .fold(0.0f64, f64::max);
    series.energy(model, if last_finish > 0.0 { Some(last_finish) } else { None })
}

/// Options for the §V-C hierarchical-Internet scenario (the setting the
/// compensative parameter φ is designed for).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchyOptions {
    /// RNG seed.
    pub seed: u64,
    /// Number of dual-homed end hosts.
    pub n_users: usize,
    /// Number of aggregation nodes.
    pub n_agg: usize,
    /// Access link rate, bits/second.
    pub access_bps: u64,
    /// Aggregation uplink rate, bits/second.
    pub agg_bps: u64,
    /// Shared backbone rate, bits/second (the concentration point).
    pub core_bps: u64,
    /// Run length, seconds.
    pub duration_s: f64,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        HierarchyOptions {
            seed: 1,
            n_users: 12,
            n_agg: 3,
            access_bps: 20_000_000,
            agg_bps: 60_000_000,
            core_bps: 150_000_000,
            duration_s: 30.0,
        }
    }
}

/// Result of the hierarchy scenario: fleet metrics plus backbone telemetry.
#[derive(Clone, Debug)]
pub struct HierarchyResult {
    /// Fleet-level metrics (end-device energy, aggregate goodput).
    pub fleet: FleetResult,
    /// Mean backbone queue occupancy over the run, packets.
    pub backbone_mean_queue: f64,
    /// Backbone utilization over the run.
    pub backbone_utilization: f64,
}

/// Runs the hierarchical-Internet scenario: every dual-homed user uploads a
/// long-lived flow through the shared backbone.
pub fn run_hierarchy(cc: &CcChoice, opts: &HierarchyOptions) -> HierarchyResult {
    let mut sim = Simulator::new(opts.seed);
    let access = LinkParams::new(opts.access_bps, SimDuration::from_millis(5)).queue(64);
    let agg = LinkParams::new(opts.agg_bps, SimDuration::from_millis(5)).queue(64);
    let core = LinkParams::new(opts.core_bps, SimDuration::from_millis(10)).queue(128);
    let h = Hierarchy::build(&mut sim, opts.n_users, opts.n_agg, access, agg, core);
    let flows: Vec<FlowHandle> = (0..opts.n_users)
        .map(|u| {
            attach_flow(
                &mut sim,
                FlowConfig::new(idx_u64(u)).sample_every(SimDuration::from_millis(50)),
                cc.build(2),
                &h.user_paths(u),
                SimDuration::from_millis((idx_u64(u) * 13) % 100),
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(opts.duration_s));
    let fleet = fleet_result(&sim, &flows, cc.label(), &WiredCpuModel::i7_3770());
    HierarchyResult {
        fleet,
        backbone_mean_queue: sim.world().link(h.backbone()).mean_queue_len(sim.now()),
        backbone_utilization: sim.world().link(h.backbone()).utilization(sim.now()),
    }
}

/// Options for the short-flow (mice) datacenter experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShortFlowOptions {
    /// RNG seed.
    pub seed: u64,
    /// FatTree arity.
    pub k: usize,
    /// Subflows per mouse.
    pub n_subflows: usize,
    /// The mice process.
    pub mice: ShortFlowConfig,
    /// Number of long-lived background elephants.
    pub n_elephants: usize,
    /// Safety horizon past the mice horizon, seconds.
    pub drain_s: f64,
}

impl Default for ShortFlowOptions {
    fn default() -> Self {
        ShortFlowOptions {
            seed: 1,
            k: 4,
            n_subflows: 2,
            mice: ShortFlowConfig::default(),
            n_elephants: 4,
            drain_s: 10.0,
        }
    }
}

/// Result of the short-flow experiment: flow-completion-time statistics.
#[derive(Clone, Debug)]
pub struct ShortFlowResult {
    /// Algorithm label.
    pub label: String,
    /// Completion times of finished mice, seconds (sorted).
    pub fct_s: Vec<f64>,
    /// Fraction of mice that completed.
    pub completion_rate: f64,
}

impl ShortFlowResult {
    /// FCT percentile (`p` in `[0, 1]`); NaN if nothing completed.
    pub fn fct_percentile(&self, p: f64) -> f64 {
        if self.fct_s.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.fct_s.len() - 1) as f64 * p).round() as usize;
        self.fct_s[idx]
    }
}

/// Runs Poisson mice over a FatTree whose links are partly occupied by
/// long-lived elephants — the mixed workload of real fabrics (Benson et
/// al.), measuring mouse flow-completion times under each algorithm.
pub fn run_short_flows(cc: &CcChoice, opts: &ShortFlowOptions) -> ShortFlowResult {
    use rand::Rng;
    let mut sim = Simulator::new(opts.seed);
    let params = LinkParams::new(100_000_000, SimDuration::from_micros(100)).queue(32);
    let ft = FatTree::build(&mut sim, opts.k, params);
    let hosts = ft.hosts();
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x517);
    // Background elephants.
    for e in 0..opts.n_elephants {
        let src = rng.gen_range(0..hosts);
        let mut dst = rng.gen_range(0..hosts);
        if dst == src {
            dst = (dst + 1) % hosts;
        }
        let paths = ft.sample_paths(src, dst, opts.n_subflows, &mut rng);
        let n = paths.len();
        attach_flow(
            &mut sim,
            FlowConfig::new(100_000 + e as u64)
                .min_rto(SimDuration::from_millis(10))
                .sample_every(SimDuration::from_millis(200)),
            cc.build(n),
            &paths,
            SimDuration::ZERO,
        );
    }
    // Mice.
    let schedule = short_flow_schedule(&opts.mice, &mut rng);
    let mice: Vec<FlowHandle> = schedule
        .iter()
        .enumerate()
        .map(|(i, sf)| {
            let src = rng.gen_range(0..hosts);
            let mut dst = rng.gen_range(0..hosts);
            if dst == src {
                dst = (dst + 1) % hosts;
            }
            let paths = ft.sample_paths(src, dst, opts.n_subflows, &mut rng);
            let n = paths.len();
            attach_flow(
                &mut sim,
                FlowConfig::new(i as u64)
                    .transfer_bytes(sf.bytes)
                    .min_rto(SimDuration::from_millis(10))
                    .sample_every(SimDuration::from_millis(200)),
                cc.build(n),
                &paths,
                sf.start,
            )
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(opts.mice.horizon_s + opts.drain_s));
    let mut fct: Vec<f64> = mice
        .iter()
        .filter_map(|f| {
            let s = f.sender_ref(&sim);
            match (s.started_at(), s.finished_at()) {
                (Some(a), Some(b)) => Some(b.saturating_since(a).as_secs_f64()),
                _ => None,
            }
        })
        .collect();
    fct.sort_by(f64::total_cmp);
    let completion_rate = if mice.is_empty() { 1.0 } else { fct.len() as f64 / mice.len() as f64 };
    ShortFlowResult { label: cc.label(), fct_s: fct, completion_rate }
}
