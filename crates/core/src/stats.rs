//! Summary statistics for experiment reporting (the paper presents Fig. 6 as
//! box-whisker plots).

/// A five-number summary with 1.5·IQR outlier detection, matching the
/// paper's box-whisker convention.
#[derive(Clone, Debug, PartialEq)]
pub struct FiveNumber {
    /// Smallest non-outlier.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest non-outlier.
    pub max: f64,
    /// Points outside `[q1 − 1.5·IQR, q3 + 1.5·IQR]`.
    pub outliers: Vec<f64>,
    /// NaN samples excluded from the summary (also surfaced through the
    /// `obs` counter registry as `GlobalCounters::nan_samples`).
    pub nan_samples: usize,
}

/// Linear-interpolation percentile over a sorted slice (`p ∈ [0, 1]`).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (idx - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

impl FiveNumber {
    /// Computes the summary of `values`.
    ///
    /// NaN samples are excluded and counted in
    /// [`FiveNumber::nan_samples`] rather than panicking — one degenerate
    /// cell must not take down an entire parallel sweep. If *every* sample
    /// is NaN, all five numbers are NaN and `nan_samples == values.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "five-number summary of an empty set");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let nan_samples = values.len() - sorted.len();
        if sorted.is_empty() {
            return FiveNumber {
                min: f64::NAN,
                q1: f64::NAN,
                median: f64::NAN,
                q3: f64::NAN,
                max: f64::NAN,
                outliers: Vec::new(),
                nan_samples,
            };
        }
        sorted.sort_by(f64::total_cmp);
        let q1 = percentile_sorted(&sorted, 0.25);
        let median = percentile_sorted(&sorted, 0.50);
        let q3 = percentile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let outliers: Vec<f64> =
            sorted.iter().copied().filter(|v| *v < lo_fence || *v > hi_fence).collect();
        let inliers: Vec<f64> =
            sorted.iter().copied().filter(|v| *v >= lo_fence && *v <= hi_fence).collect();
        let (min, max) = if inliers.is_empty() {
            (sorted[0], sorted[sorted.len() - 1])
        } else {
            (inliers[0], inliers[inliers.len() - 1])
        };
        // Degenerate-whisker convention: when an entire quartile consists of
        // outliers the whisker collapses onto the box edge rather than
        // crossing it.
        let min = min.min(q1);
        let max = max.max(q3);
        FiveNumber { min, q1, median, q3, max, outliers, nan_samples }
    }

    /// Formats the summary as a compact table cell. NaN exclusions are
    /// appended only when present, keeping clean tables unchanged.
    pub fn row(&self) -> String {
        let mut row = format!(
            "min={:.2} q1={:.2} med={:.2} q3={:.2} max={:.2} outliers={}",
            self.min,
            self.q1,
            self.median,
            self.q3,
            self.max,
            self.outliers.len()
        );
        if self.nan_samples > 0 {
            row.push_str(&format!(" nan={}", self.nan_samples));
        }
        row
    }
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
// Tests assert values produced by exact f64 arithmetic on small literals
// (window steps, order statistics of integer samples), so strict float
// comparison is the intended precision.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn five_number_of_known_set() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = FiveNumber::of(&v);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 5.0);
        assert!(f.outliers.is_empty());
    }

    #[test]
    fn outlier_detection_uses_iqr_fences() {
        let mut v = vec![10.0; 20];
        for (i, x) in v.iter_mut().enumerate() {
            *x += i as f64 * 0.1;
        }
        v.push(100.0); // far outlier
        let f = FiveNumber::of(&v);
        assert_eq!(f.outliers, vec![100.0]);
        assert!(f.max < 100.0);
    }

    #[test]
    fn single_value_summary() {
        let f = FiveNumber::of(&[7.0]);
        assert_eq!(f.min, 7.0);
        assert_eq!(f.median, 7.0);
        assert_eq!(f.max, 7.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138).abs() < 1e-3);
    }

    #[test]
    fn row_is_nonempty() {
        assert!(!FiveNumber::of(&[1.0, 2.0]).row().is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        let _ = FiveNumber::of(&[]);
    }

    #[test]
    fn nan_samples_are_excluded_and_counted_not_fatal() {
        let v = [1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0, 5.0];
        let f = FiveNumber::of(&v);
        assert_eq!(f.nan_samples, 2);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 5.0);
        assert!(f.row().contains("nan=2"), "{}", f.row());
        // A clean set reports no exclusions and an unchanged row format.
        let clean = FiveNumber::of(&[1.0, 2.0]);
        assert_eq!(clean.nan_samples, 0);
        assert!(!clean.row().contains("nan="));
    }

    #[test]
    fn all_nan_set_yields_nan_summary_without_panicking() {
        let f = FiveNumber::of(&[f64::NAN, f64::NAN]);
        assert_eq!(f.nan_samples, 2);
        assert!(f.median.is_nan() && f.min.is_nan() && f.max.is_nan());
        assert!(f.outliers.is_empty());
    }

    #[test]
    fn infinities_sort_fine_with_total_cmp() {
        let f = FiveNumber::of(&[f64::NEG_INFINITY, 1.0, 2.0, f64::INFINITY]);
        assert_eq!(f.nan_samples, 0);
        assert_eq!(f.median, 1.5);
    }
}
