//! DTS — Delay-based Traffic Shifting, the paper's §V-B contribution.
//!
//! DTS multiplies the Pareto-optimal window increase (`ψ = 1`, OLIA's base
//! term) by a sigmoid of the path-quality ratio `baseRTT_r / RTT_r`
//! (Equation (5)):
//!
//! ```text
//! ε_r = 2 / (1 + e^{−10·(baseRTT_r/RTT_r − 1/2)})
//! Δw_r = c·ε_r · (w_r/RTT_r²) / (Σ_k w_k/RTT_k)²      per ACK
//! ```
//!
//! A queue-free path (`ratio → 1`) gets `ε ≈ 2`; a badly congested path
//! (`ratio → 0`) gets `ε ≈ 0`, so window growth — and therefore traffic —
//! shifts to low-delay, low-energy paths. Since the ratio's long-run
//! expectation is ≈ ½ where `ε = 1`, choosing `c = 1` preserves the
//! TCP-friendliness condition (the paper's fairness argument in §V-B).
//!
//! Algorithm 1 in the paper computes `ε` in kernel fixed-point arithmetic
//! with a cubic Taylor expansion of `exp`; [`epsilon_fixed_point`] mirrors
//! that computation exactly (including its clamping behaviour far from the
//! midpoint), and the unit tests quantify where it diverges from the exact
//! sigmoid.

use congestion::{common, MultipathCongestionControl, SubflowCc};

/// Tunable parameters of DTS (the defaults are the paper's).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DtsConfig {
    /// Pareto-optimality scale `c` (the paper sets 1).
    pub c: f64,
    /// Sigmoid slope (the paper's Equation (5) uses 10).
    pub slope: f64,
    /// Sigmoid midpoint (the paper uses 1/2).
    pub midpoint: f64,
    /// Use the kernel-style fixed-point Taylor expansion of Algorithm 1
    /// instead of the exact exponential.
    pub fixed_point: bool,
}

impl Default for DtsConfig {
    fn default() -> Self {
        DtsConfig { c: 1.0, slope: 10.0, midpoint: 0.5, fixed_point: false }
    }
}

/// The exact Equation (5) factor for a quality ratio `baseRTT/RTT ∈ [0, 1]`.
pub fn epsilon_exact(ratio: f64, slope: f64, midpoint: f64) -> f64 {
    2.0 / (1.0 + (-slope * (ratio - midpoint)).exp())
}

/// Algorithm 1's integer-arithmetic `ε`: scales the ratio to
/// `x = 10·ratio − 5`, approximates `e^x` by the cubic Taylor polynomial in
/// per-cent fixed point (`100 + 100x + 50x² + 17x³`), and computes
/// `ε = 2·num/(100 + num)`, clamped into `[0, 2]` where the cubic goes
/// negative (deep congestion).
pub fn epsilon_fixed_point(ratio: f64) -> f64 {
    let x = 10.0 * ratio - 5.0;
    // Per-cent fixed point exactly as in the pseudo-code (coefficient 17 is
    // the kernel's integer rounding of 100/6).
    let num = 100.0 + 100.0 * x + 50.0 * x * x + 17.0 * x * x * x;
    if num <= 0.0 {
        return 0.0;
    }
    let den = 100.0 + num;
    (2.0 * num / den).clamp(0.0, 2.0)
}

/// The Delay-based Traffic Shifting congestion-control algorithm.
#[derive(Clone, Debug, Default)]
pub struct Dts {
    cfg: DtsConfig,
}

impl Dts {
    /// DTS with the paper's defaults (`c = 1`, exact sigmoid).
    pub fn new() -> Self {
        Dts::default()
    }

    /// DTS with custom parameters.
    pub fn with_config(cfg: DtsConfig) -> Self {
        Dts { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DtsConfig {
        &self.cfg
    }

    /// The ε factor for one subflow's current state.
    pub fn epsilon(&self, f: &SubflowCc) -> f64 {
        let ratio = f.rtt_ratio();
        if self.cfg.fixed_point {
            epsilon_fixed_point(ratio)
        } else {
            epsilon_exact(ratio, self.cfg.slope, self.cfg.midpoint)
        }
    }
}

impl MultipathCongestionControl for Dts {
    fn name(&self) -> &'static str {
        "dts"
    }

    fn on_ack(&mut self, r: usize, flows: &mut [SubflowCc], newly_acked: u64, _ecn: bool) {
        if common::slow_start(&mut flows[r], newly_acked) {
            return;
        }
        let psi = self.cfg.c * self.epsilon(&flows[r]);
        let delta = common::model_increase(psi, r, flows);
        common::increase(&mut flows[r], delta, newly_acked);
    }

    fn on_loss(&mut self, r: usize, flows: &mut [SubflowCc]) {
        common::halve(&mut flows[r]);
    }

    fn fresh_box(&self) -> Box<dyn MultipathCongestionControl> {
        Box::new(Dts::with_config(self.cfg))
    }
}

#[cfg(test)]
// Tests assert values produced by exact f64 arithmetic on small literals
// (window steps, order statistics of integer samples), so strict float
// comparison is the intended precision.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_boundary_values() {
        // Pristine path: ratio 1 → ε ≈ 2/(1+e^-5) ≈ 1.9867.
        let e1 = epsilon_exact(1.0, 10.0, 0.5);
        assert!((e1 - 1.9867).abs() < 1e-3, "{e1}");
        // Midpoint: ε = 1 exactly.
        assert!((epsilon_exact(0.5, 10.0, 0.5) - 1.0).abs() < 1e-12);
        // Deep congestion: ratio → 0 → ε ≈ 0.0134.
        let e0 = epsilon_exact(0.0, 10.0, 0.5);
        assert!(e0 < 0.02, "{e0}");
    }

    #[test]
    fn epsilon_is_monotone_increasing() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let r = i as f64 / 100.0;
            let e = epsilon_exact(r, 10.0, 0.5);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn fixed_point_matches_exact_near_midpoint() {
        // Algorithm 1's cubic Taylor is accurate around x = 0 (ratio = 1/2).
        for ratio in [0.4, 0.45, 0.5, 0.55, 0.6] {
            let exact = epsilon_exact(ratio, 10.0, 0.5);
            let fixed = epsilon_fixed_point(ratio);
            assert!((exact - fixed).abs() < 0.08, "ratio {ratio}: exact {exact} vs fixed {fixed}");
        }
    }

    #[test]
    fn fixed_point_clamps_in_deep_congestion() {
        // The cubic goes negative for small ratios; Algorithm 1's division
        // would misbehave — our port clamps to 0 (no window growth on a
        // terrible path, which is the design intent).
        assert_eq!(epsilon_fixed_point(0.0), 0.0);
        assert!(epsilon_fixed_point(1.0) <= 2.0);
    }

    #[test]
    fn expectation_of_epsilon_is_near_one() {
        // The paper's c = 1 fairness argument: E[ε(U)] ≈ 1 for U ~ Uniform(0,1)
        // by the sigmoid's symmetry around (1/2, 1).
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|i| epsilon_exact((i as f64 + 0.5) / n as f64, 10.0, 0.5)).sum::<f64>()
                / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "E[ε] = {mean}");
    }

    #[test]
    fn dts_reduces_toward_olia_on_fresh_path() {
        // ratio = 1 → ψ ≈ 2: DTS grows up to 2× OLIA's base on a pristine
        // path, and single-path behaves like an aggressive Reno.
        let mut cc = Dts::new();
        let mut flows = [SubflowCc::new()];
        flows[0].cwnd = 10.0;
        flows[0].ssthresh = 1.0;
        flows[0].observe_rtt(0.1);
        let before = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let delta = flows[0].cwnd - before;
        assert!((delta - 1.9867 / 10.0).abs() < 1e-3, "delta {delta}");
    }

    #[test]
    fn dts_starves_congested_path() {
        let mut cc = Dts::new();
        let mk = |rtt: f64, base: f64| {
            let mut f = SubflowCc::new();
            f.cwnd = 10.0;
            f.ssthresh = 1.0;
            f.observe_rtt(base);
            f.observe_rtt(rtt);
            f
        };
        // Path 0 pristine, path 1 heavily queued (ratio 0.2).
        let mut flows = [mk(0.05, 0.05), mk(0.25, 0.05)];
        let b0 = flows[0].cwnd;
        cc.on_ack(0, &mut flows, 1, false);
        let d_good = flows[0].cwnd - b0;
        let b1 = flows[1].cwnd;
        cc.on_ack(1, &mut flows, 1, false);
        let d_bad = flows[1].cwnd - b1;
        assert!(d_good > 10.0 * d_bad, "good {d_good} should dwarf bad {d_bad}");
    }

    #[test]
    fn loss_halves() {
        let mut cc = Dts::new();
        let mut flows = [SubflowCc::new()];
        flows[0].cwnd = 24.0;
        cc.on_loss(0, &mut flows);
        assert_eq!(flows[0].cwnd, 12.0);
    }
}
