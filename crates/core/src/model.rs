//! The paper's general congestion-control model (§IV, Equation (3)) and its
//! per-algorithm parameter decompositions.
//!
//! Equation (3) writes every window-based multipath algorithm as
//!
//! ```text
//! dx_r/dt = ψ_r(x)·x_r² / (RTT_r²·(Σ_k x_k)²) − β_r(x)·λ_r·x_r² − φ_r(x)
//! ```
//!
//! with a traffic-shifting parameter `ψ_r`, a decrease parameter `β_r`, a
//! congestion signal `λ_r`, and a compensative parameter `φ_r`. The paper's
//! §IV table of decompositions is reproduced here verbatim as [`Psi`]
//! variants; the `congestion` crate's per-ACK implementations and these
//! fluid forms are cross-validated in the test suite.

use crate::dts::{epsilon_exact, DtsConfig};
use crate::dts_phi::DtsPhiConfig;

/// A read-only view of one multipath user's state for parameter evaluation.
#[derive(Clone, Copy, Debug)]
pub struct FlowView<'a> {
    /// Per-path send rates `x_r` (packets/second).
    pub x: &'a [f64],
    /// Per-path round-trip times (seconds).
    pub rtt: &'a [f64],
    /// Per-path minimum RTTs (seconds).
    pub base_rtt: &'a [f64],
}

impl FlowView<'_> {
    /// Number of paths.
    pub fn n(&self) -> usize {
        self.x.len()
    }

    /// Window of path `r`: `w_r = x_r·RTT_r`.
    pub fn w(&self, r: usize) -> f64 {
        self.x[r] * self.rtt[r]
    }

    /// `Σ_k x_k`.
    pub fn sum_x(&self) -> f64 {
        self.x.iter().sum()
    }

    /// `Σ_k w_k`.
    pub fn sum_w(&self) -> f64 {
        (0..self.n()).map(|k| self.w(k)).sum()
    }

    /// `max_k x_k`.
    pub fn max_x(&self) -> f64 {
        self.x.iter().copied().fold(0.0, f64::max)
    }

    /// `min_k RTT_k`.
    pub fn min_rtt(&self) -> f64 {
        self.rtt.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The traffic-shifting parameter `ψ_r` of each algorithm, exactly as the
/// paper's §IV decomposition table states them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Psi {
    /// EWTCP: `ψ_r = (Σx)² / (x_r²·√n)`.
    Ewtcp,
    /// Coupled (Kelly/Voice): `ψ_r = RTT_r²(Σx)²/(Σw)²`.
    Coupled,
    /// LIA: `ψ_r = max_k(w_k/RTT_k²)·RTT_r²/w_r`.
    Lia,
    /// OLIA: `ψ_r = 1` (the Pareto-optimal base).
    Olia,
    /// Balia: `ψ_r = 2/5 + α/2 + α²/10` with `α = max_k x_k / x_r`.
    Balia,
    /// ecMTCP: `ψ_r = RTT_r³(Σx)²/(n·min_k RTT_k·w_r·Σw)`.
    EcMtcp,
    /// DTS (this paper): `ψ_r = c·ε_r` with the Equation (5) sigmoid.
    Dts(DtsConfig),
}

impl Psi {
    /// Evaluates `ψ_r` on the given state.
    pub fn eval(&self, r: usize, v: &FlowView<'_>) -> f64 {
        let n = v.n() as f64;
        match self {
            Psi::Ewtcp => {
                let sx = v.sum_x();
                (sx * sx) / (v.x[r] * v.x[r] * n.sqrt())
            }
            Psi::Coupled => {
                let sx = v.sum_x();
                let sw = v.sum_w();
                v.rtt[r] * v.rtt[r] * sx * sx / (sw * sw)
            }
            Psi::Lia => {
                let best =
                    (0..v.n()).map(|k| v.w(k) / (v.rtt[k] * v.rtt[k])).fold(0.0f64, f64::max);
                best * v.rtt[r] * v.rtt[r] / v.w(r)
            }
            Psi::Olia => 1.0,
            Psi::Balia => {
                let alpha = (v.max_x() / v.x[r]).max(1.0);
                0.4 + alpha / 2.0 + alpha * alpha / 10.0
            }
            Psi::EcMtcp => {
                let sx = v.sum_x();
                let sw = v.sum_w();
                v.rtt[r].powi(3) * sx * sx / (n * v.min_rtt() * v.w(r) * sw)
            }
            Psi::Dts(cfg) => {
                let ratio = (v.base_rtt[r] / v.rtt[r]).clamp(0.0, 1.0);
                cfg.c * epsilon_exact(ratio, cfg.slope, cfg.midpoint)
            }
        }
    }

    /// The human-readable algorithm name.
    pub fn name(&self) -> &'static str {
        match self {
            Psi::Ewtcp => "ewtcp",
            Psi::Coupled => "coupled",
            Psi::Lia => "lia",
            Psi::Olia => "olia",
            Psi::Balia => "balia",
            Psi::EcMtcp => "ecmtcp",
            Psi::Dts(_) => "dts",
        }
    }
}

/// The compensative parameter `φ_r`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Phi {
    /// `φ_r = 0` — all the §IV baseline algorithms.
    Zero,
    /// The §V-C energy price `φ_r = κ·x_r²·(ρ + η·(d̂_r − D)⁺/D)` with the
    /// path queueing delay `d̂_r = RTT_r − baseRTT_r`.
    EnergyPrice(DtsPhiConfig),
}

impl Phi {
    /// Evaluates `φ_r` on the given state.
    pub fn eval(&self, r: usize, v: &FlowView<'_>) -> f64 {
        match self {
            Phi::Zero => 0.0,
            Phi::EnergyPrice(cfg) => {
                let d_hat = (v.rtt[r] - v.base_rtt[r]).max(0.0);
                let excess = (d_hat - cfg.queue_target_s).max(0.0);
                let grad = cfg.rho + cfg.eta * excess / cfg.queue_target_s;
                cfg.kappa * v.x[r] * v.x[r] * grad
            }
        }
    }
}

/// A fully specified instance of Equation (3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CcModel {
    /// Traffic-shifting parameter.
    pub psi: Psi,
    /// Decrease parameter `β` (½ for every loss-based algorithm here).
    pub beta: f64,
    /// Compensative parameter.
    pub phi: Phi,
}

impl CcModel {
    /// The standard loss-based model with `β = ½`, `φ = 0`.
    pub fn loss_based(psi: Psi) -> Self {
        CcModel { psi, beta: 0.5, phi: Phi::Zero }
    }

    /// The paper's DTS model (Equation (5) inside Equation (3)).
    pub fn dts(cfg: DtsConfig) -> Self {
        CcModel::loss_based(Psi::Dts(cfg))
    }

    /// The paper's extended DTS-Φ model (Equation (9)).
    pub fn dts_phi(cfg: DtsPhiConfig) -> Self {
        CcModel { psi: Psi::Dts(cfg.dts), beta: 0.5, phi: Phi::EnergyPrice(cfg) }
    }

    /// `dx_r/dt` per Equation (3) given the congestion signal `λ_r`.
    pub fn dxdt(&self, r: usize, v: &FlowView<'_>, lambda_r: f64) -> f64 {
        let x = v.x[r];
        let sx = v.sum_x();
        if sx <= 0.0 {
            return 0.0;
        }
        let inc = self.psi.eval(r, v) * x * x / (v.rtt[r] * v.rtt[r] * sx * sx);
        let dec = self.beta * lambda_r * x * x;
        inc - dec - self.phi.eval(r, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(x: &'a [f64], rtt: &'a [f64]) -> FlowView<'a> {
        FlowView { x, rtt, base_rtt: rtt }
    }

    #[test]
    fn all_psi_reduce_to_one_on_single_symmetric_path() {
        // On one path at equilibrium every TCP-friendly ψ must be 1 (Reno).
        let x = [100.0];
        let rtt = [0.1];
        let v = view(&x, &rtt);
        for psi in [Psi::Ewtcp, Psi::Coupled, Psi::Lia, Psi::Olia, Psi::Balia, Psi::EcMtcp] {
            let val = psi.eval(0, &v);
            assert!((val - 1.0).abs() < 1e-9, "{}: {val}", psi.name());
        }
    }

    #[test]
    fn psi_values_on_two_equal_paths() {
        let x = [100.0, 100.0];
        let rtt = [0.1, 0.1];
        let v = view(&x, &rtt);
        // EWTCP: (200)²/(100²·√2) = 4/√2 = 2.828.
        assert!((Psi::Ewtcp.eval(0, &v) - 4.0 / 2f64.sqrt()).abs() < 1e-9);
        // Coupled: 0.01·4e4/(20·20)·... w = 10 each, Σw = 20:
        // 0.01·40000/400 = 1.
        assert!((Psi::Coupled.eval(0, &v) - 1.0).abs() < 1e-9);
        // LIA: best = 10/0.01 = 1000; 1000·0.01/10 = 1.
        assert!((Psi::Lia.eval(0, &v) - 1.0).abs() < 1e-9);
        // Balia: α = 1 → 0.4+0.5+0.1 = 1.
        assert!((Psi::Balia.eval(0, &v) - 1.0).abs() < 1e-9);
        // ecMTCP: 0.001·4e4/(2·0.1·10·20) = 40/40 = 1.
        assert!((Psi::EcMtcp.eval(0, &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dts_psi_tracks_rtt_ratio() {
        let x = [100.0, 100.0];
        let rtt = [0.1, 0.2];
        let base = [0.1, 0.1];
        let v = FlowView { x: &x, rtt: &rtt, base_rtt: &base };
        let psi = Psi::Dts(DtsConfig::default());
        let good = psi.eval(0, &v); // ratio 1
        let bad = psi.eval(1, &v); // ratio 0.5
        assert!(good > 1.9 && (bad - 1.0).abs() < 1e-9, "good {good} bad {bad}");
    }

    #[test]
    fn phi_energy_price_scales_with_rate_squared() {
        let cfg = DtsPhiConfig::default();
        let phi = Phi::EnergyPrice(cfg);
        let x1 = [100.0];
        let x2 = [200.0];
        let rtt = [0.1];
        let p1 = phi.eval(0, &view(&x1, &rtt));
        let p2 = phi.eval(0, &view(&x2, &rtt));
        // No queue excess (rtt == base): gradient is ρ; φ ∝ x².
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dxdt_zero_at_reno_equilibrium() {
        // Single Reno path: equilibrium x* = √(2ψ/λ)/RTT. With ψ=1, λ chosen
        // so x* = 100: λ = 2/(x*·RTT)² = 2/100.
        let model = CcModel::loss_based(Psi::Olia);
        let x = [100.0];
        let rtt = [0.1];
        let lambda = 2.0 / (100.0f64 * 0.1).powi(2);
        let d = model.dxdt(0, &view(&x, &rtt), lambda);
        assert!(d.abs() < 1e-9, "dxdt {d}");
    }
}
