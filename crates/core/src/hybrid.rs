//! Hybrid fluid/packet simulation engine.
//!
//! The packet-level stack (`netsim` + `transport`) is exact but costs
//! O(packets); the Equation-(3) fluid solver ([`crate::fluid`]) is O(paths)
//! per RK4 step but only describes long-lived flows near their operating
//! point. Datacenter-scale energy studies (FatTree k = 32, 10⁵ concurrent
//! flows) need both: the long-lived elephants that dominate energy are
//! integrated as fluids, while short/transient flows — whose slow-start and
//! RTO dynamics the fluid model cannot see — run packet-by-packet.
//!
//! [`HybridEngine`] advances both regimes on one deterministic clock in
//! fixed *epochs* and exchanges state at the boundary each epoch:
//!
//! * **fluid → packet**: aggregate fluid link rates are installed as
//!   background load on the packet links ([`netsim::Link::set_background_bps`]),
//!   stretching packet serialization as if the fluid traffic shared the
//!   wire;
//! * **packet → fluid**: measured packet rates reduce the capacity the
//!   fluid links expose, and packet queueing inflates fluid path RTTs via an
//!   M/M/1 proxy; packet flows that outlive [`HybridConfig::handoff_age_s`]
//!   are frozen ([`transport::FlowHandle::halt`]) and re-born as fluid flows
//!   seeded with their measured rate and RTT
//!   ([`transport::MptcpSender::handoff_state`]).
//!
//! The coupling is explicit (each side sees the other's previous epoch), so
//! one epoch of lag is inherent; epochs should be a few RTTs long. All state
//! derives from the simulator clock and seeded RNG — same seed, same
//! topology, same call sequence gives bit-identical results.

use crate::fluid::{FluidFlow, FluidLink, FluidNet, FluidPath, FluidSolver, X_MIN};
use crate::model::CcModel;
use crate::model::Psi;
use crate::scenarios::CcChoice;
use congestion::AlgorithmKind;
use energy_model::{PathLoad, PowerModel, WiredCpuModel};
use netsim::{SimDuration, SimTime, Simulator};
use obs::HybridCounters;
use transport::{attach_flow, FlowConfig, FlowHandle, PathSpec};

/// Tuning knobs for the hybrid engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridConfig {
    /// Coupling epoch length, seconds. Boundary state (background load,
    /// residual capacity, handoffs) is exchanged once per epoch, so this
    /// should span a few RTTs of the topology.
    pub epoch_s: f64,
    /// RK4 step for the fluid integration, seconds.
    pub fluid_dt: f64,
    /// Packet flows older than this are handed off to the fluid regime
    /// (provided their algorithm has an Equation-(3) form).
    pub handoff_age_s: f64,
    /// Classification threshold: bounded transfers at or below this many
    /// bytes stay packet-level; larger or unbounded flows go fluid.
    pub short_flow_max_bytes: u64,
    /// MSS used to convert between packets/second and bits/second.
    pub mss_bytes: u32,
    /// ACK wire size used when deriving path propagation RTTs.
    pub ack_bytes: u32,
    /// Target utilization for the fluid link price calibration
    /// ([`FluidLink::calibrated`]).
    pub target_util: f64,
    /// RTT used for the price calibration — pick the typical path RTT of
    /// the topology so single-flow fluid equilibria land near
    /// `target_util · capacity`.
    pub calib_rtt_s: f64,
    /// Fluid background load installed on a packet link is capped at this
    /// fraction of the link's nominal bandwidth, so packet flows always
    /// keep a residual.
    pub bg_cap_frac: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            epoch_s: 0.25,
            fluid_dt: 2e-4,
            handoff_age_s: 1.0,
            short_flow_max_bytes: 1 << 20,
            mss_bytes: 1500,
            ack_bytes: 40,
            target_util: 0.9,
            calib_rtt_s: 0.01,
            bg_cap_frac: 0.95,
        }
    }
}

/// Which engine a flow is simulated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Integrated in the Equation-(3) fluid solver.
    Fluid,
    /// Simulated packet-by-packet in `netsim`/`transport`.
    Packet,
}

/// Classifies a flow by its expected transfer size: bounded transfers up to
/// [`HybridConfig::short_flow_max_bytes`] are packet-level (their transient
/// behavior dominates); larger or unbounded flows are fluid.
pub fn classify(transfer_bytes: Option<u64>, cfg: &HybridConfig) -> Regime {
    match transfer_bytes {
        Some(b) if b <= cfg.short_flow_max_bytes => Regime::Packet,
        _ => Regime::Fluid,
    }
}

/// The Equation-(3) fluid form of a packet-level algorithm choice, or `None`
/// for algorithms the paper's §IV table does not decompose (DCTCP, wVegas,
/// DWC). Reno maps to ψ = 1, which on a single path *is* Reno.
pub fn fluid_model_of(cc: &CcChoice) -> Option<CcModel> {
    match cc {
        CcChoice::Base(kind) => match kind {
            AlgorithmKind::Reno | AlgorithmKind::Olia => Some(CcModel::loss_based(Psi::Olia)),
            AlgorithmKind::Lia => Some(CcModel::loss_based(Psi::Lia)),
            AlgorithmKind::Ewtcp => Some(CcModel::loss_based(Psi::Ewtcp)),
            AlgorithmKind::Coupled => Some(CcModel::loss_based(Psi::Coupled)),
            AlgorithmKind::Balia => Some(CcModel::loss_based(Psi::Balia)),
            AlgorithmKind::EcMtcp => Some(CcModel::loss_based(Psi::EcMtcp)),
            // DCTCP, wVegas, DWC have no §IV decomposition and stay
            // packet-level; a new algorithm must pick a side here. The
            // wildcard exists only because AlgorithmKind is non_exhaustive.
            AlgorithmKind::Dctcp | AlgorithmKind::WVegas | AlgorithmKind::Dwc => None,
            _ => None,
        },
        CcChoice::Dts(cfg) => Some(CcModel::dts(*cfg)),
        CcChoice::DtsPhi(cfg) => Some(CcModel::dts_phi(*cfg)),
    }
}

/// Propagation-plus-serialization round trip of one [`PathSpec`]: full-size
/// segments forward, ACKs back. This is the fluid path's base RTT.
pub fn path_prop_rtt(sim: &Simulator, path: &PathSpec, mss_bytes: u32, ack_bytes: u32) -> f64 {
    let w = sim.world();
    let mut rtt = 0.0;
    for &l in &path.fwd {
        let c = w.link(l).config();
        rtt += c.propagation.as_secs_f64() + c.serialization(mss_bytes).as_secs_f64();
    }
    for &l in &path.rev {
        let c = w.link(l).config();
        rtt += c.propagation.as_secs_f64() + c.serialization(ack_bytes).as_secs_f64();
    }
    rtt
}

/// Book-keeping for one packet-regime flow.
#[derive(Clone, Debug)]
struct PacketFlowMeta {
    handle: FlowHandle,
    src_host: usize,
    attached_at: SimTime,
    /// Fluid form of the flow's algorithm; `None` pins it to the packet
    /// regime forever.
    fluid_model: Option<CcModel>,
    /// Propagation RTT per path, the fallback when measurements are absent.
    prop_rtts: Vec<f64>,
    /// Forward link lists per path, for the fluid re-birth.
    fwd_links: Vec<Vec<usize>>,
    handed_off: bool,
    prev_acked: u64,
    prev_sub_acked: Vec<u64>,
}

/// The hybrid fluid/packet engine: owns the packet simulator and the fluid
/// net, advances both in lock-step epochs, and accounts host energy and
/// delivered bits across the two regimes.
pub struct HybridEngine {
    cfg: HybridConfig,
    sim: Simulator,
    net: FluidNet,
    /// Flat per-path fluid rates, in the same order as `net`'s paths.
    x_flat: Vec<f64>,
    /// Nominal per-link capacity in packets/second, indexed by link id.
    nominal_cap_pps: Vec<f64>,
    link_queue_pkts: Vec<usize>,
    prev_tx_bytes: Vec<u64>,
    /// Packet-side rate per link measured over the previous epoch, pkts/s.
    pkt_rate_pps: Vec<f64>,
    /// Aggregate fluid rate per link after the last integration, pkts/s.
    fluid_y: Vec<f64>,
    /// Source host of each fluid flow (for per-host energy attribution).
    fluid_hosts: Vec<usize>,
    packet: Vec<PacketFlowMeta>,
    power: WiredCpuModel,
    n_hosts: usize,
    energy_j: f64,
    delivered_bits: f64,
    counters: HybridCounters,
    load_buf: Vec<PathLoad>,
}

impl HybridEngine {
    /// Wraps a fully built simulator (topology attached, no flows yet).
    /// Every `netsim` link is mirrored as a calibrated fluid link;
    /// `n_hosts` hosts are charged idle power whether or not they carry
    /// flows.
    pub fn new(sim: Simulator, n_hosts: usize, power: WiredCpuModel, cfg: HybridConfig) -> Self {
        let n_links = sim.world().link_count();
        let mut net = FluidNet::new();
        let mut nominal_cap_pps = Vec::with_capacity(n_links);
        let mut link_queue_pkts = Vec::with_capacity(n_links);
        let mut prev_tx_bytes = Vec::with_capacity(n_links);
        for l in 0..n_links {
            let link = sim.world().link(l);
            let bw_bps = link.config().bandwidth_bps;
            let cap_pps = bw_bps as f64 / (8.0 * f64::from(cfg.mss_bytes));
            net.add_link(FluidLink::calibrated(cap_pps, cfg.calib_rtt_s, cfg.target_util));
            nominal_cap_pps.push(cap_pps);
            link_queue_pkts.push(link.config().queue_limit_pkts);
            prev_tx_bytes.push(link.stats().tx_bytes);
        }
        HybridEngine {
            cfg,
            sim,
            net,
            x_flat: Vec::new(),
            nominal_cap_pps,
            link_queue_pkts,
            prev_tx_bytes,
            pkt_rate_pps: vec![0.0; n_links],
            fluid_y: vec![0.0; n_links],
            fluid_hosts: Vec::new(),
            packet: Vec::new(),
            power,
            n_hosts,
            energy_j: 0.0,
            delivered_bits: 0.0,
            counters: HybridCounters::default(),
            load_buf: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// The packet simulator (read-only).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// The packet simulator, for attaching extra instrumentation.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The fluid net (links mirror simulator link ids).
    pub fn net(&self) -> &FluidNet {
        &self.net
    }

    /// Flat per-path fluid rates, packets/second.
    pub fn fluid_rates(&self) -> &[f64] {
        &self.x_flat
    }

    /// Host energy accumulated so far, joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_j
    }

    /// Bits delivered across both regimes so far.
    pub fn delivered_bits(&self) -> f64 {
        self.delivered_bits
    }

    /// Energy efficiency so far, joules per gigabit (∞ before any delivery).
    pub fn joules_per_gbit(&self) -> f64 {
        if self.delivered_bits > 0.0 {
            self.energy_j / (self.delivered_bits / 1e9)
        } else {
            f64::INFINITY
        }
    }

    /// The observability counters.
    pub fn counters(&self) -> HybridCounters {
        self.counters
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Adds a flow directly to the fluid regime with initial per-path rate
    /// `x0_pps`, returning the fluid flow index. Path base RTTs come from
    /// the topology ([`path_prop_rtt`]); the fluid links are the forward
    /// (data-direction) links.
    pub fn add_fluid_flow(
        &mut self,
        model: CcModel,
        paths: &[PathSpec],
        x0_pps: f64,
        src_host: usize,
    ) -> usize {
        assert!(!paths.is_empty(), "a fluid flow needs at least one path");
        let mut fps = Vec::with_capacity(paths.len());
        for p in paths {
            let rtt = path_prop_rtt(&self.sim, p, self.cfg.mss_bytes, self.cfg.ack_bytes);
            fps.push(FluidPath::new(p.fwd.clone(), rtt));
            self.x_flat.push(x0_pps.max(X_MIN));
        }
        self.fluid_hosts.push(src_host);
        self.net.add_flow(FluidFlow { model, paths: fps })
    }

    /// Attaches a flow to the packet simulator and registers it for epoch
    /// accounting and eventual handoff. `cc` both builds the per-ACK
    /// algorithm and determines the fluid form used if the flow outlives
    /// [`HybridConfig::handoff_age_s`].
    pub fn add_packet_flow(
        &mut self,
        cfg: FlowConfig,
        cc: &CcChoice,
        paths: &[PathSpec],
        start_after: SimDuration,
    ) -> FlowHandle {
        self.add_packet_flow_from(cfg, cc, paths, start_after, 0)
    }

    /// [`Self::add_packet_flow`] with an explicit source host for energy
    /// attribution.
    pub fn add_packet_flow_from(
        &mut self,
        cfg: FlowConfig,
        cc: &CcChoice,
        paths: &[PathSpec],
        start_after: SimDuration,
        src_host: usize,
    ) -> FlowHandle {
        let prop_rtts = paths
            .iter()
            .map(|p| path_prop_rtt(&self.sim, p, self.cfg.mss_bytes, self.cfg.ack_bytes))
            .collect();
        let fwd_links = paths.iter().map(|p| p.fwd.clone()).collect();
        let n_paths = paths.len();
        let algo = cc.build(n_paths);
        let handle = attach_flow(&mut self.sim, cfg, algo, paths, start_after);
        self.packet.push(PacketFlowMeta {
            handle,
            src_host,
            attached_at: self.sim.now() + start_after,
            fluid_model: fluid_model_of(cc),
            prop_rtts,
            fwd_links,
            handed_off: false,
            prev_acked: 0,
            prev_sub_acked: vec![0; n_paths],
        });
        self.counters.packet_flows += 1;
        handle
    }

    /// Adds a flow to whichever regime [`classify`] picks (falling back to
    /// the packet regime when the algorithm has no fluid form), returning
    /// the regime chosen. Fluid flows start at the rate floor and grow via
    /// the ODE.
    pub fn add_flow(
        &mut self,
        cfg: FlowConfig,
        cc: &CcChoice,
        paths: &[PathSpec],
        start_after: SimDuration,
        src_host: usize,
    ) -> Regime {
        let bytes = cfg.total_pkts.map(|p| p.saturating_mul(u64::from(cfg.mss_bytes)));
        match (classify(bytes, &self.cfg), fluid_model_of(cc)) {
            (Regime::Fluid, Some(model)) => {
                self.add_fluid_flow(model, paths, X_MIN, src_host);
                Regime::Fluid
            }
            (Regime::Fluid, None) | (Regime::Packet, _) => {
                self.add_packet_flow_from(cfg, cc, paths, start_after, src_host);
                Regime::Packet
            }
        }
    }

    /// Advances both regimes by one epoch: recalibrates fluid links against
    /// measured packet load, integrates the fluid ODE, installs the fluid
    /// rates as packet background load, runs the packet simulator to the
    /// epoch boundary, accounts energy/delivery, and performs handoffs.
    pub fn advance_epoch(&mut self) {
        let epoch_s = self.cfg.epoch_s;
        let epoch_index = self.counters.epochs + 1;
        let end_s = epoch_s * epoch_index as f64;
        let epoch_end = SimTime::from_secs_f64(end_s);

        // (1) Fluid links see the capacity packet traffic left over last
        // epoch (explicit coupling: one epoch of lag), floored at 5 % so a
        // saturated packet link never erases the fluid regime entirely.
        for l in 0..self.net.links.len() {
            let nominal = self.nominal_cap_pps[l];
            let residual = (nominal - self.pkt_rate_pps[l]).max(0.05 * nominal);
            self.net.links[l] =
                FluidLink::calibrated(residual, self.cfg.calib_rtt_s, self.cfg.target_util);
        }

        // (2) Inflate fluid path RTTs with an M/M/1 queueing proxy driven by
        // the previous epoch's aggregate rates: wait ≈ ρ/(1−ρ) service
        // times, capped at a full queue.
        let qdelay: Vec<f64> = (0..self.net.links.len())
            .map(|l| {
                let cap = self.net.links[l].capacity;
                let rho = ((self.fluid_y[l] + self.pkt_rate_pps[l]) / cap).min(0.99);
                let wait = rho / (1.0 - rho) / cap;
                wait.min(self.link_queue_pkts[l] as f64 / self.nominal_cap_pps[l])
            })
            .collect();
        for flow in &mut self.net.flows {
            for p in &mut flow.paths {
                p.rtt = p.base_rtt + p.links.iter().map(|&l| qdelay[l]).sum::<f64>();
            }
        }

        // (3) Integrate the fluid regime across the epoch.
        let steps = (epoch_s / self.cfg.fluid_dt).round() as usize;
        if !self.x_flat.is_empty() {
            let mut solver = FluidSolver::from_flat_state(&self.net, &self.x_flat);
            solver.run(self.cfg.fluid_dt, steps);
            self.counters.fluid_steps += steps as u64;
            self.counters.price_cap_hits += solver.price_cap_hits();
            self.fluid_y.copy_from_slice(solver.link_rates());
            self.x_flat.copy_from_slice(solver.x());
        } else {
            self.fluid_y.iter_mut().for_each(|y| *y = 0.0);
        }

        // (4) Fluid traffic becomes background load on the packet links.
        let mut bg_links = 0u64;
        for l in 0..self.fluid_y.len() {
            let bw_bps = self.nominal_cap_pps[l] * 8.0 * f64::from(self.cfg.mss_bytes);
            let bg = (self.fluid_y[l] * 8.0 * f64::from(self.cfg.mss_bytes))
                .min(self.cfg.bg_cap_frac * bw_bps);
            let bg_u = if bg > 0.0 { bg.round() as u64 } else { 0 };
            if bg_u > 0 {
                bg_links += 1;
            }
            self.sim.world_mut().link_mut(l).set_background_bps(bg_u);
        }
        self.counters.background_links = bg_links;

        // (5) Packet regime runs to the epoch boundary.
        self.sim.run_until(epoch_end);

        // (6) Energy and delivery accounting for this epoch.
        self.account_epoch(end_s);

        // (7) Handoffs: long-lived packet flows cross into the fluid regime.
        self.do_handoffs();

        // (8) Measure packet-side link rates for the next epoch's coupling.
        for l in 0..self.prev_tx_bytes.len() {
            let tx = self.sim.world().link(l).stats().tx_bytes;
            let delta = tx - self.prev_tx_bytes[l];
            self.prev_tx_bytes[l] = tx;
            self.pkt_rate_pps[l] = delta as f64 / (f64::from(self.cfg.mss_bytes) * epoch_s);
        }

        self.counters.epochs = epoch_index;
        self.counters.fluid_flows = self.net.flows.len() as u64;
    }

    /// Advances `n` epochs.
    pub fn run_epochs(&mut self, n: usize) {
        for _ in 0..n {
            self.advance_epoch();
        }
    }

    /// Integrates host power over the epoch that just ran: every host pays
    /// idle; each flow's source host pays the dynamic (above-idle) power of
    /// its load. One flow per source host is the intended workload shape
    /// (permutation traffic), matching `scenarios::host_energy`.
    fn account_epoch(&mut self, at_s: f64) {
        let epoch_s = self.cfg.epoch_s;
        let mss_bits = 8.0 * f64::from(self.cfg.mss_bytes);
        let idle_w = self.power.idle_w;
        let mut energy = idle_w * self.n_hosts as f64 * epoch_s;

        // Fluid flows: loads straight from the integrated rates.
        let mut off = 0;
        for flow in &self.net.flows {
            let k = flow.paths.len();
            let xs = &self.x_flat[off..off + k];
            off += k;
            self.load_buf.clear();
            for (r, p) in flow.paths.iter().enumerate() {
                let bps = xs[r] * mss_bits;
                self.load_buf.push(PathLoad {
                    throughput_bps: bps,
                    rtt_s: p.rtt,
                    base_rtt_s: p.base_rtt,
                    active: true,
                });
                self.delivered_bits += bps * epoch_s;
            }
            energy += (self.power.power_w(at_s, &self.load_buf) - idle_w) * epoch_s;
        }

        // Packet flows: loads from per-subflow acked deltas over the epoch.
        for meta in &mut self.packet {
            if meta.handed_off {
                continue;
            }
            let snd = meta.handle.sender_ref(&self.sim);
            let acked = snd.data_acked();
            let delta = acked - meta.prev_acked;
            meta.prev_acked = acked;
            self.delivered_bits += delta as f64 * mss_bits;
            if delta == 0 {
                continue;
            }
            let states = snd.cc_states();
            self.load_buf.clear();
            for (r, prev) in meta.prev_sub_acked.iter_mut().enumerate() {
                let sub_acked = snd.subflow(r).acked_pkts;
                let sub_delta = sub_acked - *prev;
                *prev = sub_acked;
                let st = &states[r];
                let rtt = if st.srtt > 0.0 { st.srtt } else { meta.prop_rtts[r] };
                let base = if st.base_rtt.is_finite() { st.base_rtt } else { meta.prop_rtts[r] };
                self.load_buf.push(PathLoad {
                    throughput_bps: sub_delta as f64 * mss_bits / epoch_s,
                    rtt_s: rtt,
                    base_rtt_s: base,
                    active: st.active && sub_delta > 0,
                });
            }
            energy += (self.power.power_w(at_s, &self.load_buf) - idle_w) * epoch_s;
        }

        self.energy_j += energy;
    }

    /// Freezes packet flows older than the handoff threshold and re-creates
    /// them as fluid flows seeded with their measured per-path rate and RTT
    /// (falling back to the propagation RTT before the first sample).
    fn do_handoffs(&mut self) {
        let now = self.sim.now();
        for i in 0..self.packet.len() {
            let (ready, model) = {
                let meta = &self.packet[i];
                let age_s = now.saturating_since(meta.attached_at).as_secs_f64();
                let ready = !meta.handed_off
                    && meta.fluid_model.is_some()
                    && age_s >= self.cfg.handoff_age_s
                    && !meta.handle.is_finished(&self.sim);
                (ready, meta.fluid_model)
            };
            let Some(model) = model else { continue };
            if !ready {
                continue;
            }
            self.packet[i].handle.halt(&mut self.sim);
            let hs = self.packet[i].handle.handoff_state(&self.sim);
            let meta = &mut self.packet[i];
            let mut fps = Vec::with_capacity(meta.fwd_links.len());
            for (r, links) in meta.fwd_links.iter().enumerate() {
                let prop = meta.prop_rtts[r];
                let h = &hs[r];
                let rtt = if h.srtt_s > 0.0 { h.srtt_s } else { prop };
                let base = if h.base_rtt_s > 0.0 && h.base_rtt_s.is_finite() {
                    h.base_rtt_s
                } else {
                    prop
                };
                fps.push(FluidPath { links: links.clone(), rtt, base_rtt: base });
                self.x_flat.push(h.rate_pps.max(X_MIN));
            }
            meta.handed_off = true;
            self.fluid_hosts.push(meta.src_host);
            self.net.add_flow(FluidFlow { model, paths: fps });
            self.counters.handoffs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkConfig;

    fn two_path_sim(seed: u64) -> Simulator {
        let mut sim = Simulator::new(seed);
        // Two disjoint bidirectional paths: links 0/1 (fwd/rev) and 2/3.
        for _ in 0..2 {
            for _ in 0..2 {
                sim.add_link(
                    LinkConfig::new(10_000_000, SimDuration::from_millis(5)).queue_limit(64),
                );
            }
        }
        sim
    }

    fn two_paths() -> Vec<PathSpec> {
        vec![PathSpec::new(vec![0], vec![1]), PathSpec::new(vec![2], vec![3])]
    }

    fn engine(seed: u64) -> HybridEngine {
        let cfg = HybridConfig {
            epoch_s: 0.1,
            fluid_dt: 1e-3,
            handoff_age_s: 0.25,
            calib_rtt_s: 0.012,
            ..HybridConfig::default()
        };
        let sim = two_path_sim(seed);
        HybridEngine::new(sim, 2, WiredCpuModel::energy_proportional_server(), cfg)
    }

    #[test]
    fn classify_splits_on_size_and_boundedness() {
        let cfg = HybridConfig::default();
        assert_eq!(classify(Some(1000), &cfg), Regime::Packet);
        assert_eq!(classify(Some(cfg.short_flow_max_bytes), &cfg), Regime::Packet);
        assert_eq!(classify(Some(cfg.short_flow_max_bytes + 1), &cfg), Regime::Fluid);
        assert_eq!(classify(None, &cfg), Regime::Fluid);
    }

    #[test]
    fn fluid_model_mapping_matches_the_paper_table() {
        use AlgorithmKind as K;
        let psi = |k: K| fluid_model_of(&CcChoice::Base(k)).map(|m| m.psi);
        assert_eq!(psi(K::Olia), Some(Psi::Olia));
        assert_eq!(psi(K::Reno), Some(Psi::Olia));
        assert_eq!(psi(K::Lia), Some(Psi::Lia));
        assert_eq!(psi(K::Ewtcp), Some(Psi::Ewtcp));
        assert_eq!(psi(K::Coupled), Some(Psi::Coupled));
        assert_eq!(psi(K::Balia), Some(Psi::Balia));
        assert_eq!(psi(K::EcMtcp), Some(Psi::EcMtcp));
        assert_eq!(psi(K::Dctcp), None);
        assert_eq!(psi(K::WVegas), None);
        assert_eq!(psi(K::Dwc), None);
        assert!(matches!(fluid_model_of(&CcChoice::dts()), Some(CcModel { psi: Psi::Dts(_), .. })));
    }

    #[test]
    fn fluid_flow_installs_background_load_and_accumulates_energy() {
        let mut eng = engine(1);
        let model = CcModel::loss_based(Psi::Olia);
        eng.add_fluid_flow(model, &two_paths(), 50.0, 0);
        eng.run_epochs(10);
        let c = eng.counters();
        assert_eq!(c.epochs, 10);
        assert_eq!(c.fluid_flows, 1);
        assert_eq!(c.packet_flows, 0);
        assert!(c.fluid_steps >= 1000, "{c:?}");
        // The fluid flow grew toward its calibrated operating point…
        let total: f64 = eng.fluid_rates().iter().sum();
        assert!(total > 100.0, "fluid rates {:?}", eng.fluid_rates());
        // …and its rate shows up as background load on both forward links.
        assert!(eng.sim().world().link(0).background_bps() > 0);
        assert!(eng.sim().world().link(2).background_bps() > 0);
        assert_eq!(c.background_links, 2);
        assert!(eng.energy_joules() > 0.0);
        assert!(eng.delivered_bits() > 0.0);
        assert!(eng.joules_per_gbit().is_finite());
    }

    #[test]
    fn packet_flow_outliving_threshold_hands_off_to_fluid() {
        let mut eng = engine(7);
        let cfg = FlowConfig::new(0).min_rto(SimDuration::from_millis(10));
        eng.add_packet_flow(
            cfg,
            &CcChoice::Base(AlgorithmKind::Olia),
            &two_paths(),
            SimDuration::ZERO,
        );
        eng.run_epochs(8);
        let c = eng.counters();
        assert_eq!(c.handoffs, 1, "{c:?}");
        assert_eq!(c.fluid_flows, 1);
        assert_eq!(c.packet_flows, 1);
        // The sender was frozen and the event queue drains fully.
        assert!(eng.packet[0].handle.is_finished(eng.sim()));
        // The fluid continuation was seeded with the measured rate.
        assert_eq!(eng.fluid_rates().len(), 2);
        assert!(eng.fluid_rates().iter().sum::<f64>() > 2.0 * X_MIN, "{:?}", eng.fluid_rates());
        // Delivery keeps accruing after the handoff (now via the fluid side).
        let before = eng.delivered_bits();
        eng.run_epochs(2);
        assert!(eng.delivered_bits() > before);
    }

    #[test]
    fn short_flows_stay_packet_and_unfluid_algorithms_never_hand_off() {
        let mut eng = engine(3);
        // Small bounded transfer → packet regime.
        let r1 = eng.add_flow(
            FlowConfig::new(0).transfer_bytes(100_000),
            &CcChoice::Base(AlgorithmKind::Olia),
            &two_paths(),
            SimDuration::ZERO,
            0,
        );
        assert_eq!(r1, Regime::Packet);
        // Unbounded but DCTCP has no Equation-(3) form → packet regime, and
        // it must never hand off.
        let r2 = eng.add_flow(
            FlowConfig::new(1),
            &CcChoice::Base(AlgorithmKind::Dctcp),
            &two_paths(),
            SimDuration::ZERO,
            1,
        );
        assert_eq!(r2, Regime::Packet);
        eng.run_epochs(6);
        assert_eq!(eng.counters().handoffs, 0);
        assert_eq!(eng.counters().fluid_flows, 0);
        assert_eq!(eng.counters().packet_flows, 2);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let run = || {
            let mut eng = engine(42);
            eng.add_fluid_flow(CcModel::loss_based(Psi::Olia), &two_paths(), 10.0, 0);
            eng.add_packet_flow(
                FlowConfig::new(0).min_rto(SimDuration::from_millis(10)),
                &CcChoice::Base(AlgorithmKind::Lia),
                &two_paths(),
                SimDuration::ZERO,
            );
            eng.run_epochs(6);
            let bits: Vec<u64> = eng.fluid_rates().iter().map(|x| x.to_bits()).collect();
            (eng.energy_joules().to_bits(), eng.delivered_bits().to_bits(), bits, eng.counters())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
