//! Integration drills for the distributed sweep fabric: byte-identity of
//! the distributed merge, chaos-injected worker loss, the attach-mode wire
//! protocol driven by a test-authored worker (heartbeat lapse, late
//! responses, partial harvest), journal resume across a killed supervisor,
//! and quarantine-artifact naming.

use bench_harness::fabric::dist::wire::{self, PROTOCOL_VERSION};
use bench_harness::fabric::journal::JournalCodec;
use bench_harness::fabric::{
    run_dist, run_fabric, CellOutcome, DistOptions, FabricCell, FabricOptions, Fingerprint,
    RetryPolicy, ShardPlan, SpawnMode,
};
use obs::CounterSnapshot;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fabric-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke(args: &[&str], envs: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fabric_smoke"));
    cmd.args(args).env_remove("SWEEP_DIST_CHAOS").env_remove("SWEEP_WORKERS");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("fabric_smoke runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn dist_merge_is_byte_identical_to_serial() {
    let (serial, _, code) = smoke(&[], &[]);
    assert_eq!(code, Some(0));
    let spool = temp_dir("ident");
    let (dist, stderr, code) = smoke(&["--workers", "3", "--spool", spool.to_str().unwrap()], &[]);
    assert_eq!(code, Some(0), "distributed run failed:\n{stderr}");
    assert_eq!(dist, serial, "distributed merge must be byte-identical to the serial run");
    assert!(
        stderr.contains("workers_spawned=3") && stderr.contains("redispatches=0"),
        "expected a clean 3-worker accounting line, got:\n{stderr}"
    );
}

#[test]
fn killed_worker_is_redispatched_and_merge_unchanged() {
    let (serial, _, _) = smoke(&[], &[]);
    let spool = temp_dir("kill");
    let (dist, stderr, code) = smoke(
        &["--workers", "3", "--spool", spool.to_str().unwrap()],
        &[("SWEEP_DIST_CHAOS", "kill:1@2")],
    );
    assert_eq!(code, Some(0), "kill drill failed:\n{stderr}");
    assert_eq!(dist, serial, "a SIGKILLed worker must not change the merged bytes");
    assert!(
        stderr.contains("worker_crashes=1") && stderr.contains("redispatches=1"),
        "crash must be detected and re-dispatched, got:\n{stderr}"
    );
    assert!(
        stderr.contains("harvested_cells=1"),
        "the cell streamed before the kill must be salvaged, got:\n{stderr}"
    );
}

#[test]
fn worker_quarantines_travel_the_wire_like_local_ones() {
    let (serial, serial_err, code) = smoke(&[], &[("FABRIC_SMOKE_FAIL", "cell-05")]);
    assert_eq!(code, Some(1), "a quarantined cell exits 1:\n{serial_err}");
    let spool = temp_dir("quarantine");
    let (dist, stderr, code) = smoke(
        &["--workers", "3", "--spool", spool.to_str().unwrap()],
        &[("FABRIC_SMOKE_FAIL", "cell-05")],
    );
    assert_eq!(code, Some(1), "the distributed run must also exit 1:\n{stderr}");
    assert_eq!(dist, serial, "surviving cells must merge identically around the quarantine");
    assert!(
        stderr.contains("quarantined=1") && stderr.contains("panics="),
        "the wire must carry the same quarantine accounting, got:\n{stderr}"
    );
}

#[test]
fn supervisor_killed_mid_sweep_resumes_from_journal() {
    let (serial, _, _) = smoke(&[], &[]);
    let dir = temp_dir("resume");
    let journal = dir.join("sweep.jsonl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_fabric_smoke"))
        .args(["--workers", "3", "--journal"])
        .arg(&journal)
        .arg("--spool")
        .arg(&dir)
        .env("FABRIC_SMOKE_SLEEP_MS", "300")
        .env_remove("SWEEP_DIST_CHAOS")
        .spawn()
        .unwrap();
    // Let a few cells land in the journal, then SIGKILL the supervisor
    // (workers die with it or become harmless orphans writing to the
    // spool; the journal is the durable layer).
    std::thread::sleep(Duration::from_millis(1200));
    let _ = child.kill();
    let _ = child.wait();
    let (resumed, stderr, code) = smoke(
        &[
            "--workers",
            "3",
            "--journal",
            journal.to_str().unwrap(),
            "--spool",
            dir.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(code, Some(0), "resume failed:\n{stderr}");
    assert_eq!(resumed, serial, "resumed output must be byte-identical to an unkilled run");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(
        text.lines().filter(|l| l.contains("\"fabric\":\"done\"")).count() >= 12,
        "journal must hold every cell after the resume"
    );
}

/// The attach-mode contract end to end, with the test as the worker: a
/// first claimant heartbeats, streams one cell, and goes silent (lease
/// revoked as a heartbeat lapse); its response file grows *after* the
/// revocation (counted as a late response, discarded); a second claimant
/// serves the re-dispatched remainder. The merge must match the serial run
/// and account every event.
#[test]
fn attach_worker_lapse_redispatch_and_late_response() {
    let mk_cells = || -> Vec<FabricCell<(u64, f64)>> {
        (0..4u64)
            .map(|i| {
                FabricCell::new(format!("att-{i}"), i, move || {
                    (i.wrapping_mul(7) + 1, i as f64 * 0.5)
                })
                .config(Fingerprint::new().str("attach-test").u64(i))
            })
            .collect()
    };
    let payload_for = |seed: u64| {
        let mut payload = Vec::new();
        ((seed.wrapping_mul(7) + 1, seed as f64 * 0.5), CounterSnapshot::default())
            .encode(&mut payload);
        payload
    };
    // Plan the same grid the supervisor will, to locate its spool subdir.
    let plan = ShardPlan::new(
        (0..4u64).map(|i| (format!("att-{i}"), i, Fingerprint::new().str("attach-test").u64(i))),
    )
    .unwrap();
    let grid = plan.grid_id();

    let root = temp_dir("attach");
    let spool = root.join(format!("grid-{grid:016x}"));
    let opts = FabricOptions {
        jobs: 1,
        journal: None,
        deadline: None,
        retry: RetryPolicy::default(),
        artifacts: None,
    };
    let mut dist = DistOptions::new("attach-test");
    dist.workers = 2;
    dist.spool = Some(root.clone());
    dist.spawn = SpawnMode::Attach;
    dist.lease = Duration::from_secs(10);
    dist.heartbeat = Duration::from_millis(25);
    dist.heartbeat_timeout = Duration::from_millis(300);
    dist.poll = Duration::from_millis(10);

    let sup = {
        let opts = opts.clone();
        let dist = dist.clone();
        std::thread::spawn(move || run_dist(mk_cells(), &opts, &dist))
    };

    let wait_for = |path: &Path| {
        let start = Instant::now();
        while !path.exists() {
            assert!(start.elapsed() < Duration::from_secs(20), "timed out waiting for {path:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // Both gen-0 requests appear once the supervisor is up.
    wait_for(&wire::request_path(&spool, 0, 0));
    wait_for(&wire::request_path(&spool, 1, 0));

    // One worker id serves every claim, exactly like a real `sweep_worker`
    // process: its heartbeat file accumulates lines across requests, and
    // each request's heartbeat seq restarts at 1. The high seqs written
    // for this first request must not mask later dispatches' fresh low
    // seqs (liveness reads are scoped per shard/gen).
    let (h1, cells1) = wire::read_request(&wire::request_path(&spool, 1, 0)).unwrap();
    assert_eq!(h1.version, PROTOCOL_VERSION);
    assert!(wire::try_claim(&spool, 1, 0, "t-w").unwrap());
    for seq in 1..=50 {
        wire::append_heartbeat(&spool, "t-w", 1, 0, seq).unwrap();
    }
    let mut resp =
        wire::ResponseWriter::create(&spool, 1, 0, grid, "t-w", PROTOCOL_VERSION).unwrap();
    for c in &cells1 {
        resp.record_done(c.id, &c.label, c.seed, 1, &payload_for(c.seed)).unwrap();
    }
    resp.finish().unwrap();

    // Shard 0: claim, heartbeat, stream ONE of its two cells, go silent.
    let (_, cells0) = wire::read_request(&wire::request_path(&spool, 0, 0)).unwrap();
    assert_eq!(cells0.len(), 2);
    assert!(wire::try_claim(&spool, 0, 0, "t-w").unwrap());
    wire::append_heartbeat(&spool, "t-w", 0, 0, 1).unwrap();
    let mut resp =
        wire::ResponseWriter::create(&spool, 0, 0, grid, "t-w", PROTOCOL_VERSION).unwrap();
    resp.record_done(
        cells0[0].id,
        &cells0[0].label,
        cells0[0].seed,
        1,
        &payload_for(cells0[0].seed),
    )
    .unwrap();
    drop(resp); // no finish(), no further heartbeats: a wedged worker

    // The lapse revokes the lease and re-dispatches the remaining cell.
    wait_for(&wire::request_path(&spool, 0, 1));
    let (_, cells0g1) = wire::read_request(&wire::request_path(&spool, 0, 1)).unwrap();
    assert_eq!(cells0g1.len(), 1, "only the unharvested cell is re-dispatched");
    assert_eq!(cells0g1[0].id, cells0[1].id);

    // The dead worker twitches: its gen-0 response grows after revocation.
    // The supervisor must count (and ignore) it.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wire::response_path(&spool, 0, 0))
            .unwrap();
        writeln!(f, "{{\"dist\":\"done\",LATE-NOISE").unwrap();
    }

    // The same (now recovered) worker claims the re-dispatch. It
    // heartbeats afresh from seq 1 — far below the seqs already sitting in
    // its file — while taking several lapse windows to produce the cell.
    // Scoped liveness reads keep this lease alive; a file-wide max would
    // see "no fresh heartbeat" and wrongly revoke a live worker here.
    assert!(wire::try_claim(&spool, 0, 1, "t-w").unwrap());
    let mut resp =
        wire::ResponseWriter::create(&spool, 0, 1, grid, "t-w", PROTOCOL_VERSION).unwrap();
    for seq in 1..=12 {
        wire::append_heartbeat(&spool, "t-w", 0, 1, seq).unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    resp.record_done(
        cells0g1[0].id,
        &cells0g1[0].label,
        cells0g1[0].seed,
        1,
        &payload_for(cells0g1[0].seed),
    )
    .unwrap();
    resp.finish().unwrap();

    let report = sup.join().unwrap().expect("supervised attach run succeeds");
    assert!(report.is_complete());
    let serial = run_fabric(mk_cells(), &opts).unwrap();
    let dist_rows: Vec<_> = report.results().map(|r| (r.label.clone(), r.seed, r.output)).collect();
    let serial_rows: Vec<_> =
        serial.results().map(|r| (r.label.clone(), r.seed, r.output)).collect();
    assert_eq!(dist_rows, serial_rows, "attach-mode merge must equal the serial run");

    let d = &report.counters.dist;
    assert_eq!(d.heartbeat_lapses, 1, "only the silent worker lapses, exactly once");
    assert_eq!(d.redispatches, 1);
    assert_eq!(d.harvested_cells, 1, "the streamed cell survives the revocation");
    assert_eq!(d.late_responses, 1, "post-revocation growth is counted");
    assert_eq!(d.leases_granted, 3, "shard1 g0 + shard0 g0 + shard0 g1");
    assert_eq!(d.duplicate_cells, 0);
    assert_eq!(d.claim_timeouts, 0);
    assert_eq!(d.workers_spawned, 0, "attach mode spawns nothing");
}

/// A suite no attached worker hosts must never hang the supervisor in a
/// silent claim-wait: each dispatch times out unclaimed (counted as a
/// `claim_timeout`), burns the re-dispatch budget, and the shard's cells
/// quarantine into a partial report with the cause history naming the
/// unclaimed suite.
#[test]
fn unclaimed_attach_requests_time_out_into_a_partial_report() {
    let mk_cells = || -> Vec<FabricCell<(u64, f64)>> {
        (0..2u64)
            .map(|i| {
                FabricCell::new(format!("orphan-{i}"), i, move || (i, 0.0))
                    .config(Fingerprint::new().str("orphan-test").u64(i))
            })
            .collect()
    };
    let root = temp_dir("unclaimed");
    let opts = FabricOptions {
        jobs: 1,
        journal: None,
        deadline: None,
        retry: RetryPolicy::default(),
        artifacts: None,
    };
    let mut dist = DistOptions::new("suite-nobody-hosts");
    dist.workers = 2;
    dist.spool = Some(root);
    dist.spawn = SpawnMode::Attach;
    dist.claim_timeout = Some(Duration::from_millis(150));
    dist.max_redispatch = 1;
    dist.poll = Duration::from_millis(10);

    let start = Instant::now();
    let report = run_dist(mk_cells(), &opts, &dist).expect("supervisor returns, never hangs");
    assert!(start.elapsed() < Duration::from_secs(15), "must converge promptly");
    assert!(!report.is_complete(), "nothing was served, so the report is partial");
    for outcome in &report.outcomes {
        match outcome {
            CellOutcome::Quarantined(q) => {
                assert!(
                    q.message.contains("claim_timeout") && q.message.contains("suite-nobody-hosts"),
                    "quarantine must name the unclaimed suite, got {:?}",
                    q.message
                );
            }
            CellOutcome::Done { .. } => panic!("no worker existed to complete cells"),
        }
    }
    let d = &report.counters.dist;
    assert_eq!(d.claim_timeouts, 4, "2 shards x (g0 + g1) each timed out");
    assert_eq!(d.redispatches, 2, "one re-dispatch per shard before the budget ran out");
    assert_eq!(d.leases_granted, 0, "nothing was ever claimed");
    assert_eq!(report.counters.quarantined, 2);
}

/// Identically-labelled cells distinguished only by config fingerprint must
/// quarantine into *distinct* artifact files — the CellId in the filename
/// is what prevents one repro from clobbering the other.
#[test]
fn quarantine_artifacts_embed_cell_ids() {
    let dir = temp_dir("artifacts");
    let mk = |tag: u64| {
        FabricCell::new("same-label", 9, move || -> (u64, f64) {
            panic!("boom {tag}");
        })
        .config(Fingerprint::new().str("artifact-test").u64(tag))
    };
    let opts = FabricOptions {
        jobs: 1,
        journal: None,
        deadline: None,
        retry: RetryPolicy::none(),
        artifacts: Some(dir.clone()),
    };
    let report = run_fabric(vec![mk(1), mk(2)], &opts).unwrap();
    let artifacts: Vec<PathBuf> = report
        .outcomes
        .iter()
        .map(|o| match o {
            CellOutcome::Quarantined(q) => {
                let path = q.artifact.clone().expect("artifact written");
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                assert!(
                    name.contains(&q.id.to_string()),
                    "artifact {name:?} must embed the cell id {}",
                    q.id
                );
                path
            }
            CellOutcome::Done { .. } => panic!("both cells were rigged to fail"),
        })
        .collect();
    assert_eq!(artifacts.len(), 2);
    assert_ne!(artifacts[0], artifacts[1], "same-label cells must not clobber each other");
    assert!(artifacts[0].exists() && artifacts[1].exists());
}
