//! Failure-repro artifacts for invariant violations.
//!
//! When the online invariant checker (the `check-invariants` cargo feature)
//! halts a sweep cell, the harness dumps a **self-contained repro artifact**:
//! one JSONL file holding the cell's full [`ReproSpec`] (seed, transfer
//! size, congestion control, horizon, fault timeline), the recorded
//! violation, and the trace tail leading up to it. The `replay` binary
//! (`cargo run --bin replay --features check-invariants -- <artifact>`)
//! re-executes the spec deterministically and checks that the same violation
//! recurs at the same simulated time.
//!
//! Artifact format — flat one-line JSON objects, parsed with the same
//! key-scan helpers as the trace summarizer ([`obs::json_str_field`] /
//! [`obs::json_u64_field`]):
//!
//! ```text
//! {"repro":"spec","seed":7,"transfer_pkts":20000,"cc":"lia","horizon_ns":...}
//! {"repro":"fault","at_ns":1000000000,"action":"set_loss","link":0,"model":"iid","p_bits":...}
//! {"repro":"violation","at_ns":2345678901,"message":"..."}
//! {"ev":"impair", ...}   # trace tail, oldest first
//! ```
//!
//! Floating-point parameters are serialized as IEEE-754 bit patterns
//! (`f64::to_bits`), so a parsed spec is *bit-identical* to the original —
//! a decimal round-trip that lost one ulp of a loss probability would
//! change the RNG draw sequence and lose the repro.

use congestion::AlgorithmKind;
use mptcp_energy::CcChoice;
use netsim::{FaultAction, FaultScript, LossModel, ReorderModel, SimDuration, SimTime, Simulator};
use obs::{json_str_field, json_u64_field, RingSink, TraceEvent};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use topology::TwoPath;
use transport::{attach_flow, FlowConfig};

/// How many trailing trace events an artifact retains.
const TRACE_TAIL: usize = 256;

/// Everything needed to re-execute one chaos/soak cell bit-for-bit: the
/// topology is fixed (two disjoint 20 Mb/s, 10 ms paths — the soak grid's),
/// everything else is data.
#[derive(Clone, Debug, PartialEq)]
pub struct ReproSpec {
    /// Simulator (and flow) seed.
    pub seed: u64,
    /// Transfer size in packets.
    pub transfer_pkts: u64,
    /// Congestion control name: `reno`, `lia`, `olia`, or `dts`.
    pub cc: String,
    /// Subflow death threshold (`None` disables the failover watchdog).
    pub dead_after_backoffs: Option<u32>,
    /// Run horizon, seconds.
    pub horizon_s: f64,
    /// When set, a deliberately-seeded invariant violation fires at this
    /// simulated time — the self-test hook for the artifact/replay pipeline.
    pub fail_at_s: Option<f64>,
    /// The fault timeline to install.
    pub script: FaultScript,
}

impl ReproSpec {
    fn cc_choice(&self) -> Result<CcChoice, String> {
        match self.cc.as_str() {
            "reno" => Ok(CcChoice::Base(AlgorithmKind::Reno)),
            "lia" => Ok(CcChoice::Base(AlgorithmKind::Lia)),
            "olia" => Ok(CcChoice::Base(AlgorithmKind::Olia)),
            "dts" => Ok(CcChoice::dts()),
            other => Err(format!("repro spec: unknown congestion control {other:?}")),
        }
    }
}

/// A recorded (or replayed) invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Simulated time of the violation, nanoseconds.
    pub at_ns: u64,
    /// The failed check's message.
    pub message: String,
}

/// The outcome of executing a [`ReproSpec`].
#[derive(Debug)]
pub struct ReproOutcome {
    /// Whether the transfer completed.
    pub finished: bool,
    /// Connection-level packets acknowledged.
    pub acked: u64,
    /// The first invariant violation, if the checker halted the run
    /// (always `None` without the `check-invariants` feature).
    pub violation: Option<ViolationRecord>,
    /// The last [`TRACE_TAIL`] trace events, oldest first.
    pub trace_tail: Vec<TraceEvent>,
}

/// Executes `spec` on the fixed two-path soak topology with the trace-tail
/// ring attached and (under `check-invariants`) the default simulator and
/// transport invariants registered.
///
/// # Errors
///
/// Returns an error when the spec names an unknown congestion control —
/// artifacts are hand-editable text, so a typo must surface as a message,
/// not a panic.
pub fn run_repro_cell(spec: &ReproSpec) -> Result<ReproOutcome, String> {
    let cc = spec.cc_choice()?;
    let mut sim = Simulator::new(spec.seed);
    let ring = Arc::new(Mutex::new(RingSink::new(TRACE_TAIL)));
    sim.set_trace_sink(Box::new(Arc::clone(&ring)));
    let tp = TwoPath::dual_nic(&mut sim, 20_000_000, SimDuration::from_millis(10));
    spec.script.clone().install(&mut sim);
    #[cfg(feature = "check-invariants")]
    {
        netsim::install_default_invariants(&mut sim);
        if let Some(fail_at) = spec.fail_at_s {
            let at = SimTime::from_secs_f64(fail_at);
            sim.add_invariant_check(Box::new(move |s: &Simulator| {
                if s.now() >= at {
                    Err(format!("seeded repro-pipeline violation (fail_at_s = {fail_at})"))
                } else {
                    Ok(())
                }
            }));
        }
    }
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(spec.seed)
            .transfer_pkts(spec.transfer_pkts)
            .dead_after_backoffs(spec.dead_after_backoffs),
        cc.build(2),
        &tp.both(),
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(spec.horizon_s));
    drop(sim.take_trace_sink());
    #[cfg(feature = "check-invariants")]
    let violation = sim
        .invariant_violation()
        .map(|v| ViolationRecord { at_ns: v.at.as_nanos(), message: v.message.clone() });
    #[cfg(not(feature = "check-invariants"))]
    let violation = None;
    // The simulator ran on this thread, so the ring cannot be poisoned; the
    // recovery path keeps the tail readable even if that ever changes.
    let trace_tail = ring
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .events()
        .copied()
        .collect::<Vec<_>>();
    Ok(ReproOutcome {
        finished: flow.is_finished(&sim),
        acked: flow.sender_ref(&sim).data_acked(),
        violation,
        trace_tail,
    })
}

/// The artifact directory named by the `SWEEP_ARTIFACTS` env var, if set.
pub fn artifact_dir() -> Option<PathBuf> {
    std::env::var_os("SWEEP_ARTIFACTS").map(Into::into)
}

/// JSON string escaping shared with the fabric journal (`crate::fabric`).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`]; shared with the fabric journal.
pub(crate) fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = (&mut chars).take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Like [`json_str_field`] but honours backslash escapes, so violation
/// messages containing quotes survive the round trip. Returns the *raw*
/// (still-escaped) span; pass it through [`unesc`].
pub(crate) fn json_escaped_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Some(&rest[..i]),
            _ => {}
        }
    }
    None
}

fn fault_json(at: SimTime, action: &FaultAction, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"repro\":\"fault\",\"at_ns\":{}", at.as_nanos());
    match action {
        FaultAction::SetLoss { link, model } => {
            let _ = write!(out, ",\"action\":\"set_loss\",\"link\":{link}");
            match model {
                LossModel::None => out.push_str(",\"model\":\"none\""),
                LossModel::Iid { p } => {
                    let _ = write!(out, ",\"model\":\"iid\",\"p_bits\":{}", p.to_bits());
                }
                LossModel::GilbertElliott { p_good_bad, p_bad_good, loss_good, loss_bad } => {
                    let _ = write!(
                        out,
                        ",\"model\":\"ge\",\"pgb_bits\":{},\"pbg_bits\":{},\
                         \"lg_bits\":{},\"lb_bits\":{}",
                        p_good_bad.to_bits(),
                        p_bad_good.to_bits(),
                        loss_good.to_bits(),
                        loss_bad.to_bits()
                    );
                }
            }
        }
        FaultAction::SetBandwidth { link, bps } => {
            let _ = write!(out, ",\"action\":\"set_bandwidth\",\"link\":{link},\"bps\":{bps}");
        }
        FaultAction::SetPropagation { link, propagation } => {
            let _ = write!(
                out,
                ",\"action\":\"set_propagation\",\"link\":{link},\"prop_ns\":{}",
                propagation.as_nanos()
            );
        }
        FaultAction::LinkDown { link } => {
            let _ = write!(out, ",\"action\":\"link_down\",\"link\":{link}");
        }
        FaultAction::LinkUp { link } => {
            let _ = write!(out, ",\"action\":\"link_up\",\"link\":{link}");
        }
        FaultAction::SetReorder { link, model } => {
            let _ = write!(out, ",\"action\":\"set_reorder\",\"link\":{link}");
            match model {
                ReorderModel::None => out.push_str(",\"model\":\"none\""),
                ReorderModel::Uniform { p, max_extra } => {
                    let _ = write!(
                        out,
                        ",\"model\":\"uniform\",\"p_bits\":{},\"max_extra_ns\":{}",
                        p.to_bits(),
                        max_extra.as_nanos()
                    );
                }
            }
        }
        FaultAction::SetDuplicate { link, p } => {
            let _ = write!(
                out,
                ",\"action\":\"set_duplicate\",\"link\":{link},\"p_bits\":{}",
                p.to_bits()
            );
        }
        FaultAction::SetCorrupt { link, p } => {
            let _ = write!(
                out,
                ",\"action\":\"set_corrupt\",\"link\":{link},\"p_bits\":{}",
                p.to_bits()
            );
        }
    }
    out.push('}');
}

fn parse_fault(line: &str) -> Result<(SimTime, FaultAction), String> {
    let at = SimTime::from_nanos(
        json_u64_field(line, "at_ns").ok_or_else(|| format!("fault line missing at_ns: {line}"))?,
    );
    let link = json_u64_field(line, "link")
        .ok_or_else(|| format!("fault line missing link: {line}"))?
        as netsim::LinkId;
    let bits = |key: &str| -> Result<f64, String> {
        json_u64_field(line, key)
            .map(f64::from_bits)
            .ok_or_else(|| format!("fault line missing {key}: {line}"))
    };
    let action = match json_str_field(line, "action") {
        Some("set_loss") => {
            let model = match json_str_field(line, "model") {
                Some("none") => LossModel::None,
                Some("iid") => LossModel::iid(bits("p_bits")?),
                Some("ge") => LossModel::gilbert_elliott(
                    bits("pgb_bits")?,
                    bits("pbg_bits")?,
                    bits("lg_bits")?,
                    bits("lb_bits")?,
                ),
                other => return Err(format!("unknown loss model {other:?}: {line}")),
            };
            FaultAction::SetLoss { link, model }
        }
        Some("set_bandwidth") => FaultAction::SetBandwidth {
            link,
            bps: json_u64_field(line, "bps")
                .ok_or_else(|| format!("fault line missing bps: {line}"))?,
        },
        Some("set_propagation") => FaultAction::SetPropagation {
            link,
            propagation: SimDuration::from_nanos(
                json_u64_field(line, "prop_ns")
                    .ok_or_else(|| format!("fault line missing prop_ns: {line}"))?,
            ),
        },
        Some("link_down") => FaultAction::LinkDown { link },
        Some("link_up") => FaultAction::LinkUp { link },
        Some("set_reorder") => {
            let model = match json_str_field(line, "model") {
                Some("none") => ReorderModel::None,
                Some("uniform") => ReorderModel::uniform(
                    bits("p_bits")?,
                    SimDuration::from_nanos(
                        json_u64_field(line, "max_extra_ns")
                            .ok_or_else(|| format!("fault line missing max_extra_ns: {line}"))?,
                    ),
                ),
                other => return Err(format!("unknown reorder model {other:?}: {line}")),
            };
            FaultAction::SetReorder { link, model }
        }
        Some("set_duplicate") => FaultAction::SetDuplicate { link, p: bits("p_bits")? },
        Some("set_corrupt") => FaultAction::SetCorrupt { link, p: bits("p_bits")? },
        other => return Err(format!("unknown fault action {other:?}: {line}")),
    };
    Ok((at, action))
}

/// Renders the artifact for a violating run as a JSONL string.
pub fn render_artifact(spec: &ReproSpec, outcome: &ReproOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"repro\":\"spec\",\"seed\":{},\"transfer_pkts\":{},\"cc\":\"{}\",\"horizon_ns\":{}",
        spec.seed,
        spec.transfer_pkts,
        esc(&spec.cc),
        SimDuration::from_secs_f64(spec.horizon_s).as_nanos()
    );
    if let Some(k) = spec.dead_after_backoffs {
        let _ = write!(out, ",\"dead_after_backoffs\":{k}");
    }
    if let Some(fail_at) = spec.fail_at_s {
        let _ = write!(out, ",\"fail_at_ns\":{}", SimDuration::from_secs_f64(fail_at).as_nanos());
    }
    out.push_str("}\n");
    for ev in spec.script.events() {
        fault_json(ev.at, &ev.action, &mut out);
        out.push('\n');
    }
    if let Some(v) = &outcome.violation {
        let _ = writeln!(
            out,
            "{{\"repro\":\"violation\",\"at_ns\":{},\"message\":\"{}\"}}",
            v.at_ns,
            esc(&v.message)
        );
    }
    for ev in &outcome.trace_tail {
        ev.to_json(&mut out);
        out.push('\n');
    }
    out
}

/// Writes the artifact for a violating run to `<dir>/repro-<seed>.jsonl`,
/// creating `dir` if needed. Returns the artifact path.
///
/// The seed-derived name is only safe when the caller runs one spec per
/// seed (the invariant checker's situation). Sweep grids routinely run many
/// cells at the same seed — those callers must use [`dump_artifact_named`]
/// with a name that folds in the cell's content address, or artifacts
/// overwrite each other.
pub fn dump_artifact(
    dir: &Path,
    spec: &ReproSpec,
    outcome: &ReproOutcome,
) -> std::io::Result<PathBuf> {
    dump_artifact_named(dir, &format!("repro-{}", spec.seed), spec, outcome)
}

/// Writes the artifact for a violating run to `<dir>/<stem>.jsonl`,
/// creating `dir` if needed. Returns the artifact path. The fabric passes a
/// stem containing the cell's [`crate::fabric::CellId`] so two quarantined
/// cells that differ only in label, seed, or config can never collide.
pub fn dump_artifact_named(
    dir: &Path,
    stem: &str,
    spec: &ReproSpec,
    outcome: &ReproOutcome,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.jsonl"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render_artifact(spec, outcome).as_bytes())?;
    Ok(path)
}

/// Parses an artifact back into its spec and recorded violation.
pub fn parse_artifact(text: &str) -> Result<(ReproSpec, Option<ViolationRecord>), String> {
    let mut spec: Option<ReproSpec> = None;
    let mut violation = None;
    for line in text.lines() {
        match json_str_field(line, "repro") {
            Some("spec") => {
                let need =
                    |key: &str| json_u64_field(line, key).ok_or(format!("spec missing {key}"));
                spec = Some(ReproSpec {
                    seed: need("seed")?,
                    transfer_pkts: need("transfer_pkts")?,
                    cc: json_str_field(line, "cc").map(unesc).ok_or("spec missing cc")?,
                    dead_after_backoffs: json_u64_field(line, "dead_after_backoffs")
                        .map(|k| k as u32),
                    horizon_s: SimDuration::from_nanos(need("horizon_ns")?).as_secs_f64(),
                    fail_at_s: json_u64_field(line, "fail_at_ns")
                        .map(|ns| SimDuration::from_nanos(ns).as_secs_f64()),
                    script: FaultScript::new(),
                });
            }
            Some("fault") => {
                let spec = spec.as_mut().ok_or("fault line before spec line")?;
                let (at, action) = parse_fault(line)?;
                spec.script = std::mem::take(&mut spec.script).at(at, action);
            }
            Some("violation") => {
                violation = Some(ViolationRecord {
                    at_ns: json_u64_field(line, "at_ns").ok_or("violation missing at_ns")?,
                    message: json_escaped_str_field(line, "message")
                        .map(unesc)
                        .ok_or("violation missing message")?,
                });
            }
            _ => {} // trace tail / unknown lines — context, not config
        }
    }
    Ok((spec.ok_or("artifact has no spec line")?, violation))
}

/// The result of replaying an artifact.
#[derive(Debug)]
pub struct ReplayReport {
    /// The violation recorded in the artifact.
    pub original: Option<ViolationRecord>,
    /// The violation produced by re-executing the spec.
    pub replayed: Option<ViolationRecord>,
}

impl ReplayReport {
    /// True when the replay reproduced the recorded violation exactly
    /// (same message, same simulated nanosecond).
    pub fn reproduced(&self) -> bool {
        self.original.is_some() && self.original == self.replayed
    }
}

/// Re-executes the artifact at `path` and compares violations.
pub fn replay_artifact(path: &Path) -> Result<ReplayReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (spec, original) = parse_artifact(&text)?;
    let outcome = run_repro_cell(&spec)?;
    Ok(ReplayReport { original, replayed: outcome.violation })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ReproSpec {
        ReproSpec {
            seed: 9,
            transfer_pkts: 500,
            cc: "lia".into(),
            dead_after_backoffs: Some(4),
            horizon_s: 60.0,
            fail_at_s: None,
            script: FaultScript::new()
                .at(
                    SimTime::from_secs_f64(1.0),
                    FaultAction::SetLoss { link: 0, model: LossModel::iid(0.0123456789) },
                )
                .at(
                    SimTime::from_secs_f64(2.0),
                    FaultAction::SetReorder {
                        link: 1,
                        model: ReorderModel::uniform(0.25, SimDuration::from_millis(3)),
                    },
                )
                .at(SimTime::from_secs_f64(3.0), FaultAction::SetDuplicate { link: 2, p: 0.125 })
                .at(SimTime::from_secs_f64(4.0), FaultAction::SetCorrupt { link: 3, p: 0.0625 })
                .at(
                    SimTime::from_secs_f64(5.0),
                    FaultAction::SetLoss {
                        link: 2,
                        model: LossModel::gilbert_elliott(0.05, 0.3, 0.0, 0.37),
                    },
                )
                .at(
                    SimTime::from_secs_f64(6.0),
                    FaultAction::SetBandwidth { link: 0, bps: 12_500_000 },
                )
                .at(
                    SimTime::from_secs_f64(7.0),
                    FaultAction::SetPropagation {
                        link: 1,
                        propagation: SimDuration::from_millis(17),
                    },
                )
                .at(SimTime::from_secs_f64(8.0), FaultAction::LinkDown { link: 2 })
                .at(SimTime::from_secs_f64(9.0), FaultAction::LinkUp { link: 2 }),
        }
    }

    #[test]
    fn spec_roundtrips_bit_exactly_through_the_artifact_format() {
        let s = spec();
        let outcome = ReproOutcome {
            finished: false,
            acked: 123,
            violation: Some(ViolationRecord {
                at_ns: 2_345_678_901,
                message: "conn 9: \"quoted\"\nand a newline".into(),
            }),
            trace_tail: Vec::new(),
        };
        let text = render_artifact(&s, &outcome);
        let (parsed, violation) = parse_artifact(&text).expect("parse");
        assert_eq!(parsed, s, "spec did not round-trip bit-exactly");
        assert_eq!(violation, outcome.violation);
    }

    #[test]
    fn artifacts_without_a_violation_parse_to_none() {
        let outcome =
            ReproOutcome { finished: true, acked: 500, violation: None, trace_tail: Vec::new() };
        let (_, violation) = parse_artifact(&render_artifact(&spec(), &outcome)).expect("parse");
        assert_eq!(violation, None);
    }

    #[test]
    fn repro_cells_execute_deterministically() {
        let mut s = spec();
        s.transfer_pkts = 300;
        let a = run_repro_cell(&s).expect("repro cell failed");
        let b = run_repro_cell(&s).expect("repro cell failed");
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.trace_tail, b.trace_tail);
        assert!(a.finished, "repro scenario should complete: {a:?}");
    }
}
