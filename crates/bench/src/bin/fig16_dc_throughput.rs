//! Regenerates the paper's Fig. 16 table rows. Pass --smoke/--quick/--full.

fn main() {
    let scale = bench_harness::Scale::from_args();
    print!("{}", bench_harness::fig16::run(scale));
}
