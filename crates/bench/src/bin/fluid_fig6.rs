//! Fluid-model cross-check of the Fig. 6 scenario: N MPTCP users (one per
//! Equation-(3) model) race 2N Reno users over two shared bottlenecks, at
//! equilibrium. The fluid layer predicts the per-user throughput share each
//! algorithm extracts — and therefore the energy ordering the packet-level
//! Fig. 6 harness measures (energy ≈ M/τ̄·P, Equation (2)).
//!
//! Pass --smoke/--quick/--full (scales N) and optionally --jobs N. Each ψ's
//! equilibrium solve is an independent cell, fanned out by the crash-safe
//! sweep fabric: with --journal PATH (or SWEEP_JOURNAL) completed solves
//! checkpoint to an append-only journal and a killed run resumes where it
//! left off; a diverging solve can be bounded with SWEEP_DEADLINE_S and is
//! quarantined instead of sinking the table (exit 1, partial note on
//! stderr); --workers N (or SWEEP_WORKERS) spreads the solves over
//! supervised worker processes with identical output.
//!
//! With `--trace DIR` (or `SWEEP_TRACE`) the equilibrium results are also
//! appended to `DIR/fluid_fig6.jsonl` as `{"ev":"fluid_cell",...}` lines —
//! there is no packet-level event stream here, but `trace_dump` tolerates
//! the custom event kind and the file slots into the same trace directory
//! the packet-level harnesses fill.

use bench_harness::fabric::{run_dist, DistOptions, FabricCell, FabricOptions, Fingerprint};
use bench_harness::{table, Cli, Scale};
use mptcp_energy::{CcModel, FluidFlow, FluidLink, FluidNet, FluidPath, Psi};

fn scenario(psi: Psi, n_users: usize) -> (f64, f64) {
    let mut net = FluidNet::new();
    let cap = 10_000.0; // packets/second per bottleneck
    let l0 = net.add_link(FluidLink::new(cap));
    let l1 = net.add_link(FluidLink::new(cap));
    let rtt = 0.02;
    // N MPTCP users spanning both bottlenecks.
    for _ in 0..n_users {
        net.add_flow(FluidFlow {
            model: CcModel::loss_based(psi),
            paths: vec![FluidPath::new(vec![l0], rtt), FluidPath::new(vec![l1], rtt)],
        });
    }
    // 2N single-path Reno users, half per bottleneck.
    for i in 0..2 * n_users {
        let l = if i % 2 == 0 { l0 } else { l1 };
        net.add_flow(FluidFlow {
            model: CcModel::loss_based(Psi::Olia), // single path: ψ = 1 = Reno
            paths: vec![FluidPath::new(vec![l], rtt)],
        });
    }
    let x0: Vec<Vec<f64>> = net.flows.iter().map(|f| vec![50.0; f.paths.len()]).collect();
    let x = net.equilibrium(x0, 5e-4, 1e-7, 2_000_000);
    let mptcp_mean: f64 =
        x[..n_users].iter().map(|r| r.iter().sum::<f64>()).sum::<f64>() / n_users as f64;
    let tcp_mean: f64 =
        x[n_users..].iter().map(|r| r.iter().sum::<f64>()).sum::<f64>() / (2 * n_users) as f64;
    (mptcp_mean, tcp_mean)
}

fn main() {
    let cli = Cli::from_args();
    let n_users = match cli.scale {
        Scale::Smoke => 4,
        Scale::Quick => 10,
        Scale::Full => 25,
    };
    let mss_bits = 1500.0 * 8.0;
    let transfer_bits = 16.0 * 1024.0 * 1024.0 * 8.0;
    let psis = [Psi::Lia, Psi::Olia, Psi::Balia, Psi::EcMtcp, Psi::Coupled, Psi::Ewtcp];
    let cells: Vec<FabricCell<_>> = psis
        .into_iter()
        .map(|psi| {
            FabricCell::new(psi.name(), 0, move || scenario(psi, n_users))
                .config(Fingerprint::new().str("fluid_fig6").str(psi.name()).u64(n_users as u64))
        })
        .collect();
    let mut sink = cli.trace_dir().and_then(|dir| {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
            return None;
        }
        let path = obs::trace_path(&dir, "fluid_fig6");
        match obs::JsonlSink::create(&path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: cannot open trace file {}: {e}", path.display());
                None
            }
        }
    });
    let report = match run_dist(
        cells,
        &FabricOptions::from_cli(&cli),
        &DistOptions::from_cli(&cli, "fluid_fig6"),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fluid_fig6: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());
    let mut rows = Vec::new();
    for r in report.results() {
        let (mptcp, tcp) = r.output;
        // Implied 16 MB transfer time and a simple ∝1/τ̄ energy proxy.
        let seconds = transfer_bits / (mptcp * mss_bits);
        if let Some(sink) = sink.as_mut() {
            sink.raw_line(&format!(
                "{{\"ev\":\"fluid_cell\",\"psi\":\"{}\",\"n_users\":{n_users},\
                 \"mptcp_pkts_s\":{mptcp:.3},\"tcp_pkts_s\":{tcp:.3},\
                 \"transfer_s\":{seconds:.3}}}",
                r.label
            ));
        }
        rows.push(vec![
            r.label.clone(),
            format!("{mptcp:.0}"),
            format!("{tcp:.0}"),
            format!("{:.3}", mptcp / tcp),
            format!("{seconds:.1}"),
        ]);
    }
    println!(
        "Fluid equilibrium, {n_users} MPTCP + {} TCP users on two shared bottlenecks:",
        2 * n_users
    );
    print!(
        "{}",
        table(&["psi", "mptcp x* (pkt/s)", "tcp x* (pkt/s)", "mptcp/tcp", "16MB time (s)"], &rows)
    );
    println!("\nmptcp/tcp near 1 = TCP-friendly; higher mptcp x* = shorter transfers = less energy (Eq. 2).");
    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
