//! Regenerates the paper's Fig. 04 table rows. Pass --smoke/--quick/--full.

fn main() {
    let scale = bench_harness::Scale::from_args();
    print!("{}", bench_harness::fig04::run(scale));
}
