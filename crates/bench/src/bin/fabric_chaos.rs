//! Chaos drills for the distributed sweep fabric: run the shared demo grid
//! through the supervisor with one injected worker failure per drill, and
//! assert (a) the merged report is byte-identical to the serial in-process
//! run, and (b) every absorbed loss shows up in the
//! [`obs::DistCounters`] accounting — graceful degradation with nothing
//! swallowed silently.
//!
//! Drills, each armed via `SWEEP_DIST_CHAOS` (generation 0 of the named
//! shard only, so every drill converges):
//!
//! * `kill`     — SIGKILL a worker mid-shard; crash detected, partial
//!   response salvaged, remainder re-dispatched;
//! * `stall`    — worker keeps heartbeating but stops completing cells;
//!   the lease expires as a *stall* (not a heartbeat lapse);
//! * `truncate` — worker exits cleanly without the end footer; every cell
//!   is salvaged from the stream, nothing re-runs;
//! * `corrupt`  — garbage line mid-response; invalid-response revocation,
//!   valid prefix kept;
//! * `dup`      — every done line written twice; first-valid-wins, the
//!   echoes counted as duplicates;
//! * `stale`    — response claims protocol version 0; rejected wholesale
//!   before any cell is trusted.
//!
//! Exits 0 with `fabric_chaos: N drills passed` when every drill holds,
//! 1 with per-drill diagnostics otherwise. CI's `dist-fabric` job runs
//! this after the byte-identity check on a real 3-worker sweep.
//!
//! When spawned with `--dist-worker …`, this binary is one of its own
//! workers (self-exec), inheriting the armed chaos.

use bench_harness::fabric::demo;
use bench_harness::fabric::{run_dist, run_fabric, DistOptions, FabricOptions};
use bench_harness::Cli;
use obs::DistCounters;
use std::time::Duration;

const WORKERS: usize = 3;

/// Supervisor-side fabric options: no journal (each drill is hermetic);
/// artifacts follow `SWEEP_ARTIFACTS` so CI can collect unexpected
/// quarantines.
fn fabric_opts() -> FabricOptions {
    FabricOptions { journal: None, ..FabricOptions::default() }
}

/// Dist options tuned for drills: short leases so the stall drill resolves
/// in ~a second, fast heartbeats, generous lapse window (stalls must be
/// diagnosed as stalls — the heartbeats are still flowing).
fn dist_opts(task: Option<bench_harness::DistWorkerCli>) -> DistOptions {
    let mut o = DistOptions::new(demo::WALK_SUITE);
    o.workers = WORKERS;
    o.lease = Duration::from_millis(500);
    o.heartbeat = Duration::from_millis(50);
    o.heartbeat_timeout = Duration::from_secs(5);
    o.poll = Duration::from_millis(10);
    o.task = task;
    o
}

struct Drill {
    name: &'static str,
    /// `SWEEP_DIST_CHAOS` spec, or `None` for the clean control run.
    spec: Option<&'static str>,
    /// Counter assertions; returns one message per violated expectation.
    check: fn(&DistCounters) -> Vec<String>,
}

fn expect(failures: &mut Vec<String>, ok: bool, msg: String) {
    if !ok {
        failures.push(msg);
    }
}

/// The demo grid round-robins 12 cells over 3 shards: 4 cells per shard.
/// Chaos counts below lean on that shape.
const DRILLS: &[Drill] = &[
    Drill {
        name: "clean",
        spec: None,
        check: |c| {
            let mut f = Vec::new();
            expect(&mut f, c.shards == 3, format!("shards={} want 3", c.shards));
            expect(
                &mut f,
                c.workers_spawned == 3,
                format!("workers_spawned={} want 3", c.workers_spawned),
            );
            expect(&mut f, c.redispatches == 0, format!("redispatches={} want 0", c.redispatches));
            expect(
                &mut f,
                c.worker_crashes == 0,
                format!("worker_crashes={} want 0", c.worker_crashes),
            );
            f
        },
    },
    Drill {
        name: "kill",
        spec: Some("kill:2@1"),
        check: |c| {
            let mut f = Vec::new();
            expect(
                &mut f,
                c.worker_crashes == 1,
                format!("worker_crashes={} want 1", c.worker_crashes),
            );
            expect(&mut f, c.redispatches == 1, format!("redispatches={} want 1", c.redispatches));
            expect(
                &mut f,
                c.harvested_cells == 2,
                format!("harvested_cells={} want 2 (killed after 2 of 4)", c.harvested_cells),
            );
            expect(
                &mut f,
                c.workers_spawned == 4,
                format!("workers_spawned={} want 4 (3 + 1 re-dispatch)", c.workers_spawned),
            );
            f
        },
    },
    Drill {
        name: "stall",
        spec: Some("stall:2@0"),
        check: |c| {
            let mut f = Vec::new();
            expect(&mut f, c.stalls == 1, format!("stalls={} want 1", c.stalls));
            expect(
                &mut f,
                c.heartbeat_lapses == 0,
                format!("heartbeat_lapses={} want 0 (heartbeats kept flowing)", c.heartbeat_lapses),
            );
            expect(&mut f, c.redispatches == 1, format!("redispatches={} want 1", c.redispatches));
            expect(
                &mut f,
                c.harvested_cells == 2,
                format!("harvested_cells={} want 2", c.harvested_cells),
            );
            f
        },
    },
    Drill {
        name: "truncate",
        spec: Some("truncate@1"),
        check: |c| {
            let mut f = Vec::new();
            expect(
                &mut f,
                c.worker_crashes == 1,
                format!("worker_crashes={} want 1 (exit without footer)", c.worker_crashes),
            );
            expect(
                &mut f,
                c.harvested_cells == 4,
                format!("harvested_cells={} want 4 (whole stream salvaged)", c.harvested_cells),
            );
            expect(
                &mut f,
                c.redispatches == 0,
                format!("redispatches={} want 0 (nothing left to redo)", c.redispatches),
            );
            f
        },
    },
    Drill {
        name: "corrupt",
        spec: Some("corrupt:2@0"),
        check: |c| {
            let mut f = Vec::new();
            expect(
                &mut f,
                c.invalid_responses >= 1,
                format!("invalid_responses={} want >=1", c.invalid_responses),
            );
            expect(
                &mut f,
                c.redispatches >= 1,
                format!("redispatches={} want >=1", c.redispatches),
            );
            expect(
                &mut f,
                c.harvested_cells >= 2,
                format!("harvested_cells={} want >=2 (valid prefix kept)", c.harvested_cells),
            );
            f
        },
    },
    Drill {
        name: "dup",
        spec: Some("dup@2"),
        check: |c| {
            let mut f = Vec::new();
            expect(
                &mut f,
                c.duplicate_cells == 4,
                format!(
                    "duplicate_cells={} want 4 (each of 4 cells echoed once)",
                    c.duplicate_cells
                ),
            );
            expect(&mut f, c.redispatches == 0, format!("redispatches={} want 0", c.redispatches));
            expect(
                &mut f,
                c.worker_crashes == 0,
                format!("worker_crashes={} want 0", c.worker_crashes),
            );
            f
        },
    },
    Drill {
        name: "stale",
        spec: Some("stale@0"),
        check: |c| {
            let mut f = Vec::new();
            expect(
                &mut f,
                c.stale_protocol == 1,
                format!("stale_protocol={} want 1", c.stale_protocol),
            );
            expect(&mut f, c.redispatches == 1, format!("redispatches={} want 1", c.redispatches));
            expect(
                &mut f,
                c.harvested_cells == 0,
                format!(
                    "harvested_cells={} want 0 (stale response fully distrusted)",
                    c.harvested_cells
                ),
            );
            f
        },
    },
];

fn main() {
    let cli = Cli::from_args();
    if cli.dist.is_some() {
        // Worker role: serve the assigned shard of the demo grid and exit
        // (run_dist never returns with a task set).
        let _ = run_dist(demo::walk_cells(), &fabric_opts(), &dist_opts(cli.dist.clone()));
        unreachable!("run_dist exits in worker mode");
    }

    let baseline = match run_fabric(demo::walk_cells(), &fabric_opts()) {
        Ok(report) => render(report.results()),
        Err(e) => {
            eprintln!("fabric_chaos: serial baseline failed: {e}");
            std::process::exit(2);
        }
    };

    let mut failed = 0usize;
    for drill in DRILLS {
        match drill.spec {
            Some(spec) => std::env::set_var("SWEEP_DIST_CHAOS", spec),
            None => std::env::remove_var("SWEEP_DIST_CHAOS"),
        }
        eprintln!("fabric_chaos: drill {} ({})", drill.name, drill.spec.unwrap_or("no chaos"));
        let report = match run_dist(demo::walk_cells(), &fabric_opts(), &dist_opts(None)) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("fabric_chaos: drill {} errored: {e}", drill.name);
                failed += 1;
                continue;
            }
        };
        let mut problems = Vec::new();
        if !report.is_complete() {
            problems.push(format!("report incomplete: {}", report.partial_note().trim_end()));
        }
        let merged = render(report.results());
        if merged != baseline {
            problems.push(format!(
                "merged report diverged from the serial run ({} vs {} lines)",
                merged.len(),
                baseline.len()
            ));
            for (m, b) in merged.iter().zip(&baseline) {
                if m != b {
                    problems.push(format!("  first diff: dist {m:?} vs serial {b:?}"));
                    break;
                }
            }
        }
        problems.extend((drill.check)(&report.counters.dist));
        if problems.is_empty() {
            eprintln!("fabric_chaos: drill {} ok [{}]", drill.name, report.counters.dist.render());
        } else {
            failed += 1;
            eprintln!(
                "fabric_chaos: drill {} FAILED [{}]",
                drill.name,
                report.counters.dist.render()
            );
            for p in &problems {
                eprintln!("fabric_chaos:   {p}");
            }
        }
    }
    std::env::remove_var("SWEEP_DIST_CHAOS");

    if failed > 0 {
        eprintln!("fabric_chaos: {failed} of {} drills FAILED", DRILLS.len());
        std::process::exit(1);
    }
    println!("fabric_chaos: {} drills passed", DRILLS.len());
}

fn render<'a>(
    results: impl Iterator<Item = &'a bench_harness::runner::RunSummary<(u64, f64)>>,
) -> Vec<String> {
    results.map(|r| format!("{:?}", (&r.label, r.seed, &r.output))).collect()
}
