//! `bench_pps` — the tracked packets-per-second metric.
//!
//! Runs a small set of hot-path scenarios (raw event loop, single-path bulk
//! transfer, two-path MPTCP, faulted two-path MPTCP) on BOTH engines — the
//! default fast engine (timer wheel, pooled packets, batched delivery) and
//! [`EngineConfig::reference`], which is the pre-overhaul event loop — and
//! reports, for each, the sustained link-level packet transmissions per
//! wall-clock second plus the default/reference speedup. The speedup is a
//! same-process, same-binary A/B, so it is largely machine-independent and
//! is what the regression gate tracks.
//!
//! Results are written as machine-readable JSON (`BENCH_pps.json`) so every
//! later PR can be judged against the checked-in trajectory.
//!
//! Wall-clock note: this binary *measures* wall time (that is its whole
//! purpose); the simulations it drives remain strictly deterministic.
//!
//! Usage:
//!   bench_pps [--out FILE] [--quick] [--check BASELINE] [--pre-pr FILE]
//!            [--matrix]
//!
//! `--check` compares the freshly measured speedups against a checked-in
//! baseline file and exits nonzero if any scenario's speedup fell more than
//! 20% below the baseline's. `--pre-pr` merges a pre-overhaul binary's JSON
//! output into the report (`pre_pr_pps` / `speedup_vs_pre_pr` per scenario).
//! `--matrix` times every engine-knob combination instead (diagnostics).

use congestion::AlgorithmKind;
use netsim::prelude::*;
use std::time::Instant;
use transport::{attach_flow, FlowConfig, PathSpec};

/// Minimum wall-clock time to accumulate per measurement, seconds.
const MEASURE_SECS: f64 = 0.7;
const QUICK_SECS: f64 = 0.15;
/// `--check` tolerance: fail if speedup < (1 - this) × baseline speedup.
const CHECK_TOLERANCE: f64 = 0.20;

struct Scenario {
    name: &'static str,
    run: fn(EngineConfig) -> u64,
}

/// Sum of fully transmitted packets across every link: the "packets" in pps.
fn packets_forwarded(sim: &Simulator) -> u64 {
    (0..sim.world().link_count()).map(|l| sim.world().link(l).stats().tx_pkts).sum()
}

fn run_event_loop(engine: EngineConfig) -> u64 {
    let mut sim = Simulator::with_engine(1, engine);
    let l = sim
        .add_link(LinkConfig::new(1_000_000_000, SimDuration::from_micros(10)).queue_limit(20_000));
    let sink = sim.add_agent(Box::new(workload::Sink::new()));
    let route = Route::new(vec![l], sink);
    for _ in 0..10_000 {
        sim.world_mut().send_packet(sink, route.clone(), 1500, Payload::Raw);
    }
    sim.run_to_completion();
    packets_forwarded(&sim)
}

fn run_bulk_transfer(engine: EngineConfig) -> u64 {
    let mut sim = Simulator::with_engine(1, engine);
    let fwd = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(1)));
    let rev = sim.add_link(LinkConfig::new(100_000_000, SimDuration::from_millis(1)));
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(1_000_000),
        AlgorithmKind::Reno.build(1),
        &[PathSpec::new(vec![fwd], vec![rev])],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(10.0));
    assert!(flow.is_finished(&sim));
    packets_forwarded(&sim)
}

fn two_path_sim(engine: EngineConfig) -> (Simulator, PathSpec, PathSpec) {
    let mut sim = Simulator::with_engine(1, engine);
    let mk = |sim: &mut Simulator| {
        let f = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
        let r = sim.add_link(LinkConfig::new(50_000_000, SimDuration::from_millis(2)));
        PathSpec::new(vec![f], vec![r])
    };
    let p1 = mk(&mut sim);
    let p2 = mk(&mut sim);
    (sim, p1, p2)
}

fn run_mptcp_two_paths(engine: EngineConfig) -> u64 {
    let (mut sim, p1, p2) = two_path_sim(engine);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(1_000_000),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(10.0));
    assert!(flow.is_finished(&sim));
    packets_forwarded(&sim)
}

fn run_mptcp_faulted(engine: EngineConfig) -> u64 {
    let (mut sim, p1, p2) = two_path_sim(engine);
    FaultScript::new()
        .at(
            SimTime::from_secs_f64(0.0),
            FaultAction::SetLoss { link: p1.fwd[0], model: LossModel::iid(0.01) },
        )
        .blackout(p2.fwd[0], SimTime::from_secs_f64(0.1), SimTime::from_secs_f64(0.4))
        .install(&mut sim);
    let flow = attach_flow(
        &mut sim,
        FlowConfig::new(0).transfer_bytes(1_000_000).dead_after_backoffs(Some(2)),
        AlgorithmKind::Lia.build(2),
        &[p1, p2],
        SimDuration::ZERO,
    );
    sim.run_until(SimTime::from_secs_f64(20.0));
    assert!(flow.is_finished(&sim));
    packets_forwarded(&sim)
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "event-loop", run: run_event_loop },
    Scenario { name: "bulk-transfer", run: run_bulk_transfer },
    Scenario { name: "mptcp-two-paths", run: run_mptcp_two_paths },
    Scenario { name: "mptcp-two-paths-faulted", run: run_mptcp_faulted },
];

/// Repeats `run` until at least `min_secs` of wall time has accumulated
/// (after one unmeasured warm-up run) and returns packets per second.
fn measure(run: fn(EngineConfig) -> u64, engine: EngineConfig, min_secs: f64) -> f64 {
    let _ = run(engine); // warm-up
    let mut pkts = 0u64;
    let start = Instant::now();
    loop {
        pkts += run(engine);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return pkts as f64 / elapsed;
        }
    }
}

struct Row {
    name: &'static str,
    pps: f64,
    reference_pps: f64,
    /// The pre-overhaul *binary*'s pps for this scenario (`--pre-pr FILE`):
    /// unlike `reference_pps` (the old engine compiled with this PR's
    /// transport and LTO work), this captures the full before/after.
    pre_pr_pps: Option<f64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.pps / self.reference_pps
    }
}

/// Pulls `"key": <number>` out of a single JSON scenario line. The baseline
/// is this binary's own single-line-per-scenario output, so a real JSON
/// parser would be dead weight (the workspace has no serde and must not grow
/// one).
fn json_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn json_name(line: &str) -> Option<&str> {
    let at = line.find("\"name\": \"")? + "\"name\": \"".len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Compares measured speedups against the baseline file; returns the list of
/// regressions (scenario, measured, required).
fn check_against(baseline: &str, rows: &[Row]) -> Vec<String> {
    let mut failures = Vec::new();
    for line in baseline.lines() {
        let (Some(name), Some(base)) = (json_name(line), json_number(line, "speedup")) else {
            continue;
        };
        let Some(row) = rows.iter().find(|r| r.name == name) else {
            failures.push(format!("{name}: in baseline but not measured"));
            continue;
        };
        let floor = base * (1.0 - CHECK_TOLERANCE);
        if row.speedup() < floor {
            failures.push(format!(
                "{name}: speedup {:.2}x fell below {floor:.2}x (baseline {base:.2}x - 20%)",
                row.speedup()
            ));
        }
    }
    failures
}

fn render(rows: &[Row]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let pre = r.pre_pr_pps.map_or(String::new(), |p| {
                format!(", \"pre_pr_pps\": {p:.1}, \"speedup_vs_pre_pr\": {:.3}", r.pps / p)
            });
            format!(
                "    {{\"name\": \"{}\", \"pps\": {:.1}, \"reference_pps\": {:.1}, \
                 \"speedup\": {:.3}{pre}}}",
                r.name,
                r.pps,
                r.reference_pps,
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": 2,\n  \"note\": \"reference = the reference engine \
         (binary heap, boxed packets, unbatched delivery) compiled into this \
         binary; pre_pr = the pre-overhaul binary measured interleaved on the \
         same machine\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut pre_pr: Option<String> = None;
    let quick = args.iter().any(|a| a == "--quick");
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" && i + 1 < args.len() {
            out = Some(args[i + 1].clone());
            i += 1;
        } else if args[i] == "--check" && i + 1 < args.len() {
            check = Some(args[i + 1].clone());
            i += 1;
        } else if args[i] == "--pre-pr" && i + 1 < args.len() {
            pre_pr = Some(args[i + 1].clone());
            i += 1;
        }
        i += 1;
    }
    // Per-scenario pps of the pre-overhaul binary, from its own JSON output.
    let pre_pr_of = |name: &str| -> Option<f64> {
        let text = std::fs::read_to_string(pre_pr.as_ref()?).ok()?;
        text.lines().find(|l| json_name(l) == Some(name)).and_then(|l| json_number(l, "pps"))
    };
    let secs = if quick { QUICK_SECS } else { MEASURE_SECS };
    // Diagnostic mode: time every engine-knob combination per scenario, to
    // attribute a speedup (or regression) to the queue, the pool, or the
    // batching individually. Not part of the JSON contract.
    if args.iter().any(|a| a == "--matrix") {
        for sc in SCENARIOS {
            eprintln!("{}:", sc.name);
            for queue in [QueueKind::TimerWheel, QueueKind::BinaryHeap] {
                for pool_packets in [true, false] {
                    for batch_acks in [true, false] {
                        let engine = EngineConfig { queue, pool_packets, batch_acks };
                        let pps = measure(sc.run, engine, secs);
                        eprintln!(
                            "  {queue:<12?} pool={pool_packets:<5} \
                             batch={batch_acks:<5} {pps:>12.0} pps"
                        );
                    }
                }
            }
        }
        return;
    }
    let mut rows = Vec::new();
    for sc in SCENARIOS {
        // Interleave: default, reference, default, reference — so slow drifts
        // in machine load hit both engines roughly equally.
        let mut pps = 0.0;
        let mut reference_pps = 0.0;
        for _ in 0..2 {
            pps += measure(sc.run, EngineConfig::default(), secs / 2.0);
            reference_pps += measure(sc.run, EngineConfig::reference(), secs / 2.0);
        }
        let row = Row {
            name: sc.name,
            pps: pps / 2.0,
            reference_pps: reference_pps / 2.0,
            pre_pr_pps: pre_pr_of(sc.name),
        };
        eprintln!(
            "{:28} {:>12.0} pps  (reference {:>12.0}, speedup {:.2}x)",
            row.name,
            row.pps,
            row.reference_pps,
            row.speedup()
        );
        rows.push(row);
    }
    let json = render(&rows);
    match out {
        Some(path) => std::fs::write(&path, &json).expect("write BENCH_pps.json"),
        None => print!("{json}"),
    }
    if let Some(path) = check {
        let baseline = std::fs::read_to_string(&path).expect("read --check baseline");
        let failures = check_against(&baseline, &rows);
        if !failures.is_empty() {
            eprintln!("pps regression vs {path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("pps check vs {path}: ok");
    }
}
