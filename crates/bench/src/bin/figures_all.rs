//! Regenerates every figure in one crash-safe run.
//!
//! Pass --smoke/--quick/--full and optionally --jobs N. With --journal PATH
//! (or the SWEEP_JOURNAL env var) each completed figure is checkpointed to
//! an append-only journal: kill the run at any point, rerun the same
//! command, and only the unfinished figures execute — the final stdout is
//! byte-identical to an uninterrupted run (CI's `fabric` job pins this).
//! A panicking or deadline-blown figure is retried with backoff and, on
//! exhaustion, quarantined: the surviving figures still print and the
//! process exits 1 with a partial-sweep note on stderr. With --workers N
//! (or SWEEP_WORKERS) the figures run in N supervised worker processes —
//! same byte-identical stdout, plus survival of whole worker losses.

use bench_harness::fabric::{run_dist, DistOptions, FabricOptions};
use bench_harness::{figs, Cli};

fn main() {
    let cli = Cli::from_args();
    let opts = FabricOptions::from_cli(&cli);
    let report = match run_dist(
        figs::fig_cells(cli.scale),
        &opts,
        &DistOptions::from_cli(&cli, "figures"),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("figures_all: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());
    for r in report.results() {
        print!("==== {} ====\n{}\n", r.label, r.output);
    }
    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
