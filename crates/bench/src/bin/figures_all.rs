//! Regenerates every figure in one run. Pass --smoke/--quick/--full.

fn main() {
    let scale = bench_harness::Scale::from_args();
    print!("{}", bench_harness::run_all(scale));
}
