//! Tiny deterministic sweep used to drill the crash-safe fabric itself —
//! CI's `fabric` job builds this, SIGKILLs it mid-sweep, resumes from the
//! journal, and diffs the resumed stdout against an uninterrupted run; the
//! `dist-fabric` job runs it with `--workers 3` and diffs the distributed
//! merge against the serial one.
//!
//! The 12 cells compute a cheap pseudo-random walk (u64 accumulator plus an
//! f64 mean, exercising bit-exact float journaling) — the shared
//! [`bench_harness::fabric::demo`] workload. Knobs, all optional:
//!
//! * `--journal PATH` / `SWEEP_JOURNAL` — checkpoint + resume as usual;
//! * `--workers N` / `SWEEP_WORKERS` — distribute the grid across N worker
//!   processes (self-exec) through the supervisor;
//! * `FABRIC_SMOKE_SLEEP_MS=N` — each cell sleeps N ms first, so an external
//!   `timeout -s KILL` reliably lands while the sweep is mid-flight;
//! * `FABRIC_SMOKE_FAIL=cell-03,cell-07` — the named cells panic on every
//!   attempt, drilling retry + quarantine (the run then exits 1 with a
//!   partial report, and the quarantined cells drop repro stubs).
//!
//! stdout is one `(label, seed, output)` Debug line per completed cell, in
//! input order — byte-comparable across runs by construction.

use bench_harness::fabric::demo;
use bench_harness::fabric::{run_dist, DistOptions, FabricOptions};
use bench_harness::Cli;

fn env_ms(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(ms) => Some(ms),
        Err(_) => {
            eprintln!("warning: ignoring unusable {name}={raw:?} (want integer milliseconds)");
            None
        }
    }
}

fn main() {
    let cli = Cli::from_args();
    let sleep_ms = env_ms("FABRIC_SMOKE_SLEEP_MS");
    let fail: Vec<String> = std::env::var("FABRIC_SMOKE_FAIL")
        .map(|s| s.split(',').map(|t| t.trim().to_owned()).filter(|t| !t.is_empty()).collect())
        .unwrap_or_default();

    let cells = demo::walk_cells_with(sleep_ms, &fail);
    let report = match run_dist(
        cells,
        &FabricOptions::from_cli(&cli),
        &DistOptions::from_cli(&cli, demo::WALK_SUITE),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fabric_smoke: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());
    for r in report.results() {
        println!("{:?}", (&r.label, r.seed, &r.output));
    }
    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
