//! Tiny deterministic sweep used to drill the crash-safe fabric itself —
//! CI's `fabric` job builds this, SIGKILLs it mid-sweep, resumes from the
//! journal, and diffs the resumed stdout against an uninterrupted run.
//!
//! The 12 cells compute a cheap pseudo-random walk (u64 accumulator plus an
//! f64 mean, exercising bit-exact float journaling). Knobs, all optional:
//!
//! * `--journal PATH` / `SWEEP_JOURNAL` — checkpoint + resume as usual;
//! * `FABRIC_SMOKE_SLEEP_MS=N` — each cell sleeps N ms first, so an external
//!   `timeout -s KILL` reliably lands while the sweep is mid-flight;
//! * `FABRIC_SMOKE_FAIL=cell-03,cell-07` — the named cells panic on every
//!   attempt, drilling retry + quarantine (the run then exits 1 with a
//!   partial report, and the quarantined cells drop repro stubs).
//!
//! stdout is one `(label, seed, output)` Debug line per completed cell, in
//! input order — byte-comparable across runs by construction.

use bench_harness::fabric::{run_fabric, FabricCell, FabricOptions, Fingerprint};
use bench_harness::Cli;

const CELLS: u64 = 12;

/// A deterministic per-cell workload: a splitmix-style walk folded into a
/// u64 checksum and an f64 mean. Pure function of the seed.
fn walk(seed: u64) -> (u64, f64) {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut sum = 0u64;
    let mut mean = 0.0f64;
    for i in 0..4096u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        sum = sum.wrapping_add(x);
        mean += (x as f64 / u64::MAX as f64 - mean) / (i + 1) as f64;
    }
    (sum, mean)
}

fn env_ms(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(ms) => Some(ms),
        Err(_) => {
            eprintln!("warning: ignoring unusable {name}={raw:?} (want integer milliseconds)");
            None
        }
    }
}

fn main() {
    let cli = Cli::from_args();
    let sleep_ms = env_ms("FABRIC_SMOKE_SLEEP_MS");
    let fail: Vec<String> = std::env::var("FABRIC_SMOKE_FAIL")
        .map(|s| s.split(',').map(|t| t.trim().to_owned()).filter(|t| !t.is_empty()).collect())
        .unwrap_or_default();

    let cells: Vec<FabricCell<(u64, f64)>> = (0..CELLS)
        .map(|i| {
            let label = format!("cell-{i:02}");
            let bomb = fail.iter().any(|f| f == &label);
            let cell_label = label.clone();
            FabricCell::new(label, i, move || {
                if let Some(ms) = sleep_ms {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                assert!(!bomb, "fabric_smoke: injected failure in {cell_label}");
                walk(i)
            })
            .config(Fingerprint::new().str("fabric_smoke").u64(i))
        })
        .collect();

    let report = match run_fabric(cells, &FabricOptions::from_cli(&cli)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fabric_smoke: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());
    for r in report.results() {
        println!("{:?}", (&r.label, r.seed, &r.output));
    }
    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
