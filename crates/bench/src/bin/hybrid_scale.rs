//! Datacenter-scale energy study on the hybrid fluid/packet engine
//! (FatTree, permutation traffic, per-CC-model J/Gbit and throughput
//! tables).
//!
//! This is the scale demonstration the pure packet stack cannot reach: at
//! `--full` the fabric is FatTree(k = 32) — 8192 hosts, 49 152 links — with
//! 100 000 long-lived two-subflow flows integrated as Equation-(3) fluids
//! plus a packet-level population of short transfers riding the same links
//! (fluid traffic installed as background load, stragglers handed off to
//! the fluid regime mid-run). One cell per congestion-control model.
//!
//! Runs through the crash-safe sweep fabric: `--journal PATH` checkpoints
//! each completed cell and resumes after a kill; `--smoke/--quick/--full`
//! select the scale tier; `--workers N` (or `SWEEP_WORKERS`) distributes
//! the cells over N worker processes with leases, heartbeats, and
//! re-dispatch on worker loss. Same seed + same tier → byte-identical
//! stdout regardless of worker count (all state derives from the simulator
//! clock and seeded RNG; outputs are journaled bit-exactly).

use bench_harness::fabric::journal::{JournalValue, ValueReader};
use bench_harness::fabric::{
    run_dist, DistOptions, FabricCell, FabricOptions, Fingerprint, JournalCodec,
};
use bench_harness::{Cli, Scale};
use congestion::AlgorithmKind;
use energy_model::WiredCpuModel;
use mptcp_energy::hybrid::{fluid_model_of, HybridConfig, HybridEngine};
use mptcp_energy::scenarios::CcChoice;
use netsim::{SimDuration, Simulator};
use obs::HybridCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use topology::{FatTree, LinkParams};
use transport::FlowConfig;
use workload::permutation_pairs;

/// One scale tier of the study.
#[derive(Clone, Copy, Debug)]
struct Tier {
    /// FatTree arity (hosts = k³/4).
    k: usize,
    /// Long-lived fluid flows (two subflows each).
    long_flows: usize,
    /// Short packet-level transfers sharing the fabric.
    short_flows: usize,
    /// Coupling epochs to run.
    epochs: usize,
    /// Epoch length, seconds.
    epoch_s: f64,
    /// Fluid RK4 step, seconds.
    fluid_dt: f64,
}

fn tier(scale: Scale) -> Tier {
    match scale {
        Scale::Smoke => {
            Tier { k: 4, long_flows: 64, short_flows: 12, epochs: 4, epoch_s: 0.1, fluid_dt: 1e-3 }
        }
        Scale::Quick => Tier {
            k: 8,
            long_flows: 2_048,
            short_flows: 64,
            epochs: 6,
            epoch_s: 0.2,
            fluid_dt: 5e-4,
        },
        Scale::Full => Tier {
            k: 32,
            long_flows: 100_000,
            short_flows: 512,
            epochs: 8,
            epoch_s: 0.25,
            fluid_dt: 2e-4,
        },
    }
}

/// Per-cell output journaled bit-exactly.
#[derive(Clone, Debug, PartialEq)]
struct CellOut {
    energy_j: f64,
    delivered_bits: f64,
    joules_per_gbit: f64,
    goodput_bps: f64,
    hybrid: HybridCounters,
}

impl JournalCodec for CellOut {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        self.energy_j.encode(out);
        self.delivered_bits.encode(out);
        self.joules_per_gbit.encode(out);
        self.goodput_bps.encode(out);
        self.hybrid.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(CellOut {
            energy_j: f64::decode(r)?,
            delivered_bits: f64::decode(r)?,
            joules_per_gbit: f64::decode(r)?,
            goodput_bps: f64::decode(r)?,
            hybrid: HybridCounters::decode(r)?,
        })
    }
}

/// The inter-pod path RTT of the FatTree under study (6 links × (100 µs
/// propagation + 100 Mb/s serialization of a 1500 B segment) each way,
/// ACKs back) — the calibration RTT for the fluid price curves.
fn calib_rtt_s(host_bps: u64) -> f64 {
    let ser_data = 1500.0 * 8.0 / host_bps as f64;
    let ser_ack = 40.0 * 8.0 / host_bps as f64;
    6.0 * (2.0 * 100e-6 + ser_data + ser_ack)
}

fn run_cell(seed: u64, t: Tier, cc: &CcChoice) -> CellOut {
    const HOST_BPS: u64 = 100_000_000;
    let mut sim = Simulator::new(seed);
    let params = LinkParams::new(HOST_BPS, SimDuration::from_micros(100)).queue(32);
    let ft = FatTree::build(&mut sim, t.k, params);
    let hosts = ft.hosts();

    let cfg = HybridConfig {
        epoch_s: t.epoch_s,
        fluid_dt: t.fluid_dt,
        // Short flows that have not finished after two epochs cross into
        // the fluid regime — the handoff path is exercised at scale.
        handoff_age_s: 2.0 * t.epoch_s,
        calib_rtt_s: calib_rtt_s(HOST_BPS),
        ..HybridConfig::default()
    };
    let Some(model) = fluid_model_of(cc) else {
        // The cell list below only contains algorithms with a §IV fluid
        // form, so this is unreachable by construction.
        return CellOut {
            energy_j: 0.0,
            delivered_bits: 0.0,
            joules_per_gbit: f64::INFINITY,
            goodput_bps: 0.0,
            hybrid: HybridCounters::default(),
        };
    };
    let mut eng = HybridEngine::new(sim, hosts, WiredCpuModel::energy_proportional_server(), cfg);

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0C5);
    // Long-lived fluid population: rounds of permutation traffic until the
    // target count is reached; every flow starts at a fair-share rate of
    // its host uplink.
    let cap_pps = HOST_BPS as f64 / (8.0 * 1500.0);
    let per_host = t.long_flows.div_ceil(hosts).max(1);
    let x0 = (cap_pps / (2.0 * per_host as f64)).max(1.0);
    let mut placed = 0;
    while placed < t.long_flows {
        let pairs = permutation_pairs(hosts, &mut rng);
        for &(src, dst) in pairs.iter().take(t.long_flows - placed) {
            let paths = ft.sample_paths(src, dst, 2, &mut rng);
            eng.add_fluid_flow(model, &paths, x0, src);
            placed += 1;
        }
    }
    // Short packet transfers: staggered starts across the first epoch,
    // 48 KB – 384 KB each.
    let pairs = permutation_pairs(hosts, &mut rng);
    for j in 0..t.short_flows {
        let (src, dst) = pairs[j % pairs.len()];
        let paths = ft.sample_paths(src, dst, 2, &mut rng);
        let pkts = rng.gen_range(32..256u64);
        let fc = FlowConfig::new(j as u64)
            .transfer_pkts(pkts)
            .min_rto(SimDuration::from_millis(10))
            .rcv_buf_pkts(512);
        let jitter = SimDuration::from_millis((j as u64 * 7) % (t.epoch_s * 1e3) as u64);
        eng.add_packet_flow_from(fc, cc, &paths, jitter, src);
    }

    eng.run_epochs(t.epochs);
    CellOut {
        energy_j: eng.energy_joules(),
        delivered_bits: eng.delivered_bits(),
        joules_per_gbit: eng.joules_per_gbit(),
        goodput_bps: eng.delivered_bits() / (t.epochs as f64 * t.epoch_s),
        hybrid: eng.counters(),
    }
}

fn models() -> Vec<(&'static str, CcChoice)> {
    vec![
        ("olia", CcChoice::Base(AlgorithmKind::Olia)),
        ("lia", CcChoice::Base(AlgorithmKind::Lia)),
        ("ewtcp", CcChoice::Base(AlgorithmKind::Ewtcp)),
        ("balia", CcChoice::Base(AlgorithmKind::Balia)),
        ("dts", CcChoice::dts()),
        ("dts-phi", CcChoice::dts_phi()),
    ]
}

fn main() {
    let cli = Cli::from_args();
    let t = tier(cli.scale);
    let cells: Vec<FabricCell<CellOut>> = models()
        .into_iter()
        .enumerate()
        .map(|(i, (label, cc))| {
            let seed = 0x5CA1E + i as u64;
            FabricCell::new(label, seed, move || run_cell(seed, t, &cc)).config(
                Fingerprint::new()
                    .str("hybrid_scale")
                    .str(cli.scale.name())
                    .u64(t.k as u64)
                    .u64(t.long_flows as u64)
                    .u64(t.short_flows as u64)
                    .u64(t.epochs as u64),
            )
        })
        .collect();

    let report = match run_dist(
        cells,
        &FabricOptions::from_cli(&cli),
        &DistOptions::from_cli(&cli, "hybrid_scale"),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("hybrid_scale: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());

    println!(
        "# hybrid_scale {} — FatTree(k={}), {} fluid + {} packet flows, {} epochs x {}s",
        Scale::name(cli.scale),
        t.k,
        t.long_flows,
        t.short_flows,
        t.epochs,
        t.epoch_s
    );
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>14} {:>9} {:>9}",
        "model", "J/Gbit", "goodput Gbps", "energy kJ", "deliv. Gbit", "handoffs", "cap_hits"
    );
    for r in report.results() {
        let o = &r.output;
        println!(
            "{:<8} {:>12.3} {:>14.4} {:>12.3} {:>14.3} {:>9} {:>9}",
            r.label,
            o.joules_per_gbit,
            o.goodput_bps / 1e9,
            o.energy_j / 1e3,
            o.delivered_bits / 1e9,
            o.hybrid.handoffs,
            o.hybrid.price_cap_hits
        );
    }
    for r in report.results() {
        eprintln!("{}: {}", r.label, r.output.hybrid.render());
    }
    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
