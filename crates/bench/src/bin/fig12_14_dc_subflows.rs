//! Regenerates the paper's Fig. 12_14 table rows. Pass --smoke/--quick/--full.

fn main() {
    let scale = bench_harness::Scale::from_args();
    print!("{}", bench_harness::fig12_14::run(scale));
}
