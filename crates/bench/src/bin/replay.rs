//! Re-executes an invariant-violation repro artifact deterministically.
//!
//! ```text
//! cargo run --bin replay --features check-invariants -- artifacts/repro-7.jsonl
//! ```
//!
//! Exit status: 0 when the recorded violation reproduced exactly (same
//! message at the same simulated nanosecond), 1 when it did not, 2 on usage
//! or parse errors.

use bench_harness::repro::{replay_artifact, ViolationRecord};
use std::path::Path;
use std::process::ExitCode;

fn show(tag: &str, v: &Option<ViolationRecord>) {
    match v {
        Some(v) => println!("{tag}: t={:.9}s  {}", v.at_ns as f64 / 1e9, v.message),
        None => println!("{tag}: no violation"),
    }
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: replay <repro-artifact.jsonl>");
        return ExitCode::from(2);
    };
    if !cfg!(feature = "check-invariants") {
        eprintln!(
            "warning: built without the check-invariants feature — the replay runs but \
             cannot observe violations; rebuild with --features check-invariants"
        );
    }
    let report = match replay_artifact(Path::new(&path)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    show("recorded", &report.original);
    show("replayed", &report.replayed);
    if report.reproduced() {
        println!("violation reproduced");
        ExitCode::SUCCESS
    } else {
        println!("violation NOT reproduced");
        ExitCode::FAILURE
    }
}
