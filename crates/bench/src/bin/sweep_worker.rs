//! Attach-mode sweep worker: watches a spool directory, claims shard
//! requests for suites it hosts, and streams results back in the dist wire
//! format. The supervisor side is any figure binary run with
//! `SWEEP_SPAWN=attach` — it publishes requests into the spool instead of
//! spawning processes, and this binary (started separately, possibly many
//! times, possibly on another filesystem-sharing host) does the work.
//!
//! ```text
//! terminal 1:  SWEEP_SPAWN=attach fabric_smoke --workers 3 --spool /tmp/spool
//! terminal 2+: sweep_worker --spool /tmp/spool      # one or more
//! ```
//!
//! Usage: `sweep_worker --spool DIR [--id NAME]`. The worker scans
//! `DIR` and every `DIR/grid-*/` below it, claims unclaimed requests
//! (O_EXCL claim files arbitrate racing workers), serves them, and exits
//! once a supervisor writes the spool's shutdown marker. Hosted suites:
//! the shared demo `walk` workload. Real sweeps self-exec their own binary
//! instead — attach mode exists for externally-managed worker pools and
//! for drilling the claim/heartbeat path.

use bench_harness::fabric::demo;
use bench_harness::fabric::dist::{attach_loop, SuiteRegistry};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: sweep_worker --spool DIR [--id NAME]");
    std::process::exit(2);
}

fn main() {
    let mut spool: Option<PathBuf> = None;
    let mut id: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--spool" => spool = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--id" => id = Some(args.next().unwrap_or_else(|| usage())),
            other => {
                if let Some(v) = other.strip_prefix("--spool=") {
                    spool = Some(PathBuf::from(v));
                } else if let Some(v) = other.strip_prefix("--id=") {
                    id = Some(v.to_owned());
                } else {
                    eprintln!("sweep_worker: unknown argument {other:?}");
                    usage();
                }
            }
        }
    }
    let Some(spool) = spool else { usage() };
    let id = id.unwrap_or_else(|| format!("w{}", std::process::id()));

    let mut suites = SuiteRegistry::new();
    let walk = demo::walk_suite();
    suites.register(demo::WALK_SUITE, move |label, seed| walk(label, seed));

    // The supervisor works inside a per-grid subdirectory; accept either
    // the grid directory itself or its parent. `attach_loop` serves one
    // grid until its supervisor writes the shutdown marker, so: wait for a
    // first grid to appear, serve every grid not yet served, and exit once
    // a rescan turns up nothing new.
    let poll = Duration::from_millis(25);
    let mut served: std::collections::BTreeSet<PathBuf> = std::collections::BTreeSet::new();
    let mut observed = false;
    loop {
        let fresh: Vec<PathBuf> =
            grid_dirs(&spool).into_iter().filter(|d| !served.contains(d)).collect();
        if fresh.is_empty() {
            if observed {
                break;
            }
            std::thread::sleep(poll);
            continue;
        }
        observed = true;
        for dir in fresh {
            if let Err(e) = attach_loop(&dir, &id, &suites, poll) {
                eprintln!("sweep_worker {id}: {e}");
                std::process::exit(2);
            }
            served.insert(dir);
        }
    }
    eprintln!("sweep_worker {id}: shutdown observed, exiting");
}

/// The spool directories to serve: `spool` itself if it already has a
/// manifest, else every `grid-*/` child that does.
fn grid_dirs(spool: &PathBuf) -> Vec<PathBuf> {
    if spool.join("manifest.jsonl").exists() {
        return vec![spool.clone()];
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(spool)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("grid-"))
                && p.join("manifest.jsonl").exists()
        })
        .collect();
    dirs.sort();
    dirs
}
