//! Regenerates the paper's Fig. 10 table rows. Pass --smoke/--quick/--full.

fn main() {
    let scale = bench_harness::Scale::from_args();
    print!("{}", bench_harness::fig10::run(scale));
}
