//! Ablations over DTS's design choices:
//!
//! * sigmoid slope (the `−10(…)` steepness in Equation (5));
//! * the Pareto scale `c` (the paper argues `c = 1` preserves fairness);
//! * exact exponential vs Algorithm 1's fixed-point Taylor expansion.
//!
//! Each variant runs the Fig. 5(b) bursty two-path scenario (energy to move
//! 8 MB) and, for `c`, the fluid-model friendliness ratio.
//!
//! Pass --smoke/--quick/--full and optionally --jobs N (default: available
//! parallelism, or the SWEEP_JOBS env var) or --workers N (SWEEP_WORKERS)
//! for supervised multi-process execution. Every variant is an independent
//! simulation cell; all three sections form ONE fabric grid, so with
//! --journal PATH (or SWEEP_JOURNAL) a killed sweep resumes across section
//! boundaries and the recomputed tables are byte-identical. A panicking or
//! deadline-blown variant (SWEEP_DEADLINE_S) is retried and, on exhaustion,
//! quarantined: its row is dropped, the rest of the ablation still prints,
//! and the process exits 1 with a partial-sweep note on stderr.
//!
//! With `--trace DIR` (or the `SWEEP_TRACE` env var) each cell writes a
//! JSONL event trace to `DIR/<section>-<label>.jsonl`, summarizable with
//! the `trace_dump` binary. Tracing never changes results (pinned by
//! `tests/sweep_determinism.rs`).

use bench_harness::fabric::{
    run_dist, CellOutcome, DistOptions, FabricCell, FabricOptions, Fingerprint,
};
use bench_harness::{table, Cli, Scale};
use mptcp_energy::scenarios::{run_two_path_bursty_traced, BurstyOptions, CcChoice};
use mptcp_energy::{friendliness_ratio, CcModel, DtsConfig, Psi};
use obs::{CounterSnapshot, TraceSink};
use std::path::{Path, PathBuf};

fn opts(scale: Scale) -> BurstyOptions {
    let transfer = match scale {
        Scale::Smoke => 4_000_000,
        Scale::Quick => 24_000_000,
        Scale::Full => 100_000_000,
    };
    BurstyOptions { transfer_bytes: Some(transfer), duration_s: 600.0, ..BurstyOptions::default() }
}

fn run_cfg(
    cfg: DtsConfig,
    o: &BurstyOptions,
    sink: Option<Box<dyn TraceSink>>,
) -> ((f64, f64, f64), CounterSnapshot) {
    let (r, counters) = run_two_path_bursty_traced(&CcChoice::Dts(cfg), o, sink);
    ((r.energy.joules, r.finish_s.unwrap_or(f64::NAN), r.goodput_bps / 1e6), counters)
}

/// One labelled `DtsConfig` variant as a fabric cell. The fingerprint covers
/// the section, label, and scale-dependent transfer size, so a journal from
/// one ablation grid refuses to feed another.
fn cell(
    section: &'static str,
    label: String,
    cfg: DtsConfig,
    o: BurstyOptions,
    trace: Option<&Path>,
) -> FabricCell<(f64, f64, f64)> {
    let file_label = format!("{section}-{label}");
    let trace: Option<PathBuf> = trace.map(Path::to_path_buf);
    let fp = Fingerprint::new()
        .str("ablation")
        .str(section)
        .str(&label)
        .u64(o.transfer_bytes.unwrap_or(0))
        .u64(o.seed);
    FabricCell::with_counters(label, o.seed, move || {
        let sink = trace.as_deref().and_then(|d| obs::jsonl_sink_in(d, &file_label));
        run_cfg(cfg, &o, sink)
    })
    .config(fp)
}

/// Turns one section's outcomes into table rows, skipping quarantined cells
/// (their absence is reported through the partial-sweep note). `extra`
/// appends section-specific columns given the variant's input-order index.
fn rows_for(
    outcomes: &[CellOutcome<(f64, f64, f64)>],
    extra: impl Fn(usize) -> Vec<String>,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (i, out) in outcomes.iter().enumerate() {
        if let CellOutcome::Done { summary, .. } = out {
            let (j, fct, mbps) = summary.output;
            let mut row = vec![
                summary.label.clone(),
                format!("{j:.1}"),
                format!("{fct:.1}"),
                format!("{mbps:.2}"),
            ];
            row.extend(extra(i));
            rows.push(row);
        }
    }
    rows
}

fn main() {
    let cli = Cli::from_args();
    let o = opts(cli.scale);
    let trace = cli.trace_dir();
    let trace = trace.as_deref();
    if let Some(dir) = trace {
        eprintln!("writing per-cell JSONL traces to {}", dir.display());
    }

    let slopes = [2.0f64, 5.0, 10.0, 20.0];
    let cs = [0.5f64, 1.0, 1.5, 2.0];
    let eps = [("exact", false), ("fixed-point", true)];

    // One grid across all three sections, so a single journal checkpoints
    // the whole ablation and a resume never replays a finished section.
    let mut cells = Vec::new();
    for slope in slopes {
        let cfg = DtsConfig { slope, ..DtsConfig::default() };
        cells.push(cell("slope", format!("{slope}"), cfg, o, trace));
    }
    for c in cs {
        let cfg = DtsConfig { c, ..DtsConfig::default() };
        cells.push(cell("c", format!("{c}"), cfg, o, trace));
    }
    for (name, fixed) in eps {
        let cfg = DtsConfig { fixed_point: fixed, ..DtsConfig::default() };
        cells.push(cell("eps", name.to_owned(), cfg, o, trace));
    }

    let report = match run_dist(
        cells,
        &FabricOptions::from_cli(&cli),
        &DistOptions::from_cli(&cli, "ablation_dts"),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ablation_dts: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", report.counters.render());
    let (slope_out, rest) = report.outcomes.split_at(slopes.len());
    let (c_out, eps_out) = rest.split_at(cs.len());

    println!("== sigmoid slope sweep (c = 1, exact exp) ==");
    print!(
        "{}",
        table(&["slope", "energy (J)", "fct (s)", "Mb/s"], &rows_for(slope_out, |_| Vec::new()))
    );

    println!("\n== Pareto scale c sweep (slope 10) ==");
    let rows = rows_for(c_out, |i| {
        // Fluid friendliness at the design-point ratio: with E[ε] = 1 the
        // aggregate over one shared bottleneck should not exceed one TCP for
        // c ≤ 1 (the paper's fairness argument for c = 1).
        let friend = friendliness_ratio(
            CcModel::loss_based(Psi::Dts(DtsConfig { c: cs[i], ..DtsConfig::default() })),
            1000.0,
            0.1,
            2,
        );
        vec![format!("{friend:.3}")]
    });
    print!("{}", table(&["c", "energy (J)", "fct (s)", "Mb/s", "fluid friendliness"], &rows));

    println!("\n== exact exp vs Algorithm 1 fixed-point Taylor ==");
    print!(
        "{}",
        table(&["epsilon", "energy (J)", "fct (s)", "Mb/s"], &rows_for(eps_out, |_| Vec::new()))
    );

    if !report.is_complete() {
        eprint!("{}", report.partial_note());
        std::process::exit(1);
    }
}
