//! Ablations over DTS's design choices:
//!
//! * sigmoid slope (the `−10(…)` steepness in Equation (5));
//! * the Pareto scale `c` (the paper argues `c = 1` preserves fairness);
//! * exact exponential vs Algorithm 1's fixed-point Taylor expansion.
//!
//! Each variant runs the Fig. 5(b) bursty two-path scenario (energy to move
//! 8 MB) and, for `c`, the fluid-model friendliness ratio.
//!
//! Pass --smoke/--quick/--full.

use bench_harness::{table, Scale};
use mptcp_energy::scenarios::{run_two_path_bursty, BurstyOptions, CcChoice};
use mptcp_energy::{friendliness_ratio, CcModel, DtsConfig, Psi};

fn opts(scale: Scale) -> BurstyOptions {
    let transfer = match scale {
        Scale::Smoke => 4_000_000,
        Scale::Quick => 24_000_000,
        Scale::Full => 100_000_000,
    };
    BurstyOptions { transfer_bytes: Some(transfer), duration_s: 600.0, ..BurstyOptions::default() }
}

fn run_cfg(cfg: DtsConfig, o: &BurstyOptions) -> (f64, f64, f64) {
    let r = run_two_path_bursty(&CcChoice::Dts(cfg), o);
    (r.energy.joules, r.finish_s.unwrap_or(f64::NAN), r.goodput_bps / 1e6)
}

fn main() {
    let scale = Scale::from_args();
    let o = opts(scale);

    println!("== sigmoid slope sweep (c = 1, exact exp) ==");
    let mut rows = Vec::new();
    for slope in [2.0f64, 5.0, 10.0, 20.0] {
        let cfg = DtsConfig { slope, ..DtsConfig::default() };
        let (j, fct, mbps) = run_cfg(cfg, &o);
        rows.push(vec![
            format!("{slope}"),
            format!("{j:.1}"),
            format!("{fct:.1}"),
            format!("{mbps:.2}"),
        ]);
    }
    print!("{}", table(&["slope", "energy (J)", "fct (s)", "Mb/s"], &rows));

    println!("\n== Pareto scale c sweep (slope 10) ==");
    let mut rows = Vec::new();
    for c in [0.5f64, 1.0, 1.5, 2.0] {
        let cfg = DtsConfig { c, ..DtsConfig::default() };
        let (j, fct, mbps) = run_cfg(cfg, &o);
        // Fluid friendliness at the design-point ratio: with E[ε] = 1 the
        // aggregate over one shared bottleneck should not exceed one TCP for
        // c ≤ 1 (the paper's fairness argument for c = 1).
        let friend = friendliness_ratio(
            CcModel::loss_based(Psi::Dts(DtsConfig { c, ..DtsConfig::default() })),
            1000.0,
            0.1,
            2,
        );
        rows.push(vec![
            format!("{c}"),
            format!("{j:.1}"),
            format!("{fct:.1}"),
            format!("{mbps:.2}"),
            format!("{friend:.3}"),
        ]);
    }
    print!("{}", table(&["c", "energy (J)", "fct (s)", "Mb/s", "fluid friendliness"], &rows));

    println!("\n== exact exp vs Algorithm 1 fixed-point Taylor ==");
    let mut rows = Vec::new();
    for (name, fixed) in [("exact", false), ("fixed-point", true)] {
        let cfg = DtsConfig { fixed_point: fixed, ..DtsConfig::default() };
        let (j, fct, mbps) = run_cfg(cfg, &o);
        rows.push(vec![
            name.to_owned(),
            format!("{j:.1}"),
            format!("{fct:.1}"),
            format!("{mbps:.2}"),
        ]);
    }
    print!("{}", table(&["epsilon", "energy (J)", "fct (s)", "Mb/s"], &rows));
}
