//! Ablations over DTS's design choices:
//!
//! * sigmoid slope (the `−10(…)` steepness in Equation (5));
//! * the Pareto scale `c` (the paper argues `c = 1` preserves fairness);
//! * exact exponential vs Algorithm 1's fixed-point Taylor expansion.
//!
//! Each variant runs the Fig. 5(b) bursty two-path scenario (energy to move
//! 8 MB) and, for `c`, the fluid-model friendliness ratio.
//!
//! Pass --smoke/--quick/--full and optionally --jobs N (default: available
//! parallelism, or the SWEEP_JOBS env var). Every variant is an independent
//! simulation cell, fanned out by the deterministic sweep runner.
//!
//! With `--trace DIR` (or the `SWEEP_TRACE` env var) each cell writes a
//! JSONL event trace to `DIR/<section>-<label>.jsonl`, summarizable with
//! the `trace_dump` binary. Tracing never changes results (pinned by
//! `tests/sweep_determinism.rs`).

use bench_harness::runner::{run_sweep_jobs, RunSummary, SweepCell};
use bench_harness::{table, Cli, Scale};
use mptcp_energy::scenarios::{run_two_path_bursty_traced, BurstyOptions, CcChoice};
use mptcp_energy::{friendliness_ratio, CcModel, DtsConfig, Psi};
use obs::{CounterSnapshot, TraceSink};
use std::path::{Path, PathBuf};

fn opts(scale: Scale) -> BurstyOptions {
    let transfer = match scale {
        Scale::Smoke => 4_000_000,
        Scale::Quick => 24_000_000,
        Scale::Full => 100_000_000,
    };
    BurstyOptions { transfer_bytes: Some(transfer), duration_s: 600.0, ..BurstyOptions::default() }
}

fn run_cfg(
    cfg: DtsConfig,
    o: &BurstyOptions,
    sink: Option<Box<dyn TraceSink>>,
) -> ((f64, f64, f64), CounterSnapshot) {
    let (r, counters) = run_two_path_bursty_traced(&CcChoice::Dts(cfg), o, sink);
    ((r.energy.joules, r.finish_s.unwrap_or(f64::NAN), r.goodput_bps / 1e6), counters)
}

/// Runs one labelled `DtsConfig` variant per cell, in parallel. With a trace
/// directory, each cell streams its events to `<dir>/<section>-<label>.jsonl`.
fn sweep_cfgs(
    section: &str,
    variants: Vec<(String, DtsConfig)>,
    o: &BurstyOptions,
    jobs: usize,
    trace: Option<&Path>,
) -> Vec<RunSummary<(f64, f64, f64)>> {
    let cells: Vec<SweepCell<_>> = variants
        .into_iter()
        .map(|(label, cfg)| {
            let file_label = format!("{section}-{label}");
            let trace: Option<PathBuf> = trace.map(Path::to_path_buf);
            SweepCell::with_counters(label, o.seed, move || {
                let sink = trace.as_deref().and_then(|d| obs::jsonl_sink_in(d, &file_label));
                run_cfg(cfg, o, sink)
            })
        })
        .collect();
    run_sweep_jobs(cells, jobs)
}

fn main() {
    let cli = Cli::from_args();
    let o = opts(cli.scale);
    let jobs = cli.jobs();
    let trace = cli.trace_dir();
    let trace = trace.as_deref();
    if let Some(dir) = trace {
        eprintln!("writing per-cell JSONL traces to {}", dir.display());
    }

    println!("== sigmoid slope sweep (c = 1, exact exp) ==");
    let variants = [2.0f64, 5.0, 10.0, 20.0]
        .map(|slope| (format!("{slope}"), DtsConfig { slope, ..DtsConfig::default() }));
    let mut rows = Vec::new();
    for r in sweep_cfgs("slope", variants.to_vec(), &o, jobs, trace) {
        let (j, fct, mbps) = r.output;
        rows.push(vec![r.label, format!("{j:.1}"), format!("{fct:.1}"), format!("{mbps:.2}")]);
    }
    print!("{}", table(&["slope", "energy (J)", "fct (s)", "Mb/s"], &rows));

    println!("\n== Pareto scale c sweep (slope 10) ==");
    let cs = [0.5f64, 1.0, 1.5, 2.0];
    let variants = cs.map(|c| (format!("{c}"), DtsConfig { c, ..DtsConfig::default() }));
    let mut rows = Vec::new();
    for (r, c) in sweep_cfgs("c", variants.to_vec(), &o, jobs, trace).into_iter().zip(cs) {
        let (j, fct, mbps) = r.output;
        // Fluid friendliness at the design-point ratio: with E[ε] = 1 the
        // aggregate over one shared bottleneck should not exceed one TCP for
        // c ≤ 1 (the paper's fairness argument for c = 1).
        let friend = friendliness_ratio(
            CcModel::loss_based(Psi::Dts(DtsConfig { c, ..DtsConfig::default() })),
            1000.0,
            0.1,
            2,
        );
        rows.push(vec![
            r.label,
            format!("{j:.1}"),
            format!("{fct:.1}"),
            format!("{mbps:.2}"),
            format!("{friend:.3}"),
        ]);
    }
    print!("{}", table(&["c", "energy (J)", "fct (s)", "Mb/s", "fluid friendliness"], &rows));

    println!("\n== exact exp vs Algorithm 1 fixed-point Taylor ==");
    let variants = [("exact", false), ("fixed-point", true)].map(|(name, fixed)| {
        (name.to_owned(), DtsConfig { fixed_point: fixed, ..DtsConfig::default() })
    });
    let mut rows = Vec::new();
    for r in sweep_cfgs("eps", variants.to_vec(), &o, jobs, trace) {
        let (j, fct, mbps) = r.output;
        rows.push(vec![r.label, format!("{j:.1}"), format!("{fct:.1}"), format!("{mbps:.2}")]);
    }
    print!("{}", table(&["epsilon", "energy (J)", "fct (s)", "Mb/s"], &rows));
}
