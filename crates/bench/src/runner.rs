//! # runner — deterministic parallel sweep execution
//!
//! The paper's evaluation (§VI) is a grid of independent
//! `(scenario × algorithm × seed)` cells, and so is every suite built on it:
//! the figure harnesses, the chaos soak, the stress grids. Each cell owns a
//! whole [`netsim::Simulator`], so cells share no mutable state and can run
//! on any thread without changing their results — the simulator is
//! single-threaded and seeded, and `Send` (see `netsim::sim::Agent`) only
//! permits moving it, never sharing it.
//!
//! [`run_sweep`] fans a list of [`SweepCell`]s across a `std::thread::scope`
//! worker pool and collects one [`RunSummary`] per cell **in input order**,
//! regardless of completion order. Determinism argument:
//!
//! 1. every cell's closure builds, runs, and summarizes its own simulator —
//!    no cross-cell reads or writes;
//! 2. workers claim cells from an atomic cursor, but each result is written
//!    to the slot indexed by the cell's input position;
//! 3. the pool joins before results are read, so the returned `Vec` is a
//!    pure function of the input cells — byte-identical at `--jobs 1` and
//!    `--jobs N` (asserted by `tests/sweep_determinism.rs`).
//!
//! Worker count: explicit argument > `SWEEP_JOBS` env var > available
//! parallelism. The figure binaries expose it as `--jobs N`
//! ([`crate::Cli::from_args`]).
//!
//! # Examples
//!
//! ```
//! use bench_harness::runner::{run_sweep_jobs, SweepCell};
//!
//! let cells: Vec<SweepCell<u64>> = (0..8)
//!     .map(|seed| SweepCell::new(format!("cell-{seed}"), seed, move || seed * seed))
//!     .collect();
//! let results = run_sweep_jobs(cells, 4);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].label, "cell-3");
//! assert_eq!(results[3].output, 9);
//! ```

use obs::CounterSnapshot;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent simulation cell of a sweep: a label for reports, the RNG
/// seed it was built from, and the closure that builds, runs, and summarizes
/// its own `Simulator`.
///
/// The closure must be `Send` (it is executed on a worker thread); the
/// borrow lifetime `'a` lets cells capture references to sweep-wide options
/// living on the caller's stack.
pub struct SweepCell<'a, T> {
    /// Display label, carried through to the [`RunSummary`].
    pub label: String,
    /// The seed this cell derives its determinism from (informational; the
    /// closure is responsible for actually using it).
    pub seed: u64,
    run: Box<dyn FnOnce() -> (T, CounterSnapshot) + Send + 'a>,
}

impl<'a, T> SweepCell<'a, T> {
    /// Creates a cell from a label, a seed, and the run closure. The cell's
    /// [`RunSummary::counters`] come back empty; use
    /// [`SweepCell::with_counters`] for cells that report observability
    /// counters alongside their output.
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> T + Send + 'a,
    ) -> SweepCell<'a, T> {
        SweepCell::with_counters(label, seed, move || (run(), CounterSnapshot::default()))
    }

    /// Creates a cell whose closure also returns an
    /// [`obs::CounterSnapshot`] (e.g. from
    /// `mptcp_energy::scenarios::counters_of`), surfaced through
    /// [`RunSummary::counters`].
    pub fn with_counters(
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> (T, CounterSnapshot) + Send + 'a,
    ) -> SweepCell<'a, T> {
        SweepCell { label: label.into(), seed, run: Box::new(run) }
    }
}

/// The result of one sweep cell, in the order the cells were submitted.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary<T> {
    /// The cell's label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Whatever the cell's closure returned.
    pub output: T,
    /// Observability counters reported by the cell (empty for cells built
    /// with [`SweepCell::new`]).
    pub counters: CounterSnapshot,
}

/// Parses a `SWEEP_JOBS`-style override; `None` when absent or unusable.
fn parse_jobs(v: Option<&str>) -> Option<usize> {
    v.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Resolves the fallback worker count from an optional `SWEEP_JOBS`-style
/// value and the machine's available parallelism. The fallback order is:
/// usable env value > `available`; an env value that is set but unusable
/// also yields the warning to print — silently ignoring a typo'd
/// `SWEEP_JOBS` could mask a mis-pinned reproducibility run. Pure function
/// of its inputs so the order and warn path are unit-testable.
fn resolve_jobs(env: Option<&str>, available: usize) -> (usize, Option<String>) {
    match env {
        None => (available, None),
        Some(v) => match parse_jobs(Some(v)) {
            Some(n) => (n, None),
            None => (
                available,
                Some(format!(
                    "warning: ignoring SWEEP_JOBS={v:?}: expected a positive integer; \
                     using available parallelism"
                )),
            ),
        },
    }
}

/// The worker count used when none is given explicitly: the `SWEEP_JOBS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism. A `SWEEP_JOBS` value that is set but not
/// a positive integer is reported on stderr (the same input as `--jobs` is a
/// hard usage error) before using the default.
pub fn default_jobs() -> usize {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let env = std::env::var("SWEEP_JOBS").ok();
    let (jobs, warning) = resolve_jobs(env.as_deref(), available);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    jobs
}

/// Extracts a human-readable message from a panic payload. `&str` and
/// `String` payloads (every `panic!`/`assert!` in practice) pass through;
/// anything else (`panic_any` with a custom type) is named as such rather
/// than dropped, so the cell that failed is never anonymous.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one cell under `catch_unwind`; a panic comes back as a message that
/// names the cell (label and seed), so the re-raised payload identifies the
/// failing cell even when the original payload was not a string
/// (`panic_any(42)` and friends).
fn run_cell<T>(cell: SweepCell<'_, T>) -> Result<RunSummary<T>, String> {
    let label = cell.label;
    let seed = cell.seed;
    match catch_unwind(AssertUnwindSafe(cell.run)) {
        Ok((output, counters)) => Ok(RunSummary { label, seed, output, counters }),
        Err(payload) => Err(format!(
            "sweep cell {label:?} (seed {seed}) panicked: {}",
            panic_message(payload.as_ref())
        )),
    }
}

/// Runs the cells across [`default_jobs`] workers; results in input order.
pub fn run_sweep<T: Send>(cells: Vec<SweepCell<'_, T>>) -> Vec<RunSummary<T>> {
    run_sweep_jobs(cells, default_jobs())
}

/// Runs the cells across exactly `jobs` workers (clamped to at least 1) and
/// returns one summary per cell, **in input order**.
///
/// Every cell runs under `catch_unwind`, so one panicking cell never stops
/// the others: the whole grid is drained first, then the panic of the
/// **lowest input index** is re-raised with the cell's label and seed
/// attached — `sweep cell "…" (seed N) panicked: <message>` — so the
/// failing cell is identifiable even when the original payload was not a
/// string, and the choice of re-raised panic does not depend on thread
/// scheduling. Callers that want failures contained instead of re-raised
/// use [`crate::fabric::run_fabric`].
pub fn run_sweep_jobs<T: Send>(cells: Vec<SweepCell<'_, T>>, jobs: usize) -> Vec<RunSummary<T>> {
    let n = cells.len();
    let jobs = jobs.max(1).min(n.max(1));
    let collected: Vec<(usize, Result<RunSummary<T>, String>)> = if jobs == 1 {
        // The serial path is the reference implementation the parallel path
        // must be byte-identical to.
        cells.into_iter().map(run_cell).enumerate().collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let tasks: Vec<Mutex<Option<SweepCell<'_, T>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        // Each worker returns the (index, result) pairs it
                        // ran; results travel back through join() instead of
                        // shared slot mutexes, so there is no lock to poison
                        // on the result path.
                        let mut mine = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                return mine;
                            }
                            // Cell panics are caught inside run_cell, so a
                            // worker cannot die holding this lock; the
                            // poison recovery is belt-and-braces for a
                            // hypothetical claim-path panic, which cannot
                            // corrupt the Option<SweepCell> it protects.
                            let claimed = tasks[i]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take();
                            let Some(cell) = claimed else {
                                unreachable!("cursor handed out cell {i} twice")
                            };
                            mine.push((i, run_cell(cell)));
                        }
                    })
                })
                .collect();
            // Join explicitly: a worker-level panic (impossible for cell
            // code, which is caught) would otherwise be reduced by the
            // scope's auto-join to "a scoped thread panicked".
            let mut done = Vec::with_capacity(n);
            for worker in workers {
                match worker.join() {
                    Ok(mine) => done.extend(mine),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            done
        })
    };
    let mut results = Vec::with_capacity(n);
    let mut first_panic: Option<(usize, String)> = None;
    for (i, res) in collected {
        match res {
            Ok(summary) => results.push((i, summary)),
            Err(message) => {
                if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_panic = Some((i, message));
                }
            }
        }
    }
    if let Some((_, message)) = first_panic {
        std::panic::resume_unwind(Box::new(message));
    }
    results.sort_by_key(|(i, _)| *i);
    assert_eq!(results.len(), n, "worker pool joined with missing results");
    results.into_iter().map(|(_, summary)| summary).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn square_cells<'a>(n: u64) -> Vec<SweepCell<'a, u64>> {
        (0..n).map(|s| SweepCell::new(format!("c{s}"), s, move || s * s)).collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        // Make early cells the slowest so completion order inverts input
        // order; collection order must not care.
        let cells: Vec<SweepCell<u64>> = (0..16u64)
            .map(|s| {
                SweepCell::new(format!("c{s}"), s, move || {
                    std::thread::sleep(std::time::Duration::from_millis(2 * (16 - s)));
                    s
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 8);
        let got: Vec<u64> = out.iter().map(|r| r.output).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert_eq!(out[5].label, "c5");
        assert_eq!(out[5].seed, 5);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_sweep_jobs(square_cells(12), 1);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_sweep_jobs(square_cells(12), jobs), serial);
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let cells: Vec<SweepCell<()>> = (0..50)
            .map(|s| {
                let count = &count;
                SweepCell::new("c", s, move || {
                    count.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 4);
        assert_eq!(out.len(), 50);
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<RunSummary<u8>> = run_sweep_jobs(Vec::new(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs(Some("4")), Some(4));
        assert_eq!(parse_jobs(Some(" 2 ")), Some(2));
        assert_eq!(parse_jobs(Some("0")), None);
        assert_eq!(parse_jobs(Some("lots")), None);
        assert_eq!(parse_jobs(None), None);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn resolve_jobs_fallback_order_and_warn_path() {
        // No env: the machine's available parallelism, silently.
        assert_eq!(resolve_jobs(None, 8), (8, None));
        // Usable env wins over available parallelism, silently.
        assert_eq!(resolve_jobs(Some("4"), 8), (4, None));
        assert_eq!(resolve_jobs(Some(" 2 "), 8), (2, None));
        // Set-but-unusable env falls back AND warns — a typo'd SWEEP_JOBS
        // must not silently change a pinned reproducibility run.
        for bad in ["0", "-3", "lots", ""] {
            let (jobs, warning) = resolve_jobs(Some(bad), 8);
            assert_eq!(jobs, 8, "SWEEP_JOBS={bad:?} must fall back");
            let w = warning.unwrap_or_else(|| panic!("SWEEP_JOBS={bad:?} must warn"));
            assert!(w.contains("SWEEP_JOBS"), "{w}");
            assert!(w.contains(bad), "{w}");
        }
    }

    #[test]
    fn with_counters_cells_surface_their_snapshot() {
        let cells: Vec<SweepCell<u64>> = (0..4)
            .map(|s| {
                SweepCell::with_counters(format!("c{s}"), s, move || {
                    let mut snap = CounterSnapshot::default();
                    snap.global.nan_samples = s;
                    (s * 2, snap)
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 2);
        assert_eq!(out[3].output, 6);
        assert_eq!(out[3].counters.global.nan_samples, 3);
        // Plain cells report empty counters.
        let plain = run_sweep_jobs(square_cells(2), 1);
        assert_eq!(plain[1].counters, CounterSnapshot::default());
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn cell_panics_propagate() {
        let cells: Vec<SweepCell<u64>> = (0..6)
            .map(|s| {
                SweepCell::new("c", s, move || {
                    assert!(s != 3, "cell 3 exploded");
                    s
                })
            })
            .collect();
        let _ = run_sweep_jobs(cells, 2);
    }

    fn trap_panic(cells: Vec<SweepCell<'static, u64>>, jobs: usize) -> String {
        let payload = catch_unwind(AssertUnwindSafe(|| run_sweep_jobs(cells, jobs)))
            .expect_err("sweep must re-raise the cell panic");
        panic_message(payload.as_ref())
    }

    #[test]
    fn panics_carry_cell_identity_even_for_nonstring_payloads() {
        for jobs in [1, 3] {
            let cells: Vec<SweepCell<u64>> = (0..4)
                .map(|s| {
                    SweepCell::new(format!("c{s}"), s, move || {
                        if s == 2 {
                            // A payload resume_unwind alone would anonymize.
                            std::panic::panic_any(42u32);
                        }
                        s
                    })
                })
                .collect();
            let msg = trap_panic(cells, jobs);
            assert!(msg.contains("\"c2\""), "jobs={jobs}: {msg}");
            assert!(msg.contains("seed 2"), "jobs={jobs}: {msg}");
            assert!(msg.contains("non-string panic payload"), "jobs={jobs}: {msg}");
        }
    }

    #[test]
    fn lowest_index_panic_wins_regardless_of_scheduling() {
        let cells: Vec<SweepCell<u64>> = (0..8)
            .map(|s| {
                SweepCell::new(format!("c{s}"), s, move || {
                    // Cell 5 fails instantly; cell 1 fails late. The re-raise
                    // must still pick input index 1, not completion order.
                    if s == 1 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    assert!(s != 1 && s != 5, "boom {s}");
                    s
                })
            })
            .collect();
        let msg = trap_panic(cells, 4);
        assert!(msg.contains("\"c1\""), "{msg}");
        assert!(msg.contains("boom 1"), "{msg}");
    }

    #[test]
    fn one_panic_does_not_stop_other_cells() {
        let count = std::sync::Arc::new(AtomicU64::new(0));
        let cells: Vec<SweepCell<u64>> = (0..20)
            .map(|s| {
                let count = std::sync::Arc::clone(&count);
                SweepCell::new(format!("c{s}"), s, move || {
                    count.fetch_add(1, Ordering::Relaxed);
                    assert!(s != 0, "early cell explodes");
                    s
                })
            })
            .collect();
        let msg = trap_panic(cells, 2);
        assert!(msg.contains("\"c0\""), "{msg}");
        // The explosion at index 0 must not have prevented the rest of the
        // grid from draining.
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }
}
