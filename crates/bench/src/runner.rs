//! # runner — deterministic parallel sweep execution
//!
//! The paper's evaluation (§VI) is a grid of independent
//! `(scenario × algorithm × seed)` cells, and so is every suite built on it:
//! the figure harnesses, the chaos soak, the stress grids. Each cell owns a
//! whole [`netsim::Simulator`], so cells share no mutable state and can run
//! on any thread without changing their results — the simulator is
//! single-threaded and seeded, and `Send` (see `netsim::sim::Agent`) only
//! permits moving it, never sharing it.
//!
//! [`run_sweep`] fans a list of [`SweepCell`]s across a `std::thread::scope`
//! worker pool and collects one [`RunSummary`] per cell **in input order**,
//! regardless of completion order. Determinism argument:
//!
//! 1. every cell's closure builds, runs, and summarizes its own simulator —
//!    no cross-cell reads or writes;
//! 2. workers claim cells from an atomic cursor, but each result is written
//!    to the slot indexed by the cell's input position;
//! 3. the pool joins before results are read, so the returned `Vec` is a
//!    pure function of the input cells — byte-identical at `--jobs 1` and
//!    `--jobs N` (asserted by `tests/sweep_determinism.rs`).
//!
//! Worker count: explicit argument > `SWEEP_JOBS` env var > available
//! parallelism. The figure binaries expose it as `--jobs N`
//! ([`crate::Cli::from_args`]).
//!
//! # Examples
//!
//! ```
//! use bench_harness::runner::{run_sweep_jobs, SweepCell};
//!
//! let cells: Vec<SweepCell<u64>> = (0..8)
//!     .map(|seed| SweepCell::new(format!("cell-{seed}"), seed, move || seed * seed))
//!     .collect();
//! let results = run_sweep_jobs(cells, 4);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].label, "cell-3");
//! assert_eq!(results[3].output, 9);
//! ```

use obs::CounterSnapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent simulation cell of a sweep: a label for reports, the RNG
/// seed it was built from, and the closure that builds, runs, and summarizes
/// its own `Simulator`.
///
/// The closure must be `Send` (it is executed on a worker thread); the
/// borrow lifetime `'a` lets cells capture references to sweep-wide options
/// living on the caller's stack.
pub struct SweepCell<'a, T> {
    /// Display label, carried through to the [`RunSummary`].
    pub label: String,
    /// The seed this cell derives its determinism from (informational; the
    /// closure is responsible for actually using it).
    pub seed: u64,
    run: Box<dyn FnOnce() -> (T, CounterSnapshot) + Send + 'a>,
}

impl<'a, T> SweepCell<'a, T> {
    /// Creates a cell from a label, a seed, and the run closure. The cell's
    /// [`RunSummary::counters`] come back empty; use
    /// [`SweepCell::with_counters`] for cells that report observability
    /// counters alongside their output.
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> T + Send + 'a,
    ) -> SweepCell<'a, T> {
        SweepCell::with_counters(label, seed, move || (run(), CounterSnapshot::default()))
    }

    /// Creates a cell whose closure also returns an
    /// [`obs::CounterSnapshot`] (e.g. from
    /// `mptcp_energy::scenarios::counters_of`), surfaced through
    /// [`RunSummary::counters`].
    pub fn with_counters(
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> (T, CounterSnapshot) + Send + 'a,
    ) -> SweepCell<'a, T> {
        SweepCell { label: label.into(), seed, run: Box::new(run) }
    }
}

/// The result of one sweep cell, in the order the cells were submitted.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary<T> {
    /// The cell's label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Whatever the cell's closure returned.
    pub output: T,
    /// Observability counters reported by the cell (empty for cells built
    /// with [`SweepCell::new`]).
    pub counters: CounterSnapshot,
}

/// Parses a `SWEEP_JOBS`-style override; `None` when absent or unusable.
fn parse_jobs(v: Option<&str>) -> Option<usize> {
    v.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// The worker count used when none is given explicitly: the `SWEEP_JOBS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism. A `SWEEP_JOBS` value that is set but not
/// a positive integer is reported on stderr (the same input as `--jobs` is a
/// hard usage error, and silently falling back could mask a typo'd
/// reproducibility run) before using the default.
pub fn default_jobs() -> usize {
    let available = || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match std::env::var("SWEEP_JOBS") {
        Ok(v) => parse_jobs(Some(&v)).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring SWEEP_JOBS={v:?}: expected a positive integer; \
                 using available parallelism"
            );
            available()
        }),
        Err(_) => available(),
    }
}

/// Runs the cells across [`default_jobs`] workers; results in input order.
pub fn run_sweep<T: Send>(cells: Vec<SweepCell<'_, T>>) -> Vec<RunSummary<T>> {
    run_sweep_jobs(cells, default_jobs())
}

/// Runs the cells across exactly `jobs` workers (clamped to at least 1) and
/// returns one summary per cell, **in input order**.
///
/// A panic inside a cell propagates to the caller once the pool has joined:
/// the first panicking cell's payload is re-raised verbatim, so test
/// assertion messages survive the parallel path and assertions may live
/// inside cell closures. Cells already claimed by other workers still run to
/// completion first; unclaimed cells behind the panicking worker are still
/// drained by the surviving workers.
pub fn run_sweep_jobs<T: Send>(cells: Vec<SweepCell<'_, T>>, jobs: usize) -> Vec<RunSummary<T>> {
    let n = cells.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        // The serial path is the reference implementation the parallel path
        // must be byte-identical to.
        return cells
            .into_iter()
            .map(|c| {
                let (output, counters) = (c.run)();
                RunSummary { label: c.label, seed: c.seed, output, counters }
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<SweepCell<'_, T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let mut results: Vec<(usize, RunSummary<T>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    // Each worker returns the (index, summary) pairs it ran;
                    // results travel back through join() instead of shared
                    // slot mutexes, so there is no lock to poison on the
                    // result path.
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return mine;
                        }
                        // A poisoned task lock means another worker panicked
                        // *inside the claim*, which cannot corrupt the
                        // Option<SweepCell> it protects — recover and keep
                        // draining the queue so the panic payload is re-raised
                        // only after surviving cells finish.
                        let claimed = tasks[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take();
                        let Some(cell) = claimed else {
                            unreachable!("cursor handed out cell {i} twice")
                        };
                        let (output, counters) = (cell.run)();
                        mine.push((
                            i,
                            RunSummary { label: cell.label, seed: cell.seed, output, counters },
                        ));
                    }
                })
            })
            .collect();
        // Join explicitly instead of letting the scope auto-join: auto-join
        // discards panic payloads (the caller would only see "a scoped thread
        // panicked"), while an explicit join hands the payload back so the
        // first cell panic can be re-raised verbatim. A panicking worker stops
        // claiming cells, but the surviving workers drain the rest of the
        // queue before their joins return.
        let mut done = Vec::with_capacity(n);
        let mut first_panic = None;
        for worker in workers {
            match worker.join() {
                Ok(mine) => done.extend(mine),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        done
    });
    results.sort_by_key(|(i, _)| *i);
    assert_eq!(results.len(), n, "worker pool joined with missing results");
    results.into_iter().map(|(_, summary)| summary).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn square_cells<'a>(n: u64) -> Vec<SweepCell<'a, u64>> {
        (0..n).map(|s| SweepCell::new(format!("c{s}"), s, move || s * s)).collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        // Make early cells the slowest so completion order inverts input
        // order; collection order must not care.
        let cells: Vec<SweepCell<u64>> = (0..16u64)
            .map(|s| {
                SweepCell::new(format!("c{s}"), s, move || {
                    std::thread::sleep(std::time::Duration::from_millis(2 * (16 - s)));
                    s
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 8);
        let got: Vec<u64> = out.iter().map(|r| r.output).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert_eq!(out[5].label, "c5");
        assert_eq!(out[5].seed, 5);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_sweep_jobs(square_cells(12), 1);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_sweep_jobs(square_cells(12), jobs), serial);
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let cells: Vec<SweepCell<()>> = (0..50)
            .map(|s| {
                let count = &count;
                SweepCell::new("c", s, move || {
                    count.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 4);
        assert_eq!(out.len(), 50);
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<RunSummary<u8>> = run_sweep_jobs(Vec::new(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs(Some("4")), Some(4));
        assert_eq!(parse_jobs(Some(" 2 ")), Some(2));
        assert_eq!(parse_jobs(Some("0")), None);
        assert_eq!(parse_jobs(Some("lots")), None);
        assert_eq!(parse_jobs(None), None);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn with_counters_cells_surface_their_snapshot() {
        let cells: Vec<SweepCell<u64>> = (0..4)
            .map(|s| {
                SweepCell::with_counters(format!("c{s}"), s, move || {
                    let mut snap = CounterSnapshot::default();
                    snap.global.nan_samples = s;
                    (s * 2, snap)
                })
            })
            .collect();
        let out = run_sweep_jobs(cells, 2);
        assert_eq!(out[3].output, 6);
        assert_eq!(out[3].counters.global.nan_samples, 3);
        // Plain cells report empty counters.
        let plain = run_sweep_jobs(square_cells(2), 1);
        assert_eq!(plain[1].counters, CounterSnapshot::default());
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn cell_panics_propagate() {
        let cells: Vec<SweepCell<u64>> = (0..6)
            .map(|s| {
                SweepCell::new("c", s, move || {
                    assert!(s != 3, "cell 3 exploded");
                    s
                })
            })
            .collect();
        let _ = run_sweep_jobs(cells, 2);
    }
}
