//! Merging: journal replays + live results + quarantines → one report, in
//! input order.
//!
//! The merge path is deliberately free of wall-clock, RNG, and hash-order
//! effects: the report is a pure function of (grid, journaled payloads,
//! fresh outputs, quarantine records), so an interrupted-and-resumed sweep
//! assembles the same bytes as an uninterrupted one, and sharded journals
//! merge associatively.

use super::journal::JournalReplay;
use super::plan::CellId;
use super::retry::FailCause;
use crate::runner::RunSummary;
use obs::FabricCounters;
use std::path::PathBuf;

/// A cell the fabric gave up on: retried to exhaustion, then contained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Content-addressed identity.
    pub id: CellId,
    /// Display label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Attempts consumed (including the first).
    pub attempts: u32,
    /// Why the final attempt failed.
    pub cause: FailCause,
    /// The final attempt's failure message.
    pub message: String,
    /// The self-contained repro artifact written for this cell, if an
    /// artifact directory was configured.
    pub artifact: Option<PathBuf>,
}

impl std::fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {:?} (seed {}, id {}) quarantined after {} attempt(s): [{}] {}",
            self.label,
            self.seed,
            self.id,
            self.attempts,
            self.cause.as_str(),
            self.message
        )?;
        if let Some(p) = &self.artifact {
            write!(f, " — repro artifact: {}", p.display())?;
        }
        Ok(())
    }
}

/// The fate of one planned cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome<T> {
    /// The cell completed (this run, or replayed from the journal).
    Done {
        /// The cell's summary, identical to what an uninterrupted
        /// `run_sweep` would have produced.
        summary: RunSummary<T>,
        /// Attempts consumed (1 for a clean first run).
        attempts: u32,
        /// True when the result came from the journal, not execution.
        replayed: bool,
    },
    /// The cell was quarantined.
    Quarantined(QuarantineRecord),
}

/// The fabric's merged result: one outcome per planned cell, in input
/// order, plus the run's journal/retry/quarantine counters.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricReport<T> {
    /// One entry per planned cell, input order.
    pub outcomes: Vec<CellOutcome<T>>,
    /// Journal/retry/quarantine accounting for this run.
    pub counters: FabricCounters,
}

impl<T> FabricReport<T> {
    /// The healthy summaries, in input order. Exactly the `run_sweep`
    /// result vector when nothing was quarantined.
    pub fn results(&self) -> impl Iterator<Item = &RunSummary<T>> {
        self.outcomes.iter().filter_map(|o| match o {
            CellOutcome::Done { summary, .. } => Some(summary),
            CellOutcome::Quarantined(_) => None,
        })
    }

    /// The quarantined cells, in input order.
    pub fn quarantined(&self) -> impl Iterator<Item = &QuarantineRecord> {
        self.outcomes.iter().filter_map(|o| match o {
            CellOutcome::Quarantined(q) => Some(q),
            CellOutcome::Done { .. } => None,
        })
    }

    /// True when every cell completed.
    pub fn is_complete(&self) -> bool {
        self.quarantined().next().is_none()
    }

    /// Consumes the report into the plain summary vector, or an error
    /// naming every quarantined cell — for callers (tests, strict
    /// harnesses) that cannot use a partial grid.
    ///
    /// # Errors
    ///
    /// When any cell was quarantined; the message is [`Self::partial_note`].
    pub fn into_results(self) -> Result<Vec<RunSummary<T>>, String> {
        if !self.is_complete() {
            return Err(self.partial_note());
        }
        Ok(self
            .outcomes
            .into_iter()
            .filter_map(|o| match o {
                CellOutcome::Done { summary, .. } => Some(summary),
                CellOutcome::Quarantined(_) => None,
            })
            .collect())
    }

    /// The graceful-degradation report: names every quarantined cell (with
    /// its repro artifact, when one was written) instead of aborting the
    /// sweep. Empty when the run is complete.
    pub fn partial_note(&self) -> String {
        let quarantined: Vec<&QuarantineRecord> = self.quarantined().collect();
        if quarantined.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "partial sweep: {} of {} cell(s) quarantined\n",
            quarantined.len(),
            self.outcomes.len()
        );
        for q in quarantined {
            out.push_str(&format!("  {q}\n"));
        }
        out
    }
}

/// Assembles per-index parts into the input-order outcome vector.
///
/// # Errors
///
/// When indices are missing, duplicated, or out of range — a fabric-core
/// bug surfaced as an error rather than a panic.
pub fn assemble<T>(
    n: usize,
    mut parts: Vec<(usize, CellOutcome<T>)>,
) -> Result<Vec<CellOutcome<T>>, String> {
    parts.sort_by_key(|(i, _)| *i);
    if parts.len() != n {
        return Err(format!("fabric merge: {} outcome(s) for {n} planned cell(s)", parts.len()));
    }
    for (slot, (i, _)) in parts.iter().enumerate() {
        if *i != slot {
            return Err(format!("fabric merge: outcome index {i} in slot {slot}"));
        }
    }
    Ok(parts.into_iter().map(|(_, o)| o).collect())
}

/// Merges journals written by independent shards of the **same grid** into
/// one replay (the distributed story: every worker appends to its own
/// journal; the merger needs only the files).
///
/// # Errors
///
/// When the shards disagree on the grid digest, or two shards journaled the
/// same cell with different payloads (a determinism violation worth
/// failing loudly on).
pub fn merge_replays(
    replays: impl IntoIterator<Item = JournalReplay>,
) -> Result<JournalReplay, String> {
    let mut merged = JournalReplay::default();
    for replay in replays {
        match (merged.grid, replay.grid) {
            (Some(a), Some(b)) if a != b => {
                return Err(format!(
                    "cannot merge journals for different grids ({a:016x} vs {b:016x})"
                ));
            }
            (None, Some(b)) => merged.grid = Some(b),
            _ => {}
        }
        for (id, entry) in replay.done {
            if let Some(prior) = merged.done.get(&id) {
                if prior.payload != entry.payload {
                    return Err(format!(
                        "journals disagree on cell {id} ({:?}): the cell is not deterministic",
                        entry.label
                    ));
                }
                continue;
            }
            merged.done.insert(id, entry);
        }
        merged.quarantined.extend(replay.quarantined);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::journal::{encode_payload, DoneLine};
    use crate::fabric::plan::Fingerprint;
    use obs::CounterSnapshot;

    fn done(i: u64) -> CellOutcome<u64> {
        CellOutcome::Done {
            summary: RunSummary {
                label: format!("c{i}"),
                seed: i,
                output: i * i,
                counters: CounterSnapshot::default(),
            },
            attempts: 1,
            replayed: false,
        }
    }

    fn quarantine(i: u64) -> CellOutcome<u64> {
        CellOutcome::Quarantined(QuarantineRecord {
            id: CellId::derive("q", i, Fingerprint::new()),
            label: format!("q{i}"),
            seed: i,
            attempts: 3,
            cause: FailCause::Panic,
            message: "boom".into(),
            artifact: Some(PathBuf::from("/tmp/repro.jsonl")),
        })
    }

    #[test]
    fn assemble_restores_input_order_and_rejects_gaps() {
        let parts = vec![(2, done(2)), (0, done(0)), (1, quarantine(1))];
        let outcomes = assemble(3, parts).expect("assemble");
        assert!(matches!(&outcomes[0], CellOutcome::Done { summary, .. } if summary.seed == 0));
        assert!(matches!(&outcomes[1], CellOutcome::Quarantined(q) if q.seed == 1));
        assert!(assemble(3, vec![(0, done(0))]).is_err(), "missing indices");
        assert!(assemble(2, vec![(0, done(0)), (0, done(0))]).is_err(), "duplicate index");
    }

    #[test]
    fn report_partial_note_names_quarantined_cells() {
        let report = FabricReport {
            outcomes: vec![done(0), quarantine(1), done(2)],
            counters: FabricCounters::default(),
        };
        assert!(!report.is_complete());
        assert_eq!(report.results().count(), 2);
        let note = report.partial_note();
        assert!(note.contains("1 of 3"), "{note}");
        assert!(note.contains("\"q1\""), "{note}");
        assert!(note.contains("repro.jsonl"), "{note}");
        assert!(note.contains("[panic]"), "{note}");
        let err = report.into_results().unwrap_err();
        assert!(err.contains("quarantined"), "{err}");

        let clean = FabricReport { outcomes: vec![done(0)], counters: FabricCounters::default() };
        assert!(clean.is_complete());
        assert_eq!(clean.partial_note(), "");
        assert_eq!(clean.into_results().expect("complete").len(), 1);
    }

    fn replay_with(grid: u64, cells: &[(u64, u64)]) -> JournalReplay {
        let mut r = JournalReplay { grid: Some(grid), ..JournalReplay::default() };
        for &(seed, out) in cells {
            let id = CellId::derive("c", seed, Fingerprint::new());
            r.done.insert(
                id,
                DoneLine {
                    id,
                    label: format!("c{seed}"),
                    seed,
                    attempts: 1,
                    payload: encode_payload(&out),
                },
            );
        }
        r
    }

    #[test]
    fn shard_journals_merge_and_conflicts_fail() {
        let merged = merge_replays([replay_with(5, &[(0, 0), (1, 1)]), replay_with(5, &[(2, 4)])])
            .expect("merge");
        assert_eq!(merged.done.len(), 3);
        assert_eq!(merged.grid, Some(5));
        // Agreeing duplicates are fine (two shards both ran a cell).
        assert!(merge_replays([replay_with(5, &[(0, 0)]), replay_with(5, &[(0, 0)])]).is_ok());
        // Distinct grids refuse to merge.
        let err = merge_replays([replay_with(5, &[]), replay_with(6, &[])]).unwrap_err();
        assert!(err.contains("different grids"), "{err}");
        // Disagreeing payloads for the same cell are a determinism violation.
        let err =
            merge_replays([replay_with(5, &[(0, 0)]), replay_with(5, &[(0, 9)])]).unwrap_err();
        assert!(err.contains("not deterministic"), "{err}");
    }
}
