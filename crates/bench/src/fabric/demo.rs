//! The fabric's canonical drill workload: a tiny deterministic sweep shared
//! by `fabric_smoke` (single-process crash drills), `fabric_chaos`
//! (distributed chaos drills), `sweep_worker` (the attach-mode suite), and
//! the `fabric_dist` integration tests.
//!
//! One workload in one place keeps the byte-identity pins honest: the
//! serial run, the self-exec worker, and the attach-mode worker all build
//! their cells from these functions, so a drifted label or fingerprint
//! shows up as a grid-digest mismatch instead of a silently different
//! sweep.
//!
//! Each cell computes a splitmix-style pseudo-random walk folded into a
//! `u64` checksum plus an `f64` running mean — cheap, seeded, and
//! float-bearing, so bit-exact journal round-trips are exercised too.

use super::journal::{JournalCodec, JournalValue};
use super::{FabricCell, Fingerprint};
use obs::CounterSnapshot;

/// Cells in the demo grid.
pub const WALK_CELLS: u64 = 12;

/// The suite name attach-mode workers host this workload under.
pub const WALK_SUITE: &str = "walk";

/// The per-cell workload: a splitmix-style walk, a pure function of the
/// seed.
pub fn walk(seed: u64) -> (u64, f64) {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut sum = 0u64;
    let mut mean = 0.0f64;
    for i in 0..4096u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        sum = sum.wrapping_add(x);
        mean += (x as f64 / u64::MAX as f64 - mean) / (i + 1) as f64;
    }
    (sum, mean)
}

/// The label of cell `i` — part of the cell's content address.
pub fn walk_label(i: u64) -> String {
    format!("cell-{i:02}")
}

/// The config fingerprint of cell `i` — the other part of the address.
pub fn walk_fingerprint(i: u64) -> Fingerprint {
    Fingerprint::new().str("fabric_smoke").u64(i)
}

/// Builds the demo grid with optional drill knobs: each cell sleeps
/// `sleep_ms` first (so an external `timeout -s KILL` lands mid-sweep) and
/// the cells named in `fail` panic on every attempt (drilling retry +
/// quarantine).
pub fn walk_cells_with(sleep_ms: Option<u64>, fail: &[String]) -> Vec<FabricCell<(u64, f64)>> {
    (0..WALK_CELLS)
        .map(|i| {
            let label = walk_label(i);
            let bomb = fail.iter().any(|f| f == &label);
            let cell_label = label.clone();
            FabricCell::new(label, i, move || {
                if let Some(ms) = sleep_ms {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                assert!(!bomb, "fabric_smoke: injected failure in {cell_label}");
                walk(i)
            })
            .config(walk_fingerprint(i))
        })
        .collect()
}

/// The demo grid with no drill knobs.
pub fn walk_cells() -> Vec<FabricCell<(u64, f64)>> {
    walk_cells_with(None, &[])
}

/// The walk workload as an attach-mode suite: encodes exactly the payload
/// the in-process cell would journal, so attach-mode merges stay
/// byte-identical.
pub fn walk_suite() -> super::dist::SuiteFn {
    std::sync::Arc::new(|_label: &str, seed: u64| {
        let mut payload: Vec<JournalValue> = Vec::new();
        walk(seed).encode(&mut payload);
        (payload, CounterSnapshot::default())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::journal::{decode_payload, ValueReader};

    #[test]
    fn walk_is_deterministic_and_seed_sensitive() {
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3).0, walk(4).0);
    }

    #[test]
    fn suite_payload_matches_in_process_encoding() {
        // The attach-mode suite and the in-process cell must serialize the
        // same bytes for the same seed — this equality is what makes the
        // dist-vs-serial byte-identity pin possible in attach mode.
        let (payload, counters) = walk_suite()(&walk_label(5), 5);
        let mut wire = payload;
        counters.encode(&mut wire);
        let mut direct: Vec<JournalValue> = Vec::new();
        (walk(5), CounterSnapshot::default()).encode(&mut direct);
        let decoded: ((u64, f64), CounterSnapshot) = decode_payload(&wire).unwrap();
        let expected: ((u64, f64), CounterSnapshot) =
            <((u64, f64), CounterSnapshot)>::decode(&mut ValueReader::new(&direct)).unwrap();
        assert_eq!(decoded.0, expected.0);
    }
}
