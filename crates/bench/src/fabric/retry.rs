//! Failure containment: panic capture, wall-clock deadlines, and bounded
//! exponential backoff.
//!
//! Each attempt runs the cell's closure under `catch_unwind`, optionally on
//! a dedicated thread so the claiming worker can give up at a wall-clock
//! deadline (the process-level analogue of the `netsim::sim` stall
//! watchdog, which can only see stalls *inside* a simulator that is still
//! stepping — a cell spinning in scenario setup, or a genuine livelock,
//! never reaches the watchdog). A timed-out attempt's thread cannot be
//! killed, so it is detached: it keeps running to completion on its own
//! private simulator and its result is discarded. That leaks CPU, not
//! correctness — cells share no state.
//!
//! Wall-clock note: deadlines and backoff sleeps are the fabric's sanctioned
//! wall-clock reads. They live here, outside the deterministic planning and
//! merge paths, and can never influence a cell's *output* — only whether the
//! fabric keeps waiting for it. simlint's D002 rule scopes wall-clock bans
//! to the simulation crates for exactly this split.

use obs::CounterSnapshot;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Bounded exponential retry: attempt `k` (1-based) is retried after
/// `base · 2^(k-1)`, capped at `max_backoff`, until `max_attempts` attempts
/// have failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 100 ms base, 5 s ceiling.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Attempts actually granted (≥ 1).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff to sleep after failed attempt `attempt` (1-based), or
    /// `None` when the policy is exhausted and the cell must be
    /// quarantined.
    pub fn backoff_after(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.attempts() {
            return None;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let factor = 1u32 << exp;
        Some(self.base_backoff.saturating_mul(factor).min(self.max_backoff))
    }
}

/// Why an attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailCause {
    /// The cell's closure panicked.
    Panic,
    /// The cell exceeded its wall-clock deadline.
    Deadline,
    /// The distributed fabric exhausted its shard re-dispatch budget for
    /// the worker(s) responsible for this cell (crashes, stalls, or invalid
    /// responses — the supervisor's events name which).
    Worker,
}

impl FailCause {
    /// The journal/report tag.
    pub fn as_str(self) -> &'static str {
        match self {
            FailCause::Panic => "panic",
            FailCause::Deadline => "deadline",
            FailCause::Worker => "worker",
        }
    }
}

/// The outcome of one attempt.
#[derive(Debug)]
pub enum Attempt<T> {
    /// The cell completed.
    Done(T, CounterSnapshot),
    /// The cell failed with this cause and message.
    Failed(FailCause, String),
}

pub use crate::runner::panic_message;

/// The runnable side of a fabric cell: shared (`Arc`) so retries and
/// detached deadline threads can each hold an execution handle.
pub type CellFn<T> = Arc<dyn Fn() -> (T, CounterSnapshot) + Send + Sync + 'static>;

/// Runs one attempt of `run`, catching panics; with a deadline, the attempt
/// runs on its own thread and is abandoned (detached, result discarded) if
/// the deadline passes first.
pub fn run_attempt<T: Send + 'static>(
    label: &str,
    run: &CellFn<T>,
    deadline: Option<Duration>,
) -> Attempt<T> {
    let Some(deadline) = deadline else {
        // No deadline: run on the claiming worker, no thread spawn.
        return match catch_unwind(AssertUnwindSafe(|| run())) {
            Ok((out, counters)) => Attempt::Done(out, counters),
            Err(payload) => Attempt::Failed(FailCause::Panic, panic_message(payload.as_ref())),
        };
    };
    let (tx, rx) = mpsc::channel();
    let thread_run = Arc::clone(run);
    let spawned =
        std::thread::Builder::new().name(format!("fabric-cell-{label}")).spawn(move || {
            // Send failing means the claimer timed out and went away; the
            // result is discarded with the channel.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| thread_run())));
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => {
            return Attempt::Failed(FailCause::Panic, format!("cannot spawn cell thread: {e}"))
        }
    };
    match rx.recv_timeout(deadline) {
        Ok(Ok((out, counters))) => {
            let _ = handle.join();
            Attempt::Done(out, counters)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            Attempt::Failed(FailCause::Panic, panic_message(payload.as_ref()))
        }
        Err(_) => {
            // Deadline passed: detach the runaway thread and move on.
            drop(handle);
            Attempt::Failed(
                FailCause::Deadline,
                format!("exceeded wall-clock deadline of {:.3}s", deadline.as_secs_f64()),
            )
        }
    }
}

/// Per-cell attempt accounting, aggregated into `obs::FabricCounters`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttemptStats {
    /// Attempts consumed, including the first.
    pub attempts: u32,
    /// Attempts that ended in a caught panic.
    pub panics: u32,
    /// Attempts abandoned at the wall-clock deadline.
    pub deadline_kills: u32,
}

/// A cell's final outcome: its output and counters, or the last failure.
pub type CellResult<T> = Result<(T, CounterSnapshot), (FailCause, String)>;

/// Runs a cell to completion under `policy`: attempts with backoff until
/// success or exhaustion. Returns the successful output, or the **last**
/// failure, plus the per-cause attempt accounting.
pub fn run_with_retries<T: Send + 'static>(
    label: &str,
    run: &CellFn<T>,
    deadline: Option<Duration>,
    policy: &RetryPolicy,
) -> (CellResult<T>, AttemptStats) {
    let mut stats = AttemptStats::default();
    loop {
        stats.attempts += 1;
        match run_attempt(label, run, deadline) {
            Attempt::Done(out, counters) => return (Ok((out, counters)), stats),
            Attempt::Failed(cause, message) => {
                match cause {
                    FailCause::Panic => stats.panics += 1,
                    FailCause::Deadline => stats.deadline_kills += 1,
                    // In-process attempts can only panic or time out; Worker
                    // is minted by the distributed supervisor, never here.
                    FailCause::Worker => {}
                }
                match policy.backoff_after(stats.attempts) {
                    Some(backoff) => std::thread::sleep(backoff),
                    None => return (Err((cause, message)), stats),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cell(f: impl Fn() -> u64 + Send + Sync + 'static) -> CellFn<u64> {
        Arc::new(move || (f(), CounterSnapshot::default()))
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff_after(1), Some(Duration::from_millis(10)));
        assert_eq!(p.backoff_after(2), Some(Duration::from_millis(20)));
        assert_eq!(p.backoff_after(3), Some(Duration::from_millis(35)), "capped");
        assert_eq!(p.backoff_after(4), Some(Duration::from_millis(35)));
        assert_eq!(p.backoff_after(5), None, "exhausted after max_attempts");
        assert_eq!(RetryPolicy::none().backoff_after(1), None);
        // Degenerate max_attempts clamps to one attempt.
        let zero = RetryPolicy { max_attempts: 0, ..p };
        assert_eq!(zero.attempts(), 1);
        assert_eq!(zero.backoff_after(1), None);
    }

    #[test]
    fn attempts_catch_panics_with_messages() {
        let ok = run_attempt("ok", &cell(|| 7), None);
        assert!(matches!(ok, Attempt::Done(7, _)));
        let boom: CellFn<u64> = Arc::new(|| panic!("boom at seed 3"));
        match run_attempt("boom", &boom, None) {
            Attempt::Failed(FailCause::Panic, msg) => {
                assert!(msg.contains("boom at seed 3"), "{msg}");
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
        // Non-string payloads are named, not lost.
        let odd: CellFn<u64> = Arc::new(|| std::panic::panic_any(42u32));
        match run_attempt("odd", &odd, None) {
            Attempt::Failed(FailCause::Panic, msg) => {
                assert!(msg.contains("non-string"), "{msg}");
            }
            other => panic!("expected panic failure, got {other:?}"),
        }
    }

    #[test]
    fn deadline_abandons_hung_cells() {
        let hung = cell(|| {
            std::thread::sleep(Duration::from_secs(2));
            1
        });
        match run_attempt("hung", &hung, Some(Duration::from_millis(30))) {
            Attempt::Failed(FailCause::Deadline, msg) => assert!(msg.contains("deadline"), "{msg}"),
            other => panic!("expected deadline failure, got {other:?}"),
        }
        // A fast cell under the same deadline completes normally.
        match run_attempt("fast", &cell(|| 9), Some(Duration::from_secs(10))) {
            Attempt::Done(9, _) => {}
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn retries_back_off_then_succeed_or_quarantine() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let flaky: CellFn<u64> = Arc::new(move || {
            let n = c.fetch_add(1, Ordering::Relaxed);
            assert!(n >= 2, "flaky failure #{n}");
            (n.into(), CounterSnapshot::default())
        });
        let (out, stats) = run_with_retries("flaky", &flaky, None, &policy);
        assert_eq!(stats, AttemptStats { attempts: 3, panics: 2, deadline_kills: 0 });
        assert!(matches!(out, Ok((2, _))), "third attempt should succeed");
        // Exhaustion reports the last failure and the full attempt count.
        let always: CellFn<u64> = Arc::new(|| panic!("always"));
        let (out, stats) = run_with_retries("always", &always, None, &policy);
        assert_eq!(stats, AttemptStats { attempts: 3, panics: 3, deadline_kills: 0 });
        match out {
            Err((FailCause::Panic, msg)) => assert!(msg.contains("always"), "{msg}"),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
