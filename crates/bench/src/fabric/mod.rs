//! # fabric — the crash-safe sweep fabric
//!
//! The paper's evaluation, and every suite grown from it, is a grid of
//! independent `(scenario × algorithm × impairment × seed)` cells. The
//! plain [`crate::runner`] executes such a grid fast and deterministically
//! — but all-or-nothing: one panicking, hanging, or invariant-violating
//! cell destroys hours of completed work, and a killed sweep restarts from
//! zero. The fabric wraps the same worker-pool idea in three layers of
//! crash safety:
//!
//! 1. **Planning** ([`plan`]): every cell gets a content-addressed
//!    [`CellId`] — a stable hash of label, seed, and config fingerprint —
//!    and the grid a digest pinning membership and order. Pure function of
//!    the input; no wall-clock, no `HashMap`, no pointer identity.
//! 2. **Journaling** ([`journal`]): each completed cell appends one flushed
//!    JSONL line (floats as bit patterns) to the journal. A killed sweep
//!    resumes by replaying the journal and running only the missing cells;
//!    the merged report is byte-identical to an uninterrupted run
//!    (`tests/fabric_resume.rs`).
//! 3. **Containment** ([`retry`], [`merge`]): each attempt runs under
//!    `catch_unwind` with an optional wall-clock deadline; failures retry
//!    with bounded exponential backoff, and on exhaustion the cell is
//!    **quarantined** — it emits a self-contained repro artifact (the
//!    `crate::repro` format the `replay` binary re-executes) and the sweep
//!    degrades to a partial report naming it, instead of aborting.
//!
//! ## Determinism under resume, retry, and quarantine
//!
//! The serial-vs-parallel byte-identity of `runner` survives because every
//! fabric mechanism is either (a) a pure function of the cells (planning,
//! merging, journal payloads — the codec round-trips bit-exactly), or
//! (b) wall-clock-dependent but *output-invariant* (deadlines and backoff
//! decide only **whether/when** a cell's closure runs; the closure owns its
//! whole seeded simulator, so its output cannot change). Quarantine removes
//! a cell from the result vector without touching its neighbours.

pub mod demo;
pub mod dist;
pub mod journal;
pub mod merge;
pub mod plan;
pub mod retry;

pub use dist::{run_dist, DistOptions, SpawnMode};
pub use journal::{JournalCodec, JournalReplay};
pub use merge::{CellOutcome, FabricReport, QuarantineRecord};
pub use plan::{CellId, Fingerprint, ShardPlan};
pub use retry::{FailCause, RetryPolicy};

use crate::repro::{self, ReproOutcome, ReproSpec, ViolationRecord};
use crate::runner::RunSummary;
use journal::{decode_payload, JournalValue, JournalWriter};
use obs::{CounterSnapshot, FabricCounters};
use plan::PlannedCell;
use retry::CellFn;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One fabric work unit: a [`crate::runner::SweepCell`] whose closure is
/// re-runnable (`Fn`, for retries) and `'static` (deadline attempts run on
/// detachable threads), plus the config fingerprint that makes its
/// [`CellId`] content-addressed and an optional [`ReproSpec`] for
/// quarantine artifacts.
pub struct FabricCell<T> {
    /// Display label, carried into summaries, journals, and reports.
    pub label: String,
    /// The seed this cell derives its determinism from.
    pub seed: u64,
    config: Fingerprint,
    repro: Option<ReproSpec>,
    run: CellFn<T>,
}

impl<T> FabricCell<T> {
    /// Creates a cell from a label, a seed, and a re-runnable closure;
    /// counters come back empty (see [`FabricCell::with_counters`]).
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl Fn() -> T + Send + Sync + 'static,
    ) -> FabricCell<T> {
        FabricCell::with_counters(label, seed, move || (run(), CounterSnapshot::default()))
    }

    /// Creates a cell whose closure also reports an [`obs::CounterSnapshot`].
    pub fn with_counters(
        label: impl Into<String>,
        seed: u64,
        run: impl Fn() -> (T, CounterSnapshot) + Send + Sync + 'static,
    ) -> FabricCell<T> {
        FabricCell {
            label: label.into(),
            seed,
            config: Fingerprint::new(),
            repro: None,
            run: std::sync::Arc::new(run),
        }
    }

    /// Attaches the configuration fingerprint distinguishing this cell from
    /// an identically-labelled cell at a different scale/config. Part of
    /// the cell's content address.
    #[must_use]
    pub fn config(mut self, config: Fingerprint) -> FabricCell<T> {
        self.config = config;
        self
    }

    /// Attaches a repro spec: if this cell is quarantined, the artifact is
    /// written in the `crate::repro` format and is replayable with
    /// `cargo run --bin replay`.
    #[must_use]
    pub fn repro(mut self, spec: ReproSpec) -> FabricCell<T> {
        self.repro = Some(spec);
        self
    }

    /// The cell's content-addressed identity.
    pub fn id(&self) -> CellId {
        CellId::derive(&self.label, self.seed, self.config)
    }
}

/// Fabric execution knobs. [`FabricOptions::from_cli`] wires the standard
/// environment/CLI surface (`--journal`/`SWEEP_JOURNAL`, `SWEEP_DEADLINE_S`,
/// `SWEEP_RETRIES`, `SWEEP_BACKOFF_MS`, `SWEEP_ARTIFACTS`).
#[derive(Clone, Debug)]
pub struct FabricOptions {
    /// Worker count (clamped to ≥ 1).
    pub jobs: usize,
    /// Journal path; `None` disables checkpointing and resume.
    pub journal: Option<PathBuf>,
    /// Per-attempt wall-clock deadline; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Retry/backoff policy for failed attempts.
    pub retry: RetryPolicy,
    /// Where quarantine artifacts are written; `None` skips artifacts.
    pub artifacts: Option<PathBuf>,
}

impl Default for FabricOptions {
    fn default() -> FabricOptions {
        FabricOptions {
            jobs: crate::runner::default_jobs(),
            journal: None,
            deadline: None,
            retry: RetryPolicy::default(),
            artifacts: repro::artifact_dir(),
        }
    }
}

pub(crate) fn env_parsed<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    let v = std::env::var(name).ok()?;
    match v.trim().parse::<T>() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("warning: ignoring {name}={v:?}: expected {what}");
            None
        }
    }
}

impl FabricOptions {
    /// Builds options from the parsed [`crate::Cli`] plus the fabric env
    /// knobs: `SWEEP_DEADLINE_S` (fractional seconds per attempt),
    /// `SWEEP_RETRIES` (max attempts per cell), `SWEEP_BACKOFF_MS` (base
    /// backoff). Unusable values warn on stderr and fall back, matching
    /// `SWEEP_JOBS` handling.
    pub fn from_cli(cli: &crate::Cli) -> FabricOptions {
        let mut o = FabricOptions {
            jobs: cli.jobs(),
            journal: cli.journal_path(),
            ..FabricOptions::default()
        };
        if let Some(secs) = env_parsed::<f64>("SWEEP_DEADLINE_S", "a positive number of seconds") {
            if secs > 0.0 && secs.is_finite() {
                o.deadline = Some(Duration::from_secs_f64(secs));
            } else {
                eprintln!("warning: ignoring SWEEP_DEADLINE_S={secs}: expected a positive number of seconds");
            }
        }
        if let Some(n) = env_parsed::<u32>("SWEEP_RETRIES", "a positive attempt count") {
            if n >= 1 {
                o.retry.max_attempts = n;
            } else {
                eprintln!("warning: ignoring SWEEP_RETRIES=0: expected a positive attempt count");
            }
        }
        if let Some(ms) = env_parsed::<u64>("SWEEP_BACKOFF_MS", "a backoff in milliseconds") {
            o.retry.base_backoff = Duration::from_millis(ms);
        }
        o
    }
}

/// Writes the quarantine artifact for `cell`. With a [`ReproSpec`] the
/// artifact is the full `crate::repro` format (replayable); without one it
/// is an identity-only JSONL stub naming the cell. Both paths fold the
/// cell's content-addressed [`CellId`] into the filename — a grid routinely
/// runs many cells at the same seed (one per algorithm), and seed- or
/// label-derived names would let their artifacts overwrite each other.
/// IO failures warn and return `None` — quarantine must never abort the
/// sweep it exists to save.
pub(crate) fn write_artifact(
    dir: &Path,
    planned: &PlannedCell,
    spec: Option<&ReproSpec>,
    cause: FailCause,
    message: &str,
) -> Option<PathBuf> {
    let annotated =
        format!("quarantined sweep cell {:?} [{}]: {message}", planned.label, cause.as_str());
    let result = match spec {
        Some(spec) => {
            let outcome = ReproOutcome {
                finished: false,
                acked: 0,
                violation: Some(ViolationRecord { at_ns: 0, message: annotated }),
                trace_tail: Vec::new(),
            };
            repro::dump_artifact_named(
                dir,
                &format!("repro-{}-{}", planned.seed, planned.id),
                spec,
                &outcome,
            )
        }
        None => {
            let path = dir.join(format!("quarantine-{}.jsonl", planned.id));
            std::fs::create_dir_all(dir)
                .and_then(|()| {
                    std::fs::write(
                        &path,
                        format!(
                            "{{\"fabric\":\"quarantine\",\"id\":\"{}\",\"label\":\"{}\",\"seed\":{},\
                             \"cause\":\"{}\",\"message\":\"{}\"}}\n",
                            planned.id,
                            repro::esc(&planned.label),
                            planned.seed,
                            cause.as_str(),
                            repro::esc(message)
                        ),
                    )
                })
                .map(|()| path)
        }
    };
    match result {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write quarantine artifact for {:?}: {e}", planned.label);
            None
        }
    }
}

/// The already-journaled results for a grid, decoded and indexed by input
/// position.
pub(crate) type Replayed<T> = BTreeMap<usize, (T, CounterSnapshot, u32)>;

/// Loads and decodes the journal at `journal_path` against `plan`: grid
/// check, torn-tail warning, and per-cell payload decode. Shared by the
/// in-process fabric and the distributed supervisor, so both resume with
/// identical semantics.
pub(crate) fn replay_for_plan<T: JournalCodec>(
    plan: &ShardPlan,
    journal_path: &Path,
) -> Result<Replayed<T>, String> {
    let replay = journal::load_journal(journal_path)?;
    if let Some(grid) = replay.grid {
        if grid != plan.grid_id() {
            return Err(format!(
                "journal {} was written for grid {grid:016x}, this sweep is {:016x}; \
                 refusing to mix results (use a fresh journal path per grid)",
                journal_path.display(),
                plan.grid_id()
            ));
        }
    }
    if let Some(torn) = &replay.torn_tail {
        eprintln!(
            "fabric: journal {} has a torn final line (interrupted append), re-running that cell: {}",
            journal_path.display(),
            &torn[..torn.len().min(80)]
        );
    }
    let mut replayed: Replayed<T> = BTreeMap::new();
    for (id, entry) in &replay.done {
        let Some(planned) = plan.find(*id) else {
            return Err(format!(
                "journal {} contains cell {id} ({:?}) that is not in this grid",
                journal_path.display(),
                entry.label
            ));
        };
        let (output, counters) = decode_payload::<(T, CounterSnapshot)>(&entry.payload)
            .map_err(|e| format!("journal payload for cell {id} ({:?}): {e}", entry.label))?;
        replayed.insert(planned.index, (output, counters, entry.attempts));
    }
    Ok(replayed)
}

/// Runs the missing cells across the worker pool with containment, calling
/// `on_done` under no lock ordering guarantees (it must synchronise
/// internally — the journal writer sits behind a `Mutex`).
#[allow(clippy::type_complexity)]
fn run_missing<T: Send + 'static>(
    work: &[(usize, &FabricCell<T>, &PlannedCell)],
    opts: &FabricOptions,
    on_done: &(dyn Fn(&PlannedCell, u32, &T, &CounterSnapshot) + Sync),
    on_quarantine: &(dyn Fn(&QuarantineRecord) + Sync),
) -> Result<Vec<(usize, CellOutcome<T>, retry::AttemptStats)>, String> {
    let jobs = opts.jobs.max(1).min(work.len().max(1));
    let cursor = AtomicUsize::new(0);
    let run_one = |&(index, cell, planned): &(usize, &FabricCell<T>, &PlannedCell)| {
        let (result, stats) =
            retry::run_with_retries(&cell.label, &cell.run, opts.deadline, &opts.retry);
        let outcome = match result {
            Ok((output, counters)) => {
                on_done(planned, stats.attempts, &output, &counters);
                CellOutcome::Done {
                    summary: RunSummary {
                        label: cell.label.clone(),
                        seed: cell.seed,
                        output,
                        counters,
                    },
                    attempts: stats.attempts,
                    replayed: false,
                }
            }
            Err((cause, message)) => {
                let artifact = opts.artifacts.as_deref().and_then(|dir| {
                    write_artifact(dir, planned, cell.repro.as_ref(), cause, &message)
                });
                let record = QuarantineRecord {
                    id: planned.id,
                    label: cell.label.clone(),
                    seed: cell.seed,
                    attempts: stats.attempts,
                    cause,
                    message,
                    artifact,
                };
                on_quarantine(&record);
                CellOutcome::Quarantined(record)
            }
        };
        (index, outcome, stats)
    };
    if jobs == 1 {
        // Serial reference path: identical decisions, no threads.
        return Ok(work.iter().map(run_one).collect());
    }
    let mut out = Vec::with_capacity(work.len());
    let joined: Result<(), String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = work.get(i) else { return mine };
                        mine.push(run_one(item));
                    }
                })
            })
            .collect();
        let mut first_err = None;
        for worker in workers {
            match worker.join() {
                Ok(mine) => out.extend(mine),
                Err(payload) => {
                    // Cell panics are caught inside run_with_retries; a
                    // worker-level panic is a fabric bug, surfaced as Err.
                    first_err.get_or_insert_with(|| {
                        format!(
                            "fabric worker panicked: {}",
                            retry::panic_message(payload.as_ref())
                        )
                    });
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    });
    joined?;
    Ok(out)
}

fn assemble_report<T>(
    plan: &ShardPlan,
    replayed: Replayed<T>,
    fresh: Vec<(usize, CellOutcome<T>, retry::AttemptStats)>,
    cells_by_index: &BTreeMap<usize, (String, u64)>,
) -> Result<FabricReport<T>, String> {
    let mut counters = FabricCounters {
        planned: plan.len() as u64,
        replayed: replayed.len() as u64,
        executed: fresh.len() as u64,
        ..FabricCounters::default()
    };
    let mut parts: Vec<(usize, CellOutcome<T>)> = Vec::with_capacity(plan.len());
    for (index, (output, snapshot, attempts)) in replayed {
        let (label, seed) = match cells_by_index.get(&index) {
            Some(pair) => pair.clone(),
            None => return Err(format!("fabric merge: replayed index {index} not in grid")),
        };
        parts.push((
            index,
            CellOutcome::Done {
                summary: RunSummary { label, seed, output, counters: snapshot },
                attempts,
                replayed: true,
            },
        ));
    }
    for (index, outcome, stats) in fresh {
        counters.retries += u64::from(stats.attempts.saturating_sub(1));
        counters.panics += u64::from(stats.panics);
        counters.deadline_kills += u64::from(stats.deadline_kills);
        if matches!(outcome, CellOutcome::Quarantined(_)) {
            counters.quarantined += 1;
        }
        parts.push((index, outcome));
    }
    Ok(FabricReport { outcomes: merge::assemble(plan.len(), parts)?, counters })
}

/// Runs the grid **without** a journal: containment (deadlines, retries,
/// quarantine) but no checkpoint/resume. For outputs that have no
/// [`JournalCodec`], e.g. ad-hoc test outcome structs.
///
/// # Errors
///
/// On planning errors (duplicate cell ids) or fabric-internal failures;
/// cell panics/hangs are contained, not returned as `Err`.
pub fn run_fabric_ephemeral<T: Send + 'static>(
    cells: Vec<FabricCell<T>>,
    opts: &FabricOptions,
) -> Result<FabricReport<T>, String> {
    let plan = ShardPlan::new(cells.iter().map(|c| (c.label.clone(), c.seed, c.config)))?;
    let cells_by_index: BTreeMap<usize, (String, u64)> =
        plan.cells().iter().map(|p| (p.index, (p.label.clone(), p.seed))).collect();
    let work: Vec<(usize, &FabricCell<T>, &PlannedCell)> = cells
        .iter()
        .zip(plan.cells())
        .map(|(cell, planned)| (planned.index, cell, planned))
        .collect();
    let fresh = run_missing(&work, opts, &|_, _, _, _| {}, &|q| {
        eprintln!("fabric: {q}");
    })?;
    assemble_report(&plan, BTreeMap::new(), fresh, &cells_by_index)
}

/// Runs the grid with the full crash-safe protocol: journal replay and
/// per-cell checkpointing when [`FabricOptions::journal`] is set, plus
/// containment. Resuming is automatic — point a second run at the same
/// journal and only the missing cells execute.
///
/// # Errors
///
/// On planning errors, an unreadable/corrupt journal, a journal written
/// for a different grid, or undecodable journal payloads. Cell
/// panics/hangs are contained, not returned as `Err`.
pub fn run_fabric<T>(
    cells: Vec<FabricCell<T>>,
    opts: &FabricOptions,
) -> Result<FabricReport<T>, String>
where
    T: JournalCodec + Send + 'static,
{
    let Some(journal_path) = opts.journal.clone() else {
        return run_fabric_ephemeral(cells, opts);
    };
    let plan = ShardPlan::new(cells.iter().map(|c| (c.label.clone(), c.seed, c.config)))?;
    let cells_by_index: BTreeMap<usize, (String, u64)> =
        plan.cells().iter().map(|p| (p.index, (p.label.clone(), p.seed))).collect();

    // Replay: decode every journaled payload for this grid.
    let replayed: Replayed<T> = replay_for_plan(&plan, &journal_path)?;

    let writer = Mutex::new(JournalWriter::append_to(&journal_path, plan.grid_id(), plan.len())?);
    let on_done = |planned: &PlannedCell, attempts: u32, output: &T, counters: &CounterSnapshot| {
        let mut payload: Vec<JournalValue> = Vec::new();
        output.encode(&mut payload);
        counters.encode(&mut payload);
        let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = w.record_done(planned.id, &planned.label, planned.seed, attempts, &payload)
        {
            // A failing checkpoint degrades crash safety, never the sweep.
            eprintln!("warning: {e}");
        }
    };
    let on_quarantine = |record: &QuarantineRecord| {
        eprintln!("fabric: {record}");
        let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = w.record_quarantine(
            record.id,
            &record.label,
            record.seed,
            record.attempts,
            record.cause.as_str(),
            &record.message,
        ) {
            eprintln!("warning: {e}");
        }
    };

    let work: Vec<(usize, &FabricCell<T>, &PlannedCell)> = cells
        .iter()
        .zip(plan.cells())
        .filter(|(_, planned)| !replayed.contains_key(&planned.index))
        .map(|(cell, planned)| (planned.index, cell, planned))
        .collect();
    if !replayed.is_empty() {
        eprintln!(
            "fabric: resumed {} of {} cell(s) from journal {}",
            replayed.len(),
            plan.len(),
            journal_path.display()
        );
    }
    let fresh = run_missing(&work, opts, &on_done, &on_quarantine)?;
    assemble_report(&plan, replayed, fresh, &cells_by_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fabric-mod-{}-{name}", std::process::id()))
    }

    fn square_cells(n: u64, runs: &Arc<AtomicU64>) -> Vec<FabricCell<u64>> {
        (0..n)
            .map(|s| {
                let runs = Arc::clone(runs);
                FabricCell::new(format!("c{s}"), s, move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    s * s
                })
                .config(Fingerprint::new().str("square"))
            })
            .collect()
    }

    #[test]
    fn journaled_run_resumes_without_reexecuting() {
        let dir = tmp("resume");
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let opts = FabricOptions {
            jobs: 2,
            journal: Some(journal.clone()),
            artifacts: None,
            ..FabricOptions::default()
        };
        let runs = Arc::new(AtomicU64::new(0));
        let first = run_fabric(square_cells(6, &runs), &opts).expect("first run");
        assert!(first.is_complete());
        assert_eq!(runs.load(Ordering::Relaxed), 6);
        assert_eq!(first.counters.executed, 6);
        // Second run over the same journal replays everything.
        let second = run_fabric(square_cells(6, &runs), &opts).expect("second run");
        assert_eq!(runs.load(Ordering::Relaxed), 6, "resume must not re-execute");
        assert_eq!(second.counters.replayed, 6);
        assert_eq!(second.counters.executed, 0);
        let a: Vec<_> = first.results().map(|r| (r.label.clone(), r.output)).collect();
        let b: Vec<_> = second.results().map(|r| (r.label.clone(), r.output)).collect();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_for_a_different_grid_is_refused() {
        let dir = tmp("gridmix");
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");
        let opts = FabricOptions {
            jobs: 1,
            journal: Some(journal),
            artifacts: None,
            ..FabricOptions::default()
        };
        let runs = Arc::new(AtomicU64::new(0));
        run_fabric(square_cells(3, &runs), &opts).expect("seed run");
        let err = run_fabric(square_cells(4, &runs), &opts).unwrap_err();
        assert!(err.contains("was written for grid"), "{err}");
        assert!(err.contains("refusing to mix"), "{err}");
        let _ = std::fs::remove_dir_all(tmp("gridmix"));
    }

    #[test]
    fn quarantine_contains_failures_and_preserves_neighbours() {
        let dir = tmp("quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FabricOptions {
            jobs: 3,
            journal: None,
            deadline: None,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
            },
            artifacts: Some(dir.clone()),
        };
        let mut cells: Vec<FabricCell<u64>> =
            (0..4u64).map(|s| FabricCell::new(format!("ok{s}"), s, move || s + 10)).collect();
        cells.push(FabricCell::new("bomb", 99, || panic!("cell 99 exploded")));
        let report = run_fabric_ephemeral(cells, &opts).expect("fabric run");
        assert!(!report.is_complete());
        let healthy: Vec<u64> = report.results().map(|r| r.output).collect();
        assert_eq!(healthy, vec![10, 11, 12, 13], "healthy cells unchanged");
        let q: Vec<&QuarantineRecord> = report.quarantined().collect();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].attempts, 2, "retried before quarantine");
        assert_eq!(q[0].cause, FailCause::Panic);
        assert!(q[0].message.contains("cell 99 exploded"), "{}", q[0].message);
        let artifact = q[0].artifact.as_ref().expect("artifact written");
        let text = std::fs::read_to_string(artifact).expect("artifact readable");
        assert!(text.contains("cell 99 exploded"), "{text}");
        assert_eq!(report.counters.quarantined, 1);
        assert_eq!(report.counters.retries, 1);
        assert_eq!(report.counters.panics, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
