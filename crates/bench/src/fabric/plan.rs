//! Shard planning: content-addressed cell identity and grid partitioning.
//!
//! The fabric must recognise "the same cell" across process lifetimes — a
//! resumed sweep matches journal entries against the freshly planned grid,
//! and a future distributed fabric hands shards to remote workers. Both need
//! an identity that is a **pure function of the cell's content**, never of
//! memory addresses, submission timing, or iteration order. [`CellId`] is
//! that identity: a 64-bit FNV-1a hash over the cell's label, seed, and the
//! caller-supplied configuration [`Fingerprint`].
//!
//! Everything here is deterministic by construction: hashing is FNV-1a with
//! fixed constants (not `DefaultHasher`, whose output may change between
//! std releases), duplicate detection uses `BTreeSet` (simlint D001), and
//! shard assignment is round-robin over the input order. No wall-clock, no
//! RNG, no pointer identity.

use std::collections::BTreeSet;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive FNV-1a 64-bit hasher over typed fields. Each push
/// mixes a tag byte before the payload so `push_str("ab")` + `push_str("c")`
/// and `push_str("a")` + `push_str("bc")` hash differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// The empty fingerprint (FNV offset basis).
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    fn mix(mut self, bytes: &[u8]) -> Fingerprint {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a UTF-8 string field in (length-tagged).
    #[must_use]
    pub fn str(self, s: &str) -> Fingerprint {
        self.mix(&[1]).u64(s.len() as u64).mix(s.as_bytes())
    }

    /// Folds an unsigned integer field in.
    #[must_use]
    pub fn u64(self, v: u64) -> Fingerprint {
        self.mix(&[2]).mix(&v.to_le_bytes())
    }

    /// Folds a float field in by IEEE-754 bit pattern — two configs whose
    /// floats differ by one ulp are different cells.
    #[must_use]
    pub fn f64(self, v: f64) -> Fingerprint {
        self.mix(&[3]).mix(&v.to_bits().to_le_bytes())
    }

    /// Folds a boolean flag in.
    #[must_use]
    pub fn bool(self, v: bool) -> Fingerprint {
        self.mix(&[4]).mix(&[u8::from(v)])
    }

    /// The accumulated 64-bit digest.
    pub fn digest(self) -> u64 {
        self.0
    }
}

/// The content-addressed identity of one sweep cell: a stable hash of
/// `(label, seed, config fingerprint)`. Two cells with the same id are the
/// same work unit; a journal entry for an id is valid for exactly that cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellId(u64);

impl CellId {
    /// Derives the id from the cell's identity fields.
    pub fn derive(label: &str, seed: u64, config: Fingerprint) -> CellId {
        CellId(Fingerprint::new().str(label).u64(seed).u64(config.digest()).digest())
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Result<CellId, String> {
        if s.len() != 16 {
            return Err(format!("cell id {s:?} is not 16 hex digits"));
        }
        u64::from_str_radix(s, 16).map(CellId).map_err(|e| format!("bad cell id {s:?}: {e}"))
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The planner's view of one cell: identity only, no closure. The fabric
/// core keeps the runnable cells alongside, indexed by input position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedCell {
    /// Input position in the submitted grid.
    pub index: usize,
    /// Content-addressed identity.
    pub id: CellId,
    /// Display label (informational; `id` is the key).
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
}

/// A deterministic partition of a sweep grid into content-addressed work
/// units, plus a grid-level digest that pins *which* grid a journal belongs
/// to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    cells: Vec<PlannedCell>,
    grid: u64,
}

impl ShardPlan {
    /// Plans a grid from `(label, seed, config fingerprint)` triples, in
    /// input order.
    ///
    /// # Errors
    ///
    /// Two cells hashing to the same [`CellId`] would make journal entries
    /// ambiguous, so duplicates are rejected with both labels named.
    pub fn new(
        cells: impl IntoIterator<Item = (String, u64, Fingerprint)>,
    ) -> Result<ShardPlan, String> {
        let mut planned = Vec::new();
        let mut seen: BTreeSet<CellId> = BTreeSet::new();
        let mut grid = Fingerprint::new();
        for (index, (label, seed, config)) in cells.into_iter().enumerate() {
            let id = CellId::derive(&label, seed, config);
            if !seen.insert(id) {
                let prior = planned
                    .iter()
                    .find(|p: &&PlannedCell| p.id == id)
                    .map_or(String::new(), |p| format!(" (first at #{}, {:?})", p.index, p.label));
                return Err(format!(
                    "duplicate cell id {id} for cell #{index} {label:?}{prior}; \
                     give identical cells distinct labels, seeds, or fingerprints"
                ));
            }
            grid = grid.u64(id.as_u64());
            planned.push(PlannedCell { index, id, label, seed });
        }
        Ok(ShardPlan { cells: planned, grid: grid.digest() })
    }

    /// The planned cells, in input order.
    pub fn cells(&self) -> &[PlannedCell] {
        &self.cells
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for the empty grid.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The grid digest: an order-sensitive fold of every cell id. A journal
    /// written for one grid refuses to resume a different one.
    pub fn grid_id(&self) -> u64 {
        self.grid
    }

    /// Looks a cell up by id.
    pub fn find(&self, id: CellId) -> Option<&PlannedCell> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// Partitions the grid into `shards` work units by round-robin over
    /// input order: shard `k` gets cells `k, k+shards, k+2·shards, …`.
    /// Round-robin (rather than contiguous chunks) balances grids whose
    /// cost grows along an axis, e.g. seeds sorted by transfer size.
    /// Deterministic: depends only on input order and `shards`.
    ///
    /// # Errors
    ///
    /// A zero shard count is a usage error, rejected explicitly — the same
    /// policy as `--jobs 0` in the runner. Silently coercing to one shard
    /// would hide a broken `--workers`/`SWEEP_WORKERS` computation upstream.
    pub fn shards(&self, shards: usize) -> Result<Vec<Vec<&PlannedCell>>, String> {
        if shards == 0 {
            return Err(
                "shard count must be at least 1 (got 0); check --workers/SWEEP_WORKERS".to_owned()
            );
        }
        let mut out: Vec<Vec<&PlannedCell>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, c) in self.cells.iter().enumerate() {
            out[i % shards].push(c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u64) -> Fingerprint {
        Fingerprint::new().u64(x)
    }

    #[test]
    fn cell_ids_are_stable_and_content_addressed() {
        let a = CellId::derive("lia-seed3", 3, fp(7));
        let b = CellId::derive("lia-seed3", 3, fp(7));
        assert_eq!(a, b, "same content must give the same id");
        assert_ne!(a, CellId::derive("lia-seed3", 4, fp(7)), "seed must matter");
        assert_ne!(a, CellId::derive("lia-seed4", 3, fp(7)), "label must matter");
        assert_ne!(a, CellId::derive("lia-seed3", 3, fp(8)), "fingerprint must matter");
    }

    #[test]
    fn fingerprint_fields_are_tagged_and_order_sensitive() {
        assert_ne!(
            Fingerprint::new().str("ab").str("c").digest(),
            Fingerprint::new().str("a").str("bc").digest(),
            "field boundaries must be part of the hash"
        );
        assert_ne!(
            Fingerprint::new().u64(1).u64(2).digest(),
            Fingerprint::new().u64(2).u64(1).digest(),
            "field order must be part of the hash"
        );
        assert_ne!(
            Fingerprint::new().u64(1).digest(),
            Fingerprint::new().f64(f64::from_bits(1)).digest()
        );
        // One-ulp float difference is a different cell.
        assert_ne!(
            Fingerprint::new().f64(0.1).digest(),
            Fingerprint::new().f64(f64::from_bits(0.1f64.to_bits() + 1)).digest()
        );
    }

    #[test]
    fn cell_id_roundtrips_through_hex() {
        let id = CellId::derive("x", 9, fp(0));
        assert_eq!(CellId::parse(&id.to_string()), Ok(id));
        assert!(CellId::parse("xyz").is_err());
        assert!(CellId::parse("00112233445566778").is_err());
    }

    #[test]
    fn plan_rejects_duplicate_cells() {
        let cells = vec![
            ("a".to_owned(), 1, fp(0)),
            ("b".to_owned(), 1, fp(0)),
            ("a".to_owned(), 1, fp(0)),
        ];
        let err = ShardPlan::new(cells).unwrap_err();
        assert!(err.contains("duplicate cell id"), "{err}");
        assert!(err.contains("\"a\""), "{err}");
    }

    #[test]
    fn grid_id_pins_membership_and_order() {
        let plan = |labels: &[&str]| {
            ShardPlan::new(labels.iter().map(|l| ((*l).to_owned(), 0, fp(0)))).unwrap()
        };
        assert_eq!(plan(&["a", "b"]).grid_id(), plan(&["a", "b"]).grid_id());
        assert_ne!(plan(&["a", "b"]).grid_id(), plan(&["b", "a"]).grid_id());
        assert_ne!(plan(&["a", "b"]).grid_id(), plan(&["a", "b", "c"]).grid_id());
    }

    #[test]
    fn shards_partition_round_robin() {
        let plan = ShardPlan::new((0..7).map(|i| (format!("c{i}"), i, fp(0)))).unwrap();
        let shards = plan.shards(3).expect("3 shards");
        assert_eq!(shards.len(), 3);
        let idx: Vec<Vec<usize>> =
            shards.iter().map(|s| s.iter().map(|c| c.index).collect()).collect();
        assert_eq!(idx, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        // Every cell lands in exactly one shard.
        let mut all: Vec<usize> = idx.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
        // More shards than cells leaves the surplus shards empty.
        let wide = plan.shards(9).expect("9 shards");
        assert_eq!(wide.len(), 9);
        assert!(wide[7].is_empty() && wide[8].is_empty());
    }

    #[test]
    fn zero_shards_is_an_explicit_error() {
        // A silent clamp to one shard would mask a broken --workers
        // computation; the runner rejects --jobs 0 for the same reason.
        let plan = ShardPlan::new((0..3).map(|i| (format!("c{i}"), i, fp(0)))).unwrap();
        let err = plan.shards(0).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(err.contains("SWEEP_WORKERS"), "{err}");
    }
}
