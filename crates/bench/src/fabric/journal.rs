//! The result journal: an append-only JSONL checkpoint of completed cells.
//!
//! Every time a cell finishes, the fabric appends **one line** to the
//! journal and flushes it, so a `SIGKILL` at any instant loses at most the
//! line being written. Resuming is replaying: parse the journal, match
//! `done` lines against the freshly planned grid by [`CellId`], decode
//! their payloads, and run only the cells with no entry. The merged output
//! is byte-identical to an uninterrupted run because the payload codec
//! round-trips every value exactly — `f64`s travel as IEEE-754 bit
//! patterns, the same discipline as [`crate::repro`].
//!
//! Line formats (flat one-line JSON, parsed with the obs key-scan helpers):
//!
//! ```text
//! {"fabric":"run","version":1,"grid":"<16 hex>","cells":N}
//! {"fabric":"done","id":"<16 hex>","label":"...","seed":7,"attempts":1,"payload":[...]}
//! {"fabric":"quarantined","id":"<16 hex>","label":"...","seed":7,"attempts":3,"cause":"panic","message":"..."}
//! ```
//!
//! A `run` header is appended each time a fabric run opens the journal; the
//! grid digest must match across every header, so a journal can never mix
//! cells from two different grids. A torn final line (the line a kill
//! interrupted) is tolerated and simply re-run; corruption anywhere else is
//! an error — the journal is evidence, and silently skipping mid-file
//! damage would hide it. Duplicate `done` records for the same cell —
//! possible once multiple writers exist (distributed supervisors harvesting
//! partial responses, or two crashed runs that both completed the cell) —
//! resolve **first-record-wins**: the payload checkpointed first is the one
//! every later resume replays, so a merged result can never silently change
//! identity across resumes.

use super::plan::CellId;
use crate::repro::{esc, json_escaped_str_field, unesc};
use obs::{
    json_str_field, json_u64_field, ConnCounters, CounterSnapshot, GlobalCounters, HybridCounters,
    LinkCounters, SubflowCounters,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// The journal format version written in `run` headers.
pub const JOURNAL_VERSION: u64 = 1;

/// One token of an encoded payload: journals are built from unsigned words
/// (integers, float bit patterns, flags, lengths) and strings — nothing
/// else, so decoding is total and bit-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalValue {
    /// An unsigned word (also carries `f64::to_bits` patterns).
    U64(u64),
    /// A UTF-8 string.
    Str(String),
}

/// Sequential reader over a decoded payload.
#[derive(Debug)]
pub struct ValueReader<'a> {
    vals: &'a [JournalValue],
    pos: usize,
}

impl<'a> ValueReader<'a> {
    /// Wraps a payload slice.
    pub fn new(vals: &'a [JournalValue]) -> ValueReader<'a> {
        ValueReader { vals, pos: 0 }
    }

    /// Takes the next word.
    pub fn u64(&mut self) -> Result<u64, String> {
        match self.vals.get(self.pos) {
            Some(JournalValue::U64(v)) => {
                self.pos += 1;
                Ok(*v)
            }
            Some(JournalValue::Str(s)) => {
                Err(format!("payload word {}: expected number, found {s:?}", self.pos))
            }
            None => Err(format!("payload truncated at word {}", self.pos)),
        }
    }

    /// Takes the next string.
    pub fn str(&mut self) -> Result<String, String> {
        match self.vals.get(self.pos) {
            Some(JournalValue::Str(s)) => {
                self.pos += 1;
                Ok(s.clone())
            }
            Some(JournalValue::U64(v)) => {
                Err(format!("payload word {}: expected string, found {v}", self.pos))
            }
            None => Err(format!("payload truncated at word {}", self.pos)),
        }
    }

    /// True when every value has been consumed — decoders check this so a
    /// payload with trailing garbage is rejected, not silently accepted.
    pub fn exhausted(&self) -> bool {
        self.pos == self.vals.len()
    }
}

/// Exact, bit-faithful encode/decode of a cell output through the journal's
/// value stream. The round-trip law every implementation must obey (and the
/// resume guarantee rests on): `decode(encode(x)) == x`, bit-for-bit.
pub trait JournalCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<JournalValue>);
    /// Reads one value back.
    ///
    /// # Errors
    ///
    /// On type/arity mismatch — the journal was written by different code
    /// or corrupted.
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String>;
}

impl JournalCodec for u64 {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(*self));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        r.u64()
    }
}

impl JournalCodec for u32 {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(u64::from(*self)));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        u32::try_from(r.u64()?).map_err(|e| format!("u32 out of range: {e}"))
    }
}

impl JournalCodec for usize {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(*self as u64));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        usize::try_from(r.u64()?).map_err(|e| format!("usize out of range: {e}"))
    }
}

impl JournalCodec for bool {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(u64::from(*self)));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        match r.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bool flag out of range: {other}")),
        }
    }
}

impl JournalCodec for f64 {
    /// Bit pattern, not decimal text: one lost ulp would break the
    /// byte-identical resume guarantee.
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(self.to_bits()));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl JournalCodec for String {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::Str(self.clone()));
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        r.str()
    }
}

impl<T: JournalCodec> JournalCodec for Option<T> {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        match self {
            None => out.push(JournalValue::U64(0)),
            Some(v) => {
                out.push(JournalValue::U64(1));
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        match r.u64()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(format!("Option flag out of range: {other}")),
        }
    }
}

impl<T: JournalCodec> JournalCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        out.push(JournalValue::U64(self.len() as u64));
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        let n = usize::try_from(r.u64()?).map_err(|e| format!("Vec length out of range: {e}"))?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: JournalCodec, B: JournalCodec> JournalCodec for (A, B) {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: JournalCodec, B: JournalCodec, C: JournalCodec> JournalCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: JournalCodec, B: JournalCodec, C: JournalCodec, D: JournalCodec> JournalCodec
    for (A, B, C, D)
{
    fn encode(&self, out: &mut Vec<JournalValue>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl JournalCodec for LinkCounters {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let LinkCounters {
            link,
            tx_pkts,
            drops_queue,
            drops_fault,
            drops_blackout,
            ecn_marks,
            queue_high_water,
            offered,
            reordered,
            duplicated,
            corrupted,
        } = self;
        for v in [
            link,
            tx_pkts,
            drops_queue,
            drops_fault,
            drops_blackout,
            ecn_marks,
            offered,
            reordered,
            duplicated,
            corrupted,
        ] {
            v.encode(out);
        }
        queue_high_water.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(LinkCounters {
            link: r.u64()?,
            tx_pkts: r.u64()?,
            drops_queue: r.u64()?,
            drops_fault: r.u64()?,
            drops_blackout: r.u64()?,
            ecn_marks: r.u64()?,
            offered: r.u64()?,
            reordered: r.u64()?,
            duplicated: r.u64()?,
            corrupted: r.u64()?,
            queue_high_water: usize::decode(r)?,
        })
    }
}

impl JournalCodec for SubflowCounters {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let SubflowCounters {
            conn,
            subflow,
            rtos,
            fast_rexmits,
            spurious_rexmits,
            recoveries,
            deaths,
            revivals,
            probes,
        } = self;
        conn.encode(out);
        subflow.encode(out);
        for v in [rtos, fast_rexmits, spurious_rexmits, recoveries, deaths, revivals, probes] {
            v.encode(out);
        }
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(SubflowCounters {
            conn: r.u64()?,
            subflow: usize::decode(r)?,
            rtos: r.u64()?,
            fast_rexmits: r.u64()?,
            spurious_rexmits: r.u64()?,
            recoveries: r.u64()?,
            deaths: r.u64()?,
            revivals: r.u64()?,
            probes: r.u64()?,
        })
    }
}

impl JournalCodec for HybridCounters {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let HybridCounters {
            epochs,
            fluid_flows,
            packet_flows,
            handoffs,
            fluid_steps,
            price_cap_hits,
            background_links,
        } = self;
        for v in [
            epochs,
            fluid_flows,
            packet_flows,
            handoffs,
            fluid_steps,
            price_cap_hits,
            background_links,
        ] {
            v.encode(out);
        }
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(HybridCounters {
            epochs: r.u64()?,
            fluid_flows: r.u64()?,
            packet_flows: r.u64()?,
            handoffs: r.u64()?,
            fluid_steps: r.u64()?,
            price_cap_hits: r.u64()?,
            background_links: r.u64()?,
        })
    }
}

impl JournalCodec for ConnCounters {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let ConnCounters {
            conn,
            zero_window_stalls,
            persist_probes,
            corrupt_acks,
            corrupt_discards,
            rwnd_dropped,
            ooo_dropped,
            duplicates,
        } = self;
        for v in [
            conn,
            zero_window_stalls,
            persist_probes,
            corrupt_acks,
            corrupt_discards,
            rwnd_dropped,
            ooo_dropped,
            duplicates,
        ] {
            v.encode(out);
        }
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(ConnCounters {
            conn: r.u64()?,
            zero_window_stalls: r.u64()?,
            persist_probes: r.u64()?,
            corrupt_acks: r.u64()?,
            corrupt_discards: r.u64()?,
            rwnd_dropped: r.u64()?,
            ooo_dropped: r.u64()?,
            duplicates: r.u64()?,
        })
    }
}

impl JournalCodec for GlobalCounters {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let GlobalCounters { nan_samples, dropped_load_samples } = self;
        nan_samples.encode(out);
        dropped_load_samples.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(GlobalCounters { nan_samples: r.u64()?, dropped_load_samples: r.u64()? })
    }
}

impl JournalCodec for CounterSnapshot {
    fn encode(&self, out: &mut Vec<JournalValue>) {
        let CounterSnapshot { links, subflows, conns, global } = self;
        links.encode(out);
        subflows.encode(out);
        conns.encode(out);
        global.encode(out);
    }
    fn decode(r: &mut ValueReader<'_>) -> Result<Self, String> {
        Ok(CounterSnapshot {
            links: Vec::decode(r)?,
            subflows: Vec::decode(r)?,
            conns: Vec::decode(r)?,
            global: GlobalCounters::decode(r)?,
        })
    }
}

/// Encodes a value to a standalone payload vector.
pub fn encode_payload<T: JournalCodec>(value: &T) -> Vec<JournalValue> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a full payload, rejecting trailing garbage.
///
/// # Errors
///
/// On any type/arity mismatch or leftover values.
pub fn decode_payload<T: JournalCodec>(vals: &[JournalValue]) -> Result<T, String> {
    let mut r = ValueReader::new(vals);
    let v = T::decode(&mut r)?;
    if !r.exhausted() {
        return Err("payload has trailing values".to_owned());
    }
    Ok(v)
}

pub(crate) fn render_payload(vals: &[JournalValue], out: &mut String) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            JournalValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JournalValue::Str(s) => {
                let _ = write!(out, "\"{}\"", esc(s));
            }
        }
    }
    out.push(']');
}

/// Parses the `"payload":[...]` array out of a journal line. Shared with
/// the distributed wire codec (`super::dist::wire`), whose `done` lines use
/// the same payload rendering.
pub(crate) fn parse_payload(line: &str) -> Result<Vec<JournalValue>, String> {
    let pat = "\"payload\":[";
    let start = line.find(pat).ok_or("done line missing payload array")? + pat.len();
    let rest = &line[start..];
    // Scan to the matching close bracket, honouring string escapes.
    let mut end = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ']' if !in_str => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let body = &rest[..end.ok_or("unterminated payload array")?];
    let mut vals = Vec::new();
    let mut item = String::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut flush = |item: &mut String| -> Result<(), String> {
        let t = item.trim();
        if t.is_empty() {
            return Ok(());
        }
        if let Some(stripped) = t.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            vals.push(JournalValue::Str(unesc(stripped)));
        } else {
            vals.push(JournalValue::U64(
                t.parse::<u64>().map_err(|e| format!("bad payload number {t:?}: {e}"))?,
            ));
        }
        item.clear();
        Ok(())
    };
    for c in body.chars() {
        match c {
            _ if escaped => {
                escaped = false;
                item.push('\\');
                item.push(c);
            }
            '\\' if in_str => escaped = true,
            '"' => {
                in_str = !in_str;
                item.push('"');
            }
            ',' if !in_str => flush(&mut item)?,
            c => item.push(c),
        }
    }
    flush(&mut item)?;
    Ok(vals)
}

/// A replayed `done` line: the cell's identity plus its still-encoded
/// payload (decoded against the concrete output type by the fabric core).
#[derive(Clone, Debug, PartialEq)]
pub struct DoneLine {
    /// The cell's content-addressed id.
    pub id: CellId,
    /// Label recorded at completion (informational).
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// How many attempts the cell took.
    pub attempts: u32,
    /// The encoded `(output, counters)` payload.
    pub payload: Vec<JournalValue>,
}

/// A replayed `quarantined` line. Quarantined cells are **re-run** on
/// resume — the journal remembers the failure for the report, but a fresh
/// process gets a fresh chance (the crash being resumed from may well have
/// been the quarantined cell's fault).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineLine {
    /// The cell's content-addressed id.
    pub id: CellId,
    /// Label recorded at quarantine.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Attempts consumed before quarantine.
    pub attempts: u32,
    /// `"panic"` or `"deadline"`.
    pub cause: String,
    /// The captured failure message.
    pub message: String,
}

/// A parsed journal: every `done` line keyed by cell id, plus history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalReplay {
    /// Grid digest from the `run` headers (`None` for an empty journal).
    pub grid: Option<u64>,
    /// Completed cells keyed by id (deterministic iteration: `BTreeMap`).
    pub done: BTreeMap<CellId, DoneLine>,
    /// Quarantine records, in journal order.
    pub quarantined: Vec<QuarantineLine>,
    /// A torn final line a kill interrupted, if one was found (tolerated;
    /// the affected cell simply re-runs).
    pub torn_tail: Option<String>,
}

fn parse_grid(line: &str) -> Result<u64, String> {
    let g =
        json_str_field(line, "grid").ok_or_else(|| format!("run header missing grid: {line}"))?;
    u64::from_str_radix(g, 16).map_err(|e| format!("bad grid digest {g:?}: {e}"))
}

pub(crate) fn parse_id(line: &str) -> Result<CellId, String> {
    CellId::parse(json_str_field(line, "id").ok_or_else(|| format!("line missing id: {line}"))?)
}

pub(crate) fn str_field(line: &str, key: &str) -> Result<String, String> {
    json_escaped_str_field(line, key)
        .map(unesc)
        .ok_or_else(|| format!("line missing {key}: {line}"))
}

pub(crate) fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    json_u64_field(line, key).ok_or_else(|| format!("line missing {key}: {line}"))
}

fn parse_line(replay: &mut JournalReplay, line: &str) -> Result<(), String> {
    match json_str_field(line, "fabric") {
        Some("run") => {
            let version = u64_field(line, "version")?;
            if version != JOURNAL_VERSION {
                return Err(format!(
                    "journal version {version} (this build reads {JOURNAL_VERSION})"
                ));
            }
            let grid = parse_grid(line)?;
            if let Some(prior) = replay.grid {
                if prior != grid {
                    return Err(format!(
                        "journal mixes grids {prior:016x} and {grid:016x}; it was written for a different sweep"
                    ));
                }
            }
            replay.grid = Some(grid);
        }
        Some("done") => {
            let entry = DoneLine {
                id: parse_id(line)?,
                label: str_field(line, "label")?,
                seed: u64_field(line, "seed")?,
                attempts: u32::try_from(u64_field(line, "attempts")?)
                    .map_err(|e| format!("attempts out of range: {e}"))?,
                payload: parse_payload(line)?,
            };
            // First record wins, pinned by test. A cell can be journaled
            // twice once multiple writers exist (a supervisor harvesting a
            // crashed worker's partial response while its re-dispatch also
            // completes the cell, or two crashed runs that both finished
            // it). For a deterministic cell both payloads are identical and
            // the choice is moot; for a *non*-deterministic cell,
            // first-record-wins means the payload that later readers see is
            // the one that was checkpointed first — resuming can never
            // silently swap an already-merged result for a different one.
            // `merge::merge_replays` applies the same rule across shard
            // journals (and additionally rejects disagreeing payloads).
            replay.done.entry(entry.id).or_insert(entry);
        }
        Some("quarantined") => {
            replay.quarantined.push(QuarantineLine {
                id: parse_id(line)?,
                label: str_field(line, "label")?,
                seed: u64_field(line, "seed")?,
                attempts: u32::try_from(u64_field(line, "attempts")?)
                    .map_err(|e| format!("attempts out of range: {e}"))?,
                cause: str_field(line, "cause")?,
                message: str_field(line, "message")?,
            });
        }
        other => return Err(format!("unknown journal line kind {other:?}: {line}")),
    }
    Ok(())
}

/// Parses a journal's full text.
///
/// # Errors
///
/// On mid-file corruption, version/grid mismatch, or malformed lines. The
/// **final** line is exempt: a process killed mid-append leaves a torn tail,
/// which is recorded in [`JournalReplay::torn_tail`] and otherwise ignored.
pub fn parse_journal(text: &str) -> Result<JournalReplay, String> {
    let mut replay = JournalReplay::default();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = parse_line(&mut replay, line) {
            let is_last = i + 1 == lines.len();
            if is_last {
                replay.torn_tail = Some((*line).to_owned());
            } else {
                return Err(format!("journal line {}: {e}", i + 1));
            }
        }
    }
    Ok(replay)
}

/// Reads and parses the journal at `path`; a missing file is an empty
/// journal (first run).
///
/// # Errors
///
/// On unreadable files or mid-file corruption (see [`parse_journal`]).
pub fn load_journal(path: &Path) -> Result<JournalReplay, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_journal(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(JournalReplay::default()),
        Err(e) => Err(format!("cannot read journal {}: {e}", path.display())),
    }
}

/// The append side: opens the journal for appending and writes one flushed
/// line per event. Shared across workers behind a `Mutex` by the fabric
/// core.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Opens (creating if needed) the journal at `path` in append mode and
    /// writes a `run` header for this grid.
    ///
    /// A torn tail left by a kill mid-write (a final line with no trailing
    /// newline) is truncated away first: the loader tolerates a torn line
    /// only at the very end of the file, so appending after one would turn
    /// it into mid-file corruption and poison every later resume. The torn
    /// line is by definition an incomplete checkpoint — dropping it just
    /// re-runs that one cell.
    ///
    /// # Errors
    ///
    /// On filesystem errors.
    pub fn append_to(path: &Path, grid: u64, cells: usize) -> Result<JournalWriter, String> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create journal dir {}: {e}", parent.display()))?;
        }
        match std::fs::read(path) {
            Ok(bytes) if !bytes.is_empty() && !bytes.ends_with(b"\n") => {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
                f.set_len(keep as u64)
                    .map_err(|e| format!("cannot trim torn journal tail: {e}"))?;
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut w = JournalWriter { file };
        w.line(&format!(
            "{{\"fabric\":\"run\",\"version\":{JOURNAL_VERSION},\"grid\":\"{grid:016x}\",\"cells\":{cells}}}"
        ))?;
        Ok(w)
    }

    fn line(&mut self, json: &str) -> Result<(), String> {
        // One write_all + flush per line: after a kill, the journal holds
        // whole lines plus at most one torn tail.
        let mut buf = String::with_capacity(json.len() + 1);
        buf.push_str(json);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("journal write failed: {e}"))
    }

    /// Appends a `done` checkpoint for a completed cell.
    ///
    /// # Errors
    ///
    /// On filesystem errors.
    pub fn record_done(
        &mut self,
        id: CellId,
        label: &str,
        seed: u64,
        attempts: u32,
        payload: &[JournalValue],
    ) -> Result<(), String> {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"fabric\":\"done\",\"id\":\"{id}\",\"label\":\"{}\",\"seed\":{seed},\"attempts\":{attempts},\"payload\":",
            esc(label)
        );
        render_payload(payload, &mut out);
        out.push('}');
        self.line(&out)
    }

    /// Appends a `quarantined` record for an exhausted cell.
    ///
    /// # Errors
    ///
    /// On filesystem errors.
    pub fn record_quarantine(
        &mut self,
        id: CellId,
        label: &str,
        seed: u64,
        attempts: u32,
        cause: &str,
        message: &str,
    ) -> Result<(), String> {
        self.line(&format!(
            "{{\"fabric\":\"quarantined\",\"id\":\"{id}\",\"label\":\"{}\",\"seed\":{seed},\
             \"attempts\":{attempts},\"cause\":\"{cause}\",\"message\":\"{}\"}}",
            esc(label),
            esc(message)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::plan::Fingerprint;

    fn roundtrip<T: JournalCodec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_payload(&v);
        let dec: T = decode_payload(&enc).expect("decode");
        assert_eq!(dec, v);
    }

    #[test]
    fn codec_roundtrips_primitives_bit_exactly() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42u32);
        roundtrip(7usize);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("label \"quoted\"\nnewline"));
        roundtrip(String::new());
        for f in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, 0.1] {
            let enc = encode_payload(&f);
            let dec: f64 = decode_payload(&enc).expect("decode");
            assert_eq!(dec.to_bits(), f.to_bits(), "{f} lost bits");
        }
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip((1u64, 2.5f64, String::from("x")));
        roundtrip((1u64, 2u64, 3u64, 4u64));
    }

    #[test]
    fn codec_roundtrips_counter_snapshots() {
        let snap = CounterSnapshot {
            links: vec![LinkCounters {
                link: 3,
                tx_pkts: 100,
                drops_fault: 2,
                queue_high_water: 9,
                ..Default::default()
            }],
            subflows: vec![SubflowCounters { conn: 1, subflow: 1, rtos: 4, ..Default::default() }],
            conns: vec![ConnCounters { conn: 1, duplicates: 7, ..Default::default() }],
            global: GlobalCounters { nan_samples: 1, dropped_load_samples: 2 },
        };
        roundtrip(snap);
        roundtrip(CounterSnapshot::default());
    }

    #[test]
    fn codec_roundtrips_hybrid_counters() {
        roundtrip(HybridCounters {
            epochs: 12,
            fluid_flows: 100_000,
            packet_flows: 512,
            handoffs: 37,
            fluid_steps: 15_000,
            price_cap_hits: 4,
            background_links: 49_152,
        });
        roundtrip(HybridCounters::default());
    }

    #[test]
    fn codec_rejects_mismatch_and_trailing_garbage() {
        let enc = encode_payload(&(1u64, 2u64));
        assert!(decode_payload::<u64>(&enc).is_err(), "trailing garbage accepted");
        assert!(decode_payload::<(u64, u64, u64)>(&enc).is_err(), "truncation accepted");
        assert!(decode_payload::<String>(&encode_payload(&1u64)).is_err(), "type confusion");
        assert!(decode_payload::<bool>(&encode_payload(&9u64)).is_err(), "bad bool");
    }

    fn id(n: u64) -> CellId {
        CellId::derive("c", n, Fingerprint::new())
    }

    #[test]
    fn journal_roundtrips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("fabric-journal-test-{}", std::process::id()));
        let path = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&path);
        let payload = encode_payload(&(1.5f64, String::from("a\"b"), 7u64));
        {
            let mut w = JournalWriter::append_to(&path, 0xabcd, 3).expect("open");
            w.record_done(id(0), "cell \"zero\"", 0, 1, &payload).expect("done");
            w.record_quarantine(id(1), "cell-one", 1, 3, "panic", "boom\nline2").expect("q");
        }
        // A second run appends another header for the same grid.
        {
            let mut w = JournalWriter::append_to(&path, 0xabcd, 3).expect("reopen");
            w.record_done(id(2), "cell-two", 2, 2, &encode_payload(&0u64)).expect("done");
        }
        let replay = load_journal(&path).expect("parse");
        assert_eq!(replay.grid, Some(0xabcd));
        assert_eq!(replay.done.len(), 2);
        assert_eq!(replay.done[&id(0)].label, "cell \"zero\"");
        assert_eq!(replay.done[&id(0)].payload, payload);
        let q = &replay.quarantined[0];
        assert_eq!((q.cause.as_str(), q.attempts), ("panic", 3));
        assert_eq!(q.message, "boom\nline2");
        assert!(replay.torn_tail.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_tolerated_mid_file_corruption_is_not() {
        let mut good = String::new();
        good.push_str(
            "{\"fabric\":\"run\",\"version\":1,\"grid\":\"00000000000000ff\",\"cells\":2}\n",
        );
        good.push_str(&format!(
            "{{\"fabric\":\"done\",\"id\":\"{}\",\"label\":\"a\",\"seed\":0,\"attempts\":1,\"payload\":[1]}}\n",
            id(0)
        ));
        // Torn tail: the kill landed mid-append.
        let torn = format!("{good}{{\"fabric\":\"done\",\"id\":\"3333");
        let replay = parse_journal(&torn).expect("torn tail must parse");
        assert_eq!(replay.done.len(), 1);
        assert!(replay.torn_tail.is_some());
        // The same garbage mid-file is corruption.
        let corrupt = format!("{good}{{\"fabric\":\"done\",\"id\":\"3333\nmore\n");
        let err = parse_journal(&corrupt).unwrap_err();
        assert!(err.contains("journal line"), "{err}");
    }

    #[test]
    fn reopening_a_torn_journal_trims_the_tail_before_appending() {
        // A resume that appends after a torn tail would glue its run header
        // onto the torn line, turning a tolerated final-line tear into
        // mid-file corruption for every later resume. append_to must trim
        // the tear first.
        let dir = std::env::temp_dir().join(format!("fabric-torn-trim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("j.jsonl");
        let mut torn = String::new();
        torn.push_str(
            "{\"fabric\":\"run\",\"version\":1,\"grid\":\"00000000000000ff\",\"cells\":2}\n",
        );
        torn.push_str(&format!(
            "{{\"fabric\":\"done\",\"id\":\"{}\",\"label\":\"a\",\"seed\":0,\"attempts\":1,\"payload\":[1]}}\n",
            id(0)
        ));
        torn.push_str("{\"fabric\":\"done\",\"id\":\"3333"); // the kill landed here
        std::fs::write(&path, &torn).expect("write");
        {
            let mut w = JournalWriter::append_to(&path, 0xff, 2).expect("reopen");
            w.record_done(id(1), "b", 1, 1, &encode_payload(&2u64)).expect("done");
        }
        let replay = load_journal(&path).expect("a resumed journal must stay parseable");
        assert_eq!(replay.done.len(), 2, "trimmed tear must not cost completed cells");
        assert!(replay.torn_tail.is_none(), "the tear itself is gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_done_records_resolve_first_record_wins() {
        // Two writers can both journal the same cell (a harvested partial
        // response racing its re-dispatch). The first checkpoint is the one
        // a resume must replay — pinned here so the policy is specified,
        // not incidental.
        let mut text = String::from(
            "{\"fabric\":\"run\",\"version\":1,\"grid\":\"00000000000000ff\",\"cells\":1}\n",
        );
        text.push_str(&format!(
            "{{\"fabric\":\"done\",\"id\":\"{}\",\"label\":\"first\",\"seed\":0,\"attempts\":1,\"payload\":[11]}}\n",
            id(0)
        ));
        text.push_str(&format!(
            "{{\"fabric\":\"done\",\"id\":\"{}\",\"label\":\"second\",\"seed\":0,\"attempts\":2,\"payload\":[22]}}\n",
            id(0)
        ));
        let replay = parse_journal(&text).expect("duplicates are not corruption");
        assert_eq!(replay.done.len(), 1);
        let entry = &replay.done[&id(0)];
        assert_eq!(entry.label, "first", "first record must win");
        assert_eq!(entry.attempts, 1);
        assert_eq!(entry.payload, vec![JournalValue::U64(11)]);
    }

    #[test]
    fn journal_refuses_grid_and_version_mismatches() {
        let a = "{\"fabric\":\"run\",\"version\":1,\"grid\":\"0000000000000001\",\"cells\":1}\n";
        let b = "{\"fabric\":\"run\",\"version\":1,\"grid\":\"0000000000000002\",\"cells\":1}\ntrailer-guard\n";
        let err = parse_journal(&format!("{a}{b}")).unwrap_err();
        assert!(err.contains("mixes grids"), "{err}");
        let v9 = "{\"fabric\":\"run\",\"version\":9,\"grid\":\"0000000000000001\",\"cells\":1}\ntrailer-guard\n";
        let err = parse_journal(v9).unwrap_err();
        assert!(err.contains("version 9"), "{err}");
        // Missing file = empty journal, not an error.
        let empty =
            load_journal(Path::new("/nonexistent/fabric/journal.jsonl")).expect("missing file");
        assert_eq!(empty, JournalReplay::default());
    }

    #[test]
    fn payload_strings_survive_commas_brackets_and_escapes() {
        let payload = encode_payload(&vec![
            String::from("a,b"),
            String::from("c]d"),
            String::from("e\"f\\g"),
        ]);
        let mut line = String::from(
            "{\"fabric\":\"done\",\"id\":\"0000000000000001\",\"label\":\"x\",\"seed\":0,\"attempts\":1,\"payload\":",
        );
        render_payload(&payload, &mut line);
        line.push('}');
        let parsed = parse_payload(&line).expect("parse");
        assert_eq!(parsed, payload);
        let decoded: Vec<String> = decode_payload(&parsed).expect("decode");
        assert_eq!(decoded, vec!["a,b", "c]d", "e\"f\\g"]);
    }
}
