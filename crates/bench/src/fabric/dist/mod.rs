//! # dist — supervisor/worker execution on top of the sweep fabric
//!
//! [`super::run_fabric`] contains failures inside one process; this module
//! contains the loss of whole *processes*. A supervisor plans the grid,
//! round-robins it into shards ([`ShardPlan::shards`]), and grants each
//! shard a **lease**: a worker process, a deadline, and a heartbeat
//! obligation. Workers stream results back through a spool directory in
//! the versioned wire format of [`wire`]; the supervisor harvests them
//! cell by cell into the same journal the single-process fabric writes, so
//! crash-safety composes — kill the supervisor and a rerun resumes from
//! the journal; kill a worker and the supervisor re-dispatches only the
//! cells its partial response did not already deliver.
//!
//! ## The lease lifecycle (see [`lease`])
//!
//! ```text
//! dispatch ──► Leased ──(complete+valid response)──► Settled
//!    ▲            │
//!    │            ├─ crash (process exit, incomplete response)
//!    │            ├─ heartbeat lapse (no liveness)
//!    │            ├─ stall (liveness but no progress past deadline)
//!    │            ├─ invalid/stale response (corrupt, wrong echo, old
//!    │            │  protocol)
//!    │            └─ claim timeout (attach mode: nobody claimed the
//!    │               request — e.g. no attached worker hosts the suite)
//!    │            ▼
//!    └─(backoff)─ revoke: harvest valid prefix, kill child, gen += 1
//!                 … until the re-dispatch budget is spent, then the
//!                 remaining cells quarantine with FailCause::Worker
//! ```
//!
//! **First-valid-wins.** A cell's first decoded result — from any
//! generation — is journaled and final. Later results for the same cell
//! (duplicate lines from a chaos-mode worker, a revoked worker racing its
//! replacement) are discarded and counted in
//! [`obs::DistCounters::duplicate_cells`]; growth in a revoked
//! generation's response file is counted in `late_responses`. Nothing is
//! silently dropped: every absorbed failure increments a counter and
//! appends a [`obs::DistEvent`] line to `spool/events.jsonl`.
//!
//! **Determinism.** Worker assignment, lease timing, crashes, and
//! re-dispatch order never influence a cell's *output* — cells own their
//! seeded simulators, payloads round-trip bit-exactly, and the merged
//! report is assembled by input position. The merged report of a
//! distributed run is therefore byte-identical to the in-process
//! [`super::run_fabric`] of the same grid (pinned by
//! `tests/fabric_dist.rs`); wall-clock here decides only whether and where
//! a cell runs, the same contract as [`super::retry`].

pub mod lease;
pub mod wire;
pub mod worker;

pub use lease::{Lease, RevokeCause};
pub use worker::{attach_loop, parse_chaos, serve_cells, SuiteFn, SuiteRegistry};

use super::journal::{decode_payload, JournalCodec, JournalWriter};
use super::merge::{CellOutcome, QuarantineRecord};
use super::plan::{CellId, PlannedCell, ShardPlan};
use super::retry::{AttemptStats, FailCause};
use super::{
    assemble_report, env_parsed, replay_for_plan, write_artifact, FabricCell, FabricOptions,
    FabricReport, Replayed,
};
use crate::runner::RunSummary;
use crate::DistWorkerCli;
use obs::{CounterSnapshot, DistCounters, DistEvent};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use wire::{RequestCell, RequestHeader, ResponseExpect, ResponseFault, PROTOCOL_VERSION};

/// How the supervisor obtains worker processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpawnMode {
    /// Re-exec the current binary with `--dist-worker …` appended (plus the
    /// original scale flags, so the worker rebuilds the identical grid).
    /// The default for figure binaries.
    SelfExec,
    /// Spawn an explicit command (argv) per shard, `--dist-worker …`
    /// appended. Used by tests and the chaos harness.
    Command(Vec<String>),
    /// Spawn nothing: externally-started `sweep_worker` processes watch the
    /// spool and claim shards (`SWEEP_SPAWN=attach`).
    Attach,
}

/// Distributed execution knobs, layered on top of [`FabricOptions`].
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Worker-process count; 1 means "run in-process via `run_fabric`".
    pub workers: usize,
    /// Spool directory root; `None` uses a per-run temp directory. The
    /// supervisor works inside `<spool>/grid-<digest>/`, wiped at start.
    pub spool: Option<PathBuf>,
    /// Suite tag written into requests; attach-mode workers only claim
    /// suites they host.
    pub suite: String,
    /// Lease duration: how long a worker may go without completing a *new*
    /// cell before it is declared stalled. Renewed on every completed cell.
    pub lease: Duration,
    /// Interval workers append heartbeats at.
    pub heartbeat: Duration,
    /// Silence longer than this revokes the lease as a heartbeat lapse.
    pub heartbeat_timeout: Duration,
    /// Supervisor poll interval.
    pub poll: Duration,
    /// Attach mode only: how long a published request may sit unclaimed
    /// before the dispatch is given up (counted, re-dispatched, and — once
    /// the budget is spent — quarantined like any other revocation), so a
    /// suite no attached worker hosts surfaces as a partial report instead
    /// of a silent eternal poll. `None` waits forever; while waiting, the
    /// supervisor warns on stderr periodically either way.
    pub claim_timeout: Option<Duration>,
    /// Re-dispatch budget per shard; once spent, the shard's remaining
    /// cells quarantine with [`FailCause::Worker`].
    pub max_redispatch: u32,
    /// How worker processes are obtained.
    pub spawn: SpawnMode,
    /// Set when this process *is* a worker: [`run_dist`] serves the
    /// assigned shard and exits instead of supervising.
    pub task: Option<DistWorkerCli>,
}

impl DistOptions {
    /// Defaults for `suite`: single worker (in-process), 120 s lease,
    /// 200 ms heartbeats with a 3 s timeout, 25 ms poll, a 10 min claim
    /// timeout, 3 re-dispatches, self-exec spawning.
    pub fn new(suite: impl Into<String>) -> DistOptions {
        DistOptions {
            workers: 1,
            spool: None,
            suite: suite.into(),
            lease: Duration::from_secs(120),
            heartbeat: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            poll: Duration::from_millis(25),
            claim_timeout: Some(Duration::from_secs(600)),
            max_redispatch: 3,
            spawn: SpawnMode::SelfExec,
            task: None,
        }
    }

    /// Builds options from the parsed [`crate::Cli`] plus the env knobs:
    /// `SWEEP_LEASE_S` (fractional seconds without a new cell before a
    /// stall), `SWEEP_HEARTBEAT_MS`, `SWEEP_HEARTBEAT_TIMEOUT_MS`,
    /// `SWEEP_POLL_MS`, `SWEEP_CLAIM_TIMEOUT_S` (fractional seconds an
    /// attach-mode request may sit unclaimed; 0 waits forever),
    /// `SWEEP_REDISPATCH` (budget per shard), and `SWEEP_SPAWN=attach` to
    /// use externally-started `sweep_worker` processes. Unusable values
    /// warn and fall back.
    pub fn from_cli(cli: &crate::Cli, suite: impl Into<String>) -> DistOptions {
        let mut o = DistOptions::new(suite);
        o.workers = cli.workers();
        o.spool = cli.spool.clone();
        o.task = cli.dist.clone();
        if let Some(secs) = env_parsed::<f64>("SWEEP_LEASE_S", "a positive number of seconds") {
            if secs > 0.0 && secs.is_finite() {
                o.lease = Duration::from_secs_f64(secs);
            } else {
                eprintln!(
                    "warning: ignoring SWEEP_LEASE_S={secs}: expected a positive number of seconds"
                );
            }
        }
        if let Some(ms) = env_parsed::<u64>("SWEEP_HEARTBEAT_MS", "an interval in milliseconds") {
            o.heartbeat = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) =
            env_parsed::<u64>("SWEEP_HEARTBEAT_TIMEOUT_MS", "a timeout in milliseconds")
        {
            o.heartbeat_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = env_parsed::<u64>("SWEEP_POLL_MS", "an interval in milliseconds") {
            o.poll = Duration::from_millis(ms.max(1));
        }
        if let Some(secs) =
            env_parsed::<f64>("SWEEP_CLAIM_TIMEOUT_S", "a number of seconds (0 waits forever)")
        {
            if netsim::is_exactly_zero(secs) {
                o.claim_timeout = None;
            } else if secs > 0.0 && secs.is_finite() {
                o.claim_timeout = Some(Duration::from_secs_f64(secs));
            } else {
                eprintln!(
                    "warning: ignoring SWEEP_CLAIM_TIMEOUT_S={secs}: \
                     expected a non-negative number of seconds"
                );
            }
        }
        if let Some(n) = env_parsed::<u32>("SWEEP_REDISPATCH", "a re-dispatch budget") {
            o.max_redispatch = n;
        }
        if std::env::var("SWEEP_SPAWN").as_deref() == Ok("attach") {
            o.spawn = SpawnMode::Attach;
        }
        o
    }
}

/// Runs the grid across worker processes — or serves it, or falls through.
///
/// Exactly one of three things happens:
///
/// * `dist.task` is set (this process was spawned with `--dist-worker`):
///   the assigned shard is served and **the process exits** — the caller's
///   post-run printing belongs to the supervisor alone, so this never
///   returns.
/// * `dist.workers <= 1`: delegates to [`super::run_fabric`] — identical
///   semantics, no spool, no processes.
/// * Otherwise: supervises `dist.workers` shard leases to completion and
///   returns the merged report, byte-identical (outputs, seeds, labels,
///   counter snapshots) to the in-process run of the same grid.
///
/// # Errors
///
/// On planning/journal errors, an unusable spool, or spawn failures.
/// Worker crashes, stalls, and invalid responses are *contained* —
/// re-dispatched and ultimately quarantined — never returned as `Err`.
pub fn run_dist<T>(
    cells: Vec<FabricCell<T>>,
    opts: &FabricOptions,
    dist: &DistOptions,
) -> Result<FabricReport<T>, String>
where
    T: JournalCodec + Send + 'static,
{
    if let Some(task) = &dist.task {
        match worker::serve_cells(task, &cells) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("dist worker {}: {e}", task.id);
                std::process::exit(3);
            }
        }
    }
    if dist.workers <= 1 {
        return super::run_fabric(cells, opts);
    }
    supervise(cells, opts, dist)
}

/// One shard's dispatch bookkeeping across generations.
struct ShardRun<'p> {
    shard: usize,
    gen: u64,
    redispatches: u32,
    /// Cells still owed a result, by id.
    pending: BTreeMap<CellId, &'p PlannedCell>,
    /// Harvest cursors into the current generation's parsed response —
    /// lines before the cursor were already consumed on an earlier poll.
    harvest_done: usize,
    harvest_failed: usize,
    /// Cells accepted under the current generation (become "harvested" in
    /// the accounting if this generation is revoked).
    accepted_this_gen: Vec<CellId>,
    /// Revocation history, folded into the final quarantine message.
    causes: Vec<String>,
    /// Revoked generations still watched for late response growth:
    /// `(gen, response bytes at revocation)`.
    watch: Vec<(u64, u64)>,
    state: State,
}

enum State {
    /// Attach mode: request published, waiting for a worker to claim it.
    /// Tracks when the wait began and when it last warned, so an
    /// unclaimable request (no attached worker hosts the suite) surfaces
    /// on stderr and — past `claim_timeout` — as a counted give-up instead
    /// of a silent eternal poll.
    AwaitingClaim { since_ms: u64, warned_ms: u64 },
    /// Revoked; re-dispatch scheduled after bounded backoff.
    AwaitingRedispatch { at_ms: u64 },
    /// A worker owns the shard.
    Leased { lease: Lease, child: Option<Child> },
    /// Finished: completed, or quarantined after the budget was spent.
    Settled,
}

/// The supervisor's audit log (`spool/events.jsonl`).
struct EventLog {
    file: Option<std::fs::File>,
    t0: Instant,
}

impl EventLog {
    fn emit(&mut self, ev: &DistEvent) {
        if let Some(f) = &mut self.file {
            let mut line = String::new();
            ev.to_json(self.t0.elapsed().as_millis() as u64, &mut line);
            line.push('\n');
            // Audit-log IO failures must never take down the sweep.
            let _ = f.write_all(line.as_bytes()).and_then(|()| f.flush());
        }
    }
}

/// Everything the per-shard stepping functions share.
struct Supervisor<'a, T> {
    spool: PathBuf,
    grid: u64,
    opts: &'a FabricOptions,
    dist: &'a DistOptions,
    cells: &'a [FabricCell<T>],
    writer: Option<JournalWriter>,
    counters: DistCounters,
    events: EventLog,
    fresh: Vec<(usize, CellOutcome<T>, AttemptStats)>,
    lease_ms: u64,
    hb_timeout_ms: u64,
}

fn supervise<T>(
    cells: Vec<FabricCell<T>>,
    opts: &FabricOptions,
    dist: &DistOptions,
) -> Result<FabricReport<T>, String>
where
    T: JournalCodec + Send + 'static,
{
    let plan = ShardPlan::new(cells.iter().map(|c| (c.label.clone(), c.seed, c.config)))?;
    let cells_by_index: BTreeMap<usize, (String, u64)> =
        plan.cells().iter().map(|p| (p.index, (p.label.clone(), p.seed))).collect();
    let replayed: Replayed<T> = match &opts.journal {
        Some(path) => replay_for_plan(&plan, path)?,
        None => BTreeMap::new(),
    };
    let writer = match &opts.journal {
        Some(path) => Some(JournalWriter::append_to(path, plan.grid_id(), plan.len())?),
        None => None,
    };

    // A fresh per-grid spool: stale files from a previous (possibly killed)
    // supervisor must not masquerade as this run's responses — completed
    // work survives in the journal, which is the durable layer.
    let root = dist.spool.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("sweep-spool-{}", std::process::id()))
    });
    let spool = root.join(format!("grid-{:016x}", plan.grid_id()));
    let _ = std::fs::remove_dir_all(&spool);
    wire::init_spool(&spool, plan.grid_id(), plan.len(), dist.workers, &dist.suite)?;

    let mut sup = Supervisor {
        grid: plan.grid_id(),
        opts,
        dist,
        cells: &cells,
        writer,
        counters: DistCounters::default(),
        events: EventLog {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(wire::events_path(&spool))
                .ok(),
            t0: Instant::now(),
        },
        fresh: Vec::new(),
        lease_ms: dist.lease.as_millis() as u64,
        hb_timeout_ms: dist.heartbeat_timeout.as_millis() as u64,
        spool,
    };

    let shards = plan.shards(dist.workers)?;
    let mut runs: Vec<ShardRun<'_>> = Vec::with_capacity(shards.len());
    for (k, shard_cells) in shards.iter().enumerate() {
        let pending: BTreeMap<CellId, &PlannedCell> = shard_cells
            .iter()
            .filter(|p| !replayed.contains_key(&p.index))
            .map(|p| (p.id, *p))
            .collect();
        let mut run = ShardRun {
            shard: k,
            gen: 0,
            redispatches: 0,
            pending,
            harvest_done: 0,
            harvest_failed: 0,
            accepted_this_gen: Vec::new(),
            causes: Vec::new(),
            watch: Vec::new(),
            state: State::Settled,
        };
        if !run.pending.is_empty() {
            sup.counters.shards += 1;
            run.state = sup.dispatch(&run)?;
        }
        runs.push(run);
    }
    if !replayed.is_empty() {
        eprintln!("fabric: resumed {} of {} cell(s) from journal", replayed.len(), plan.len());
    }

    loop {
        let now = sup.now_ms();
        let mut active = 0usize;
        for run in &mut runs {
            sup.watch_late(run);
            let state = std::mem::replace(&mut run.state, State::Settled);
            run.state = match state {
                State::Settled => State::Settled,
                State::AwaitingClaim { since_ms, warned_ms } => {
                    match wire::read_claim(&sup.spool, run.shard, run.gen) {
                        Some(worker_id) => {
                            sup.counters.leases_granted += 1;
                            sup.events.emit(&DistEvent::LeaseGranted {
                                shard: run.shard,
                                gen: run.gen,
                                worker: worker_id.clone(),
                                cells: run.pending.len(),
                            });
                            State::Leased {
                                lease: Lease::grant(
                                    run.shard,
                                    run.gen,
                                    worker_id,
                                    now,
                                    sup.lease_ms,
                                ),
                                child: None,
                            }
                        }
                        None => sup.step_unclaimed(run, since_ms, warned_ms, now)?,
                    }
                }
                State::AwaitingRedispatch { at_ms } if now >= at_ms => sup.dispatch(run)?,
                s @ State::AwaitingRedispatch { .. } => s,
                State::Leased { lease, child } => sup.step_lease(run, lease, child, now)?,
            };
            if !matches!(run.state, State::Settled) {
                active += 1;
            }
        }
        if active == 0 {
            break;
        }
        std::thread::sleep(dist.poll);
    }

    if let Err(e) = wire::write_shutdown(&sup.spool) {
        eprintln!("warning: {e}");
    }
    let Supervisor { counters, fresh, .. } = sup;
    let mut report = assemble_report(&plan, replayed, fresh, &cells_by_index)?;
    report.counters.dist = counters;
    if !report.counters.dist.is_idle() {
        eprintln!("{}", report.counters.dist.render());
    }
    Ok(report)
}

impl<T> Supervisor<'_, T>
where
    T: JournalCodec + Send + 'static,
{
    fn now_ms(&self) -> u64 {
        self.events.t0.elapsed().as_millis() as u64
    }

    /// Publishes the request for `run`'s current generation and obtains a
    /// worker for it (spawn modes) or starts waiting for one (attach).
    fn dispatch(&mut self, run: &ShardRun<'_>) -> Result<State, String> {
        let header = RequestHeader {
            version: PROTOCOL_VERSION,
            grid: self.grid,
            shard: run.shard,
            gen: run.gen,
            suite: self.dist.suite.clone(),
            cells: run.pending.len(),
            deadline_ms: self.opts.deadline.map_or(0, |d| d.as_millis() as u64),
            max_attempts: self.opts.retry.attempts(),
            backoff_ms: self.opts.retry.base_backoff.as_millis() as u64,
            max_backoff_ms: self.opts.retry.max_backoff.as_millis() as u64,
            heartbeat_ms: self.dist.heartbeat.as_millis() as u64,
        };
        let req_cells: Vec<RequestCell> = run
            .pending
            .values()
            .map(|p| RequestCell { id: p.id, index: p.index, label: p.label.clone(), seed: p.seed })
            .collect();
        wire::write_request(&self.spool, &header, &req_cells)?;
        if self.dist.spawn == SpawnMode::Attach {
            let now = self.now_ms();
            return Ok(State::AwaitingClaim { since_ms: now, warned_ms: now });
        }
        let worker_id = format!("w{}-g{}", run.shard, run.gen);
        let child = spawn_worker(&self.dist.spawn, &self.spool, run.shard, run.gen, &worker_id)?;
        self.counters.workers_spawned += 1;
        self.counters.leases_granted += 1;
        self.events.emit(&DistEvent::LeaseGranted {
            shard: run.shard,
            gen: run.gen,
            worker: worker_id.clone(),
            cells: run.pending.len(),
        });
        Ok(State::Leased {
            lease: Lease::grant(run.shard, run.gen, worker_id, self.now_ms(), self.lease_ms),
            child: Some(child),
        })
    }

    /// One poll step for an attach-mode dispatch nobody has claimed yet:
    /// warn periodically (an unclaimable suite must be visible, not a
    /// silent hang), and past `claim_timeout` give the dispatch up through
    /// the normal revocation path — counted, re-dispatched (a worker may
    /// attach late), and ultimately quarantined once the budget is spent.
    fn step_unclaimed(
        &mut self,
        run: &mut ShardRun<'_>,
        since_ms: u64,
        mut warned_ms: u64,
        now: u64,
    ) -> Result<State, String> {
        const CLAIM_WARN_MS: u64 = 5_000;
        let waited = now.saturating_sub(since_ms);
        if let Some(timeout) = self.dist.claim_timeout {
            let timeout_ms = timeout.as_millis() as u64;
            if waited > timeout_ms {
                self.counters.claim_timeouts += 1;
                let detail = format!(
                    "no attached worker claimed shard {} g{} (suite {:?}) within {timeout_ms} ms \
                     — is a sweep_worker hosting this suite watching {}?",
                    run.shard,
                    run.gen,
                    self.dist.suite,
                    self.spool.display()
                );
                return self.revoke(run, None, "claim_timeout", detail, now);
            }
        }
        if now.saturating_sub(warned_ms) >= CLAIM_WARN_MS {
            warned_ms = now;
            eprintln!(
                "warning: shard {} g{} (suite {:?}) unclaimed for {:.1} s — \
                 is a sweep_worker hosting this suite watching {}?",
                run.shard,
                run.gen,
                self.dist.suite,
                waited as f64 / 1e3,
                self.spool.display()
            );
        }
        Ok(State::AwaitingClaim { since_ms, warned_ms })
    }

    /// Checks revoked generations for post-revocation response growth: a
    /// late worker still writing. The work is discarded (its cells were
    /// re-dispatched); the activity is counted so nothing vanishes quietly.
    fn watch_late(&mut self, run: &mut ShardRun<'_>) {
        let spool = self.spool.clone();
        let shard = run.shard;
        let counters = &mut self.counters;
        let events = &mut self.events;
        run.watch.retain(|&(gen, bytes)| {
            let len =
                std::fs::metadata(wire::response_path(&spool, shard, gen)).map_or(0, |m| m.len());
            if len > bytes {
                counters.late_responses += 1;
                events.emit(&DistEvent::LateResponse { shard, gen });
                false
            } else {
                true
            }
        });
    }

    /// One poll step for a leased shard: read the streamed response,
    /// harvest new lines first-valid-wins, then judge the lease. Ordering
    /// matters — completion is checked before expiry, so a worker that
    /// finishes exactly at its deadline wins.
    fn step_lease(
        &mut self,
        run: &mut ShardRun<'_>,
        mut lease: Lease,
        mut child: Option<Child>,
        now: u64,
    ) -> Result<State, String> {
        let resp_path = wire::response_path(&self.spool, run.shard, run.gen);
        let expect = ResponseExpect { grid: self.grid, shard: run.shard, gen: run.gen };
        let mut text = std::fs::read_to_string(&resp_path).unwrap_or_default();
        let mut exited = None;
        if let Some(c) = child.as_mut() {
            if let Ok(Some(status)) = c.try_wait() {
                exited = Some(status);
                // The exit can race our read of the final footer flush —
                // re-read so a clean finish is never misread as a crash.
                text = std::fs::read_to_string(&resp_path).unwrap_or_default();
            }
        }
        let parsed = wire::parse_response(&text, &expect);
        // Scoped to this dispatch: an attached worker's heartbeat file
        // accumulates lines (with per-request seq restarts) across every
        // request it serves, and only this generation's lines prove it is
        // alive *here*.
        if let Some(seq) = wire::read_heartbeat_seq(&self.spool, &lease.worker, run.shard, run.gen)
        {
            lease.observe_heartbeat(seq, now);
        }
        let harvested = self.harvest(run, &parsed);
        lease.observe_progress(parsed.done.len() + parsed.failed.len(), now, self.lease_ms);
        if let Err(detail) = harvested {
            self.counters.invalid_responses += 1;
            return self.revoke(run, child, "invalid_response", detail, now);
        }
        if let Some(fault) = &parsed.fault {
            match fault {
                ResponseFault::Stale(_) => self.counters.stale_protocol += 1,
                ResponseFault::Invalid(_) => self.counters.invalid_responses += 1,
            }
            let detail = fault.detail().to_owned();
            return self.revoke(run, child, fault.as_str(), detail, now);
        }
        if parsed.complete {
            if run.pending.is_empty() {
                if let Some(mut c) = child {
                    let _ = c.wait();
                }
                self.events.emit(&DistEvent::ResponseAccepted {
                    shard: run.shard,
                    gen: run.gen,
                    done: parsed.done.len(),
                    failed: parsed.failed.len(),
                });
                return Ok(State::Settled);
            }
            self.counters.invalid_responses += 1;
            let detail = format!("complete response left {} cell(s) unanswered", run.pending.len());
            return self.revoke(run, child, "invalid_response", detail, now);
        }
        if let Some(status) = exited {
            self.counters.worker_crashes += 1;
            let detail = format!("worker exited ({status}) with an incomplete response");
            return self.revoke(run, child, "crash", detail, now);
        }
        if let Some(cause) = lease.assess(now, self.hb_timeout_ms) {
            let detail = match cause {
                RevokeCause::Stall => {
                    self.counters.stalls += 1;
                    format!(
                        "heartbeats alive (seq {}) but no new cell before the lease deadline \
                         ({} of {} cells done)",
                        lease.heartbeat_seq,
                        lease.progress,
                        lease.progress + run.pending.len()
                    )
                }
                RevokeCause::HeartbeatLapse => {
                    self.counters.heartbeat_lapses += 1;
                    format!("no heartbeat for over {} ms", self.hb_timeout_ms)
                }
                // `assess` only reports liveness causes; crash and
                // invalid-response revokes are raised directly at their
                // detection sites above, so these arms never count.
                RevokeCause::Crash | RevokeCause::InvalidResponse => {
                    format!("unexpected {} verdict from lease assessment", cause.as_str())
                }
            };
            return self.revoke(run, child, cause.as_str(), detail, now);
        }
        Ok(State::Leased { lease, child })
    }

    /// Consumes new response lines past the harvest cursors. First valid
    /// result per cell wins — it is journaled immediately (crash-safety for
    /// the *supervisor*), later duplicates are counted and dropped.
    ///
    /// # Errors
    ///
    /// On an undecodable payload — the caller revokes the lease.
    fn harvest(
        &mut self,
        run: &mut ShardRun<'_>,
        parsed: &wire::ParsedResponse,
    ) -> Result<(), String> {
        for dl in &parsed.done[run.harvest_done..] {
            run.harvest_done += 1;
            let Some(&planned) = run.pending.get(&dl.id) else {
                self.counters.duplicate_cells += 1;
                self.events.emit(&DistEvent::DuplicateCell {
                    shard: run.shard,
                    gen: run.gen,
                    cell: dl.id.to_string(),
                });
                continue;
            };
            let (output, counters) = decode_payload::<(T, CounterSnapshot)>(&dl.payload)
                .map_err(|e| format!("payload for cell {} ({:?}): {e}", dl.id, dl.label))?;
            if let Some(w) = &mut self.writer {
                if let Err(e) = w.record_done(
                    planned.id,
                    &planned.label,
                    planned.seed,
                    dl.attempts,
                    &dl.payload,
                ) {
                    eprintln!("warning: {e}");
                }
            }
            self.fresh.push((
                planned.index,
                CellOutcome::Done {
                    summary: RunSummary {
                        label: planned.label.clone(),
                        seed: planned.seed,
                        output,
                        counters,
                    },
                    attempts: dl.attempts,
                    replayed: false,
                },
                AttemptStats { attempts: dl.attempts, panics: 0, deadline_kills: 0 },
            ));
            run.pending.remove(&dl.id);
            run.accepted_this_gen.push(dl.id);
        }
        for fl in &parsed.failed[run.harvest_failed..] {
            run.harvest_failed += 1;
            let Some(&planned) = run.pending.get(&fl.id) else {
                self.counters.duplicate_cells += 1;
                self.events.emit(&DistEvent::DuplicateCell {
                    shard: run.shard,
                    gen: run.gen,
                    cell: fl.id.to_string(),
                });
                continue;
            };
            let cause = match fl.cause.as_str() {
                "deadline" => FailCause::Deadline,
                "worker" => FailCause::Worker,
                _ => FailCause::Panic,
            };
            self.quarantine(
                planned,
                fl.attempts,
                cause,
                fl.message.clone(),
                AttemptStats {
                    attempts: fl.attempts,
                    panics: fl.panics,
                    deadline_kills: fl.deadline_kills,
                },
            );
            run.pending.remove(&fl.id);
            run.accepted_this_gen.push(fl.id);
        }
        Ok(())
    }

    /// Quarantines one cell: artifact, journal line, report entry — the
    /// exact single-process semantics, fed from the wire.
    fn quarantine(
        &mut self,
        planned: &PlannedCell,
        attempts: u32,
        cause: FailCause,
        message: String,
        stats: AttemptStats,
    ) {
        let artifact = self.opts.artifacts.as_deref().and_then(|dir| {
            write_artifact(dir, planned, self.cells[planned.index].repro.as_ref(), cause, &message)
        });
        let record = QuarantineRecord {
            id: planned.id,
            label: planned.label.clone(),
            seed: planned.seed,
            attempts,
            cause,
            message,
            artifact,
        };
        eprintln!("fabric: {record}");
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.record_quarantine(
                record.id,
                &record.label,
                record.seed,
                record.attempts,
                cause.as_str(),
                &record.message,
            ) {
                eprintln!("warning: {e}");
            }
        }
        self.fresh.push((planned.index, CellOutcome::Quarantined(record), stats));
    }

    /// Revokes the current lease: kill the worker (if ours to kill), log
    /// the harvested salvage, and either re-dispatch the remainder after
    /// bounded backoff or — budget spent — quarantine it.
    fn revoke(
        &mut self,
        run: &mut ShardRun<'_>,
        child: Option<Child>,
        reason: &'static str,
        detail: String,
        now: u64,
    ) -> Result<State, String> {
        if let Some(mut c) = child {
            let _ = c.kill();
            let _ = c.wait();
        }
        // The late-response baseline is the file's on-disk length *after*
        // the worker is dead — a line it flushed between our last read and
        // the kill was written before the watch began, not after it.
        let resp_bytes = std::fs::metadata(wire::response_path(&self.spool, run.shard, run.gen))
            .map_or(0, |m| m.len());
        self.events.emit(&DistEvent::LeaseRevoked {
            shard: run.shard,
            gen: run.gen,
            reason,
            detail: detail.clone(),
        });
        self.counters.harvested_cells += run.accepted_this_gen.len() as u64;
        for id in run.accepted_this_gen.drain(..) {
            self.events.emit(&DistEvent::CellHarvested {
                shard: run.shard,
                gen: run.gen,
                cell: id.to_string(),
            });
        }
        run.causes.push(format!("g{}: {reason} ({detail})", run.gen));
        run.watch.push((run.gen, resp_bytes));
        if run.pending.is_empty() {
            // Everything was salvaged from the partial response (e.g. a
            // crash between the last cell and the footer): nothing to redo.
            return Ok(State::Settled);
        }
        if run.redispatches >= self.dist.max_redispatch {
            let attempts = run.redispatches + 1;
            let message = format!(
                "shard {} re-dispatch budget exhausted after {attempts} generation(s): {}",
                run.shard,
                run.causes.join("; ")
            );
            let remaining: Vec<&PlannedCell> = run.pending.values().copied().collect();
            for planned in remaining {
                self.quarantine(
                    planned,
                    attempts,
                    FailCause::Worker,
                    message.clone(),
                    AttemptStats::default(),
                );
            }
            run.pending.clear();
            return Ok(State::Settled);
        }
        run.redispatches += 1;
        self.counters.redispatches += 1;
        run.gen += 1;
        run.harvest_done = 0;
        run.harvest_failed = 0;
        Ok(State::AwaitingRedispatch {
            at_ms: now + redispatch_backoff(self.opts, run.redispatches),
        })
    }
}

/// Bounded exponential backoff before the `nth` re-dispatch (1-based),
/// shaped by the fabric's retry policy: `base · 2^(n-1)` capped at the
/// policy ceiling.
fn redispatch_backoff(opts: &FabricOptions, nth: u32) -> u64 {
    let exp = nth.saturating_sub(1).min(20);
    let backoff = opts.retry.base_backoff.saturating_mul(1 << exp).min(opts.retry.max_backoff);
    backoff.as_millis() as u64
}

/// Spawns one worker process for `(shard, gen)`.
fn spawn_worker(
    mode: &SpawnMode,
    spool: &Path,
    shard: usize,
    gen: u64,
    worker_id: &str,
) -> Result<Child, String> {
    let mut cmd = match mode {
        SpawnMode::SelfExec => {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot resolve current executable: {e}"))?;
            let mut c = Command::new(exe);
            c.args(passthrough_args(std::env::args().skip(1)));
            c
        }
        SpawnMode::Command(argv) => {
            let (prog, rest) = argv.split_first().ok_or("worker command must not be empty")?;
            let mut c = Command::new(prog);
            c.args(rest);
            c
        }
        SpawnMode::Attach => return Err("attach mode spawns no workers".to_owned()),
    };
    cmd.arg("--dist-worker")
        .arg(spool)
        .arg("--dist-shard")
        .arg(shard.to_string())
        .arg("--dist-gen")
        .arg(gen.to_string())
        .arg("--dist-id")
        .arg(worker_id)
        // Workers write results to the spool and diagnostics to stderr;
        // stdout stays clean for the supervisor's own table.
        .stdout(Stdio::null());
    cmd.spawn().map_err(|e| format!("cannot spawn worker {worker_id}: {e}"))
}

/// The supervisor's own argv minus the orchestration flags: what a
/// self-exec worker inherits. `--workers`, `--spool`, `--journal`, and
/// `--jobs` are the supervisor's business — a worker re-supervising, or
/// double-journaling, would be a fork bomb with extra steps.
fn passthrough_args(args: impl Iterator<Item = String>) -> Vec<String> {
    const VALUED: [&str; 4] = ["--workers", "--spool", "--journal", "--jobs"];
    let mut out = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if VALUED.contains(&a.as_str()) {
            let _ = args.next();
            continue;
        }
        if VALUED.iter().any(|f| a.starts_with(f) && a[f.len()..].starts_with('=')) {
            continue;
        }
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::RetryPolicy;
    use super::*;

    #[test]
    fn passthrough_strips_orchestration_flags_only() {
        let args = [
            "--full",
            "--workers",
            "3",
            "--trace",
            "t",
            "--jobs=2",
            "--spool",
            "s",
            "--journal=j.jsonl",
        ];
        let kept = passthrough_args(args.iter().map(|s| (*s).to_owned()));
        assert_eq!(kept, vec!["--full".to_owned(), "--trace".to_owned(), "t".to_owned()]);
        // A trailing orchestration flag with no value is still stripped.
        let kept = passthrough_args(["--full", "--workers"].iter().map(|s| (*s).to_owned()));
        assert_eq!(kept, vec!["--full".to_owned()]);
    }

    #[test]
    fn redispatch_backoff_doubles_and_caps() {
        let opts = FabricOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(35),
            },
            ..FabricOptions::default()
        };
        assert_eq!(redispatch_backoff(&opts, 1), 10);
        assert_eq!(redispatch_backoff(&opts, 2), 20);
        assert_eq!(redispatch_backoff(&opts, 3), 35, "capped at the policy ceiling");
        assert_eq!(redispatch_backoff(&opts, 21), 35);
    }

    #[test]
    fn dist_options_defaults_are_single_process() {
        let o = DistOptions::new("walk");
        assert_eq!(o.workers, 1);
        assert_eq!(o.spawn, SpawnMode::SelfExec);
        assert!(o.task.is_none());
        assert!(o.lease > o.heartbeat_timeout, "a stall must outlive a heartbeat lapse window");
    }
}
