//! The worker side of the distributed fabric: claim or receive a shard,
//! execute its cells with the **same per-cell containment policy** the
//! single-process fabric uses, and stream results back through the spool.
//!
//! Two ways a process ends up here:
//!
//! * **Self-exec** ([`serve_cells`]): a figure binary spawned by its own
//!   supervisor with `--dist-worker … --dist-shard K --dist-gen G
//!   --dist-id ID`. The binary rebuilds its full deterministic cell vector
//!   exactly as the supervisor did, so the grid digest in the request must
//!   match its own plan — a mismatch means supervisor and worker binaries
//!   are out of step, and the worker refuses rather than compute wrong
//!   cells.
//! * **Attach** ([`attach_loop`]): a generic `sweep_worker` process points
//!   at a spool and claims request files for suites it hosts (a
//!   [`SuiteRegistry`] maps suite name → cell function). Claims are
//!   O_EXCL-exclusive, so any number of workers can watch one spool.
//!
//! Either way, each cell runs under [`retry::run_with_retries`] with the
//! deadline/retry policy shipped in the request header — a cell that would
//! be quarantined by the in-process fabric fails the same way here, as a
//! streamed `failed` line the supervisor turns into the identical
//! quarantine record. Results are flushed line by line; a heartbeat thread
//! appends liveness proof on the side.
//!
//! ## Chaos injection
//!
//! The `SWEEP_DIST_CHAOS` environment variable arms one failure for the
//! worker serving a named shard, **generation 0 only** — re-dispatched
//! generations always run clean, so every drill converges instead of
//! crash-looping. Format: `mode[:n]@shard`, e.g. `kill:1@0` (SIGKILL self
//! after 1 completed cell while serving shard 0). Modes: `kill:n`,
//! `stall:n` (heartbeats continue, no further progress until the dispatch
//! is superseded or the sweep shuts down), `truncate` (exit
//! without the end footer), `corrupt:n` (write a garbage line), `dup`
//! (write every done line twice), `stale` (respond with protocol version
//! 0). Used by the `fabric_chaos` harness and CI; never armed in normal
//! runs.

use super::super::journal::{JournalCodec, JournalValue};
use super::super::plan::ShardPlan;
use super::super::retry::{self, CellFn, RetryPolicy};
use super::super::FabricCell;
use super::wire::{self, RequestCell, RequestHeader, ResponseWriter, PROTOCOL_VERSION};
use crate::DistWorkerCli;
use obs::CounterSnapshot;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One armed chaos failure (see the module doc for the grammar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// SIGKILL self after `n` completed cells.
    Kill(usize),
    /// Stop making progress after `n` cells; keep heartbeating.
    Stall(usize),
    /// Exit cleanly without writing the end footer.
    Truncate,
    /// Write a garbage line after `n` cells, then continue.
    Corrupt(usize),
    /// Write every done line twice (duplicate responses for one cell).
    Dup,
    /// Write the response header with protocol version 0.
    Stale,
}

/// A chaos arming: the mode plus the shard whose gen-0 worker it hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chaos {
    /// The armed failure.
    pub mode: ChaosMode,
    /// Only the worker serving this shard is affected.
    pub shard: usize,
}

/// Parses a `SWEEP_DIST_CHAOS` spec (`mode[:n]@shard`). `None` on anything
/// unparseable — chaos is a test tool, and a typo must not take down a real
/// sweep; it just stays unarmed.
pub fn parse_chaos(spec: &str) -> Option<Chaos> {
    let (mode_part, shard_part) = spec.trim().split_once('@')?;
    let shard = shard_part.parse::<usize>().ok()?;
    let (name, count) = match mode_part.split_once(':') {
        Some((name, n)) => (name, Some(n.parse::<usize>().ok()?)),
        None => (mode_part, None),
    };
    let mode = match (name, count) {
        ("kill", Some(n)) => ChaosMode::Kill(n),
        ("stall", Some(n)) => ChaosMode::Stall(n),
        ("truncate", None) => ChaosMode::Truncate,
        ("corrupt", Some(n)) => ChaosMode::Corrupt(n),
        ("dup", None) => ChaosMode::Dup,
        ("stale", None) => ChaosMode::Stale,
        _ => return None,
    };
    Some(Chaos { mode, shard })
}

/// The chaos armed for `(shard, gen)` via `SWEEP_DIST_CHAOS`, if any.
/// Generation 0 only: a re-dispatched shard always runs clean.
fn armed_chaos(shard: usize, gen: u64) -> Option<Chaos> {
    if gen != 0 {
        return None;
    }
    let spec = std::env::var("SWEEP_DIST_CHAOS").ok()?;
    parse_chaos(&spec).filter(|c| c.shard == shard)
}

/// SIGKILL this process: the crash drill. `kill -9` cannot be caught, so
/// the response file is left exactly as the last flush left it.
fn kill_self_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").arg("-9").arg(&pid).status();
    // Unreachable on any POSIX system; abort as a fallback.
    std::process::abort();
}

/// A liveness thread handle: appends one heartbeat line per interval until
/// dropped/stopped.
struct HeartbeatThread {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatThread {
    fn start(
        spool: &Path,
        worker: &str,
        shard: usize,
        gen: u64,
        interval: Duration,
    ) -> HeartbeatThread {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let spool = spool.to_path_buf();
        let worker = worker.to_owned();
        let handle = std::thread::Builder::new()
            .name(format!("dist-heartbeat-{worker}"))
            .spawn(move || {
                let mut seq = 0u64;
                while !flag.load(Ordering::Relaxed) {
                    seq += 1;
                    if let Err(e) = wire::append_heartbeat(&spool, &worker, shard, gen, seq) {
                        eprintln!("warning: {e}");
                    }
                    std::thread::sleep(interval);
                }
            })
            .ok();
        HeartbeatThread { stop, handle }
    }
}

impl Drop for HeartbeatThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The output of one served cell before it hits the wire: the encoded
/// output payload (without counters) plus the counter snapshot, matching
/// the journal's `(output, counters)` payload layout.
type ServedCell = CellFn<Vec<JournalValue>>;

/// Serves one request with per-cell closures supplied by `make`, applying
/// the armed chaos. The shared core of both self-exec and attach serving.
fn serve_request(
    spool: &Path,
    worker_id: &str,
    header: &RequestHeader,
    cells: &[RequestCell],
    make: &dyn Fn(&RequestCell) -> Result<ServedCell, String>,
) -> Result<(), String> {
    let chaos = armed_chaos(header.shard, header.gen);
    let version = match chaos.map(|c| c.mode) {
        Some(ChaosMode::Stale) => 0,
        _ => PROTOCOL_VERSION,
    };
    let mut resp =
        ResponseWriter::create(spool, header.shard, header.gen, header.grid, worker_id, version)?;
    let _heartbeat = HeartbeatThread::start(
        spool,
        worker_id,
        header.shard,
        header.gen,
        Duration::from_millis(header.heartbeat_ms.max(1)),
    );
    let deadline = (header.deadline_ms > 0).then(|| Duration::from_millis(header.deadline_ms));
    let policy = RetryPolicy {
        max_attempts: header.max_attempts,
        base_backoff: Duration::from_millis(header.backoff_ms),
        max_backoff: Duration::from_millis(header.max_backoff_ms),
    };
    for (served, cell) in cells.iter().enumerate() {
        match chaos.map(|c| c.mode) {
            Some(ChaosMode::Kill(n)) if served == n => kill_self_hard(),
            Some(ChaosMode::Stall(n)) if served == n => loop {
                // Alive (the heartbeat thread keeps appending) but never
                // progressing: the supervisor must diagnose a stall, not a
                // heartbeat lapse. A self-exec staller is killed by its
                // supervisor at revocation; an attach-mode staller gets no
                // such kill, so once this dispatch is superseded (the
                // re-dispatched request exists) or the sweep shuts down,
                // stop stalling — the drill converges instead of wedging
                // the external worker process forever.
                if wire::shutdown_requested(spool)
                    || wire::request_path(spool, header.shard, header.gen + 1).exists()
                {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(50));
            },
            Some(ChaosMode::Corrupt(n)) if served == n => {
                resp.append("{\"dist\":\"done\",CHAOS-INTERIOR-GARBAGE\n")?;
            }
            _ => {}
        }
        let run = make(cell)?;
        let (result, stats) = retry::run_with_retries(&cell.label, &run, deadline, &policy);
        match result {
            Ok((mut payload, counters)) => {
                counters.encode(&mut payload);
                resp.record_done(cell.id, &cell.label, cell.seed, stats.attempts, &payload)?;
                if chaos.map(|c| c.mode) == Some(ChaosMode::Dup) {
                    resp.record_done(cell.id, &cell.label, cell.seed, stats.attempts, &payload)?;
                }
            }
            Err((cause, message)) => {
                resp.record_failed(
                    cell.id,
                    &cell.label,
                    cell.seed,
                    stats,
                    cause.as_str(),
                    &message,
                )?;
            }
        }
    }
    if chaos.map(|c| c.mode) == Some(ChaosMode::Truncate) {
        // Exit without the footer: to the supervisor this response is
        // truncated, indistinguishable from a crash after the last flush.
        return Ok(());
    }
    resp.finish()
}

/// Serves a self-exec worker assignment: reads the request for
/// `(task.shard, task.gen)`, verifies the grid digest against this binary's
/// own plan of `cells` (a mismatch means supervisor/worker version skew),
/// and streams results.
///
/// # Errors
///
/// On an unreadable/stale request, a grid mismatch, cell ids the plan does
/// not contain, or filesystem failures. The supervisor sees any of these as
/// a crashed lease and re-dispatches.
pub fn serve_cells<T>(task: &DistWorkerCli, cells: &[FabricCell<T>]) -> Result<(), String>
where
    T: JournalCodec + Send + 'static,
{
    let (header, requested) =
        wire::read_request(&wire::request_path(&task.spool, task.shard, task.gen))?;
    let plan = ShardPlan::new(cells.iter().map(|c| (c.label.clone(), c.seed, c.config)))?;
    if plan.grid_id() != header.grid {
        return Err(format!(
            "request is for grid {:016x}, this binary plans grid {:016x}; \
             supervisor and worker builds are out of step",
            header.grid,
            plan.grid_id()
        ));
    }
    let by_id: BTreeMap<_, _> = cells.iter().map(|c| (c.id(), c)).collect();
    serve_request(&task.spool, &task.id, &header, &requested, &|req| {
        let cell = by_id
            .get(&req.id)
            .ok_or_else(|| format!("request names cell {} not in this grid", req.id))?;
        let run = Arc::clone(&cell.run);
        Ok(Arc::new(move || {
            let (out, counters) = run();
            let mut payload = Vec::new();
            out.encode(&mut payload);
            (payload, counters)
        }) as ServedCell)
    })
}

/// A named cell function an attached worker hosts: `(label, seed)` → the
/// encoded output payload plus counters. Must produce byte-identical
/// payloads to the in-process cell of the same suite — the merged report is
/// pinned to be identical either way.
pub type SuiteFn = Arc<dyn Fn(&str, u64) -> (Vec<JournalValue>, CounterSnapshot) + Send + Sync>;

/// The suites an attached worker can serve, by name. Requests for unknown
/// suites are left unclaimed for some other worker.
#[derive(Clone, Default)]
pub struct SuiteRegistry {
    suites: BTreeMap<String, SuiteFn>,
}

impl SuiteRegistry {
    /// An empty registry.
    pub fn new() -> SuiteRegistry {
        SuiteRegistry::default()
    }

    /// Registers `name`, replacing any previous entry.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&str, u64) -> (Vec<JournalValue>, CounterSnapshot) + Send + Sync + 'static,
    ) {
        self.suites.insert(name.into(), Arc::new(f));
    }

    /// Looks a suite up.
    pub fn get(&self, name: &str) -> Option<&SuiteFn> {
        self.suites.get(name)
    }

    /// The hosted suite names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.suites.keys().map(String::as_str)
    }
}

/// Parses a request filename (`shard-K.gG.jsonl`) into `(shard, gen)`.
fn parse_request_filename(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".jsonl")?;
    let (shard, gen) = rest.split_once(".g")?;
    Some((shard.parse().ok()?, gen.parse().ok()?))
}

/// Attach-mode worker loop: watch the spool, claim request files whose
/// suite this registry hosts (O_EXCL — exactly one worker wins each), serve
/// them, and exit once the supervisor drops the shutdown marker. Returns
/// the number of shard dispatches served.
///
/// # Errors
///
/// On filesystem failures; per-request serve errors are reported on stderr
/// and the loop continues (the supervisor re-dispatches).
pub fn attach_loop(
    spool: &Path,
    worker_id: &str,
    suites: &SuiteRegistry,
    poll: Duration,
) -> Result<usize, String> {
    let requests = spool.join("requests");
    let mut served = 0usize;
    loop {
        if wire::shutdown_requested(spool) {
            return Ok(served);
        }
        let Ok(entries) = std::fs::read_dir(&requests) else {
            // The supervisor may not have initialised the spool yet.
            std::thread::sleep(poll);
            continue;
        };
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            let Some((shard, gen)) = parse_request_filename(&name) else { continue };
            if wire::read_claim(spool, shard, gen).is_some() {
                continue;
            }
            let (header, cells) = match wire::read_request(&wire::request_path(spool, shard, gen)) {
                Ok(parsed) => parsed,
                Err(e) => {
                    eprintln!("warning: skipping request {name}: {e}");
                    continue;
                }
            };
            let Some(suite) = suites.get(&header.suite).cloned() else { continue };
            if !wire::try_claim(spool, shard, gen, worker_id)? {
                continue; // someone else won the race
            }
            let result = serve_request(spool, worker_id, &header, &cells, &|req| {
                let suite = Arc::clone(&suite);
                let label = req.label.clone();
                let seed = req.seed;
                Ok(Arc::new(move || suite(&label, seed)) as ServedCell)
            });
            if let Err(e) = result {
                eprintln!("warning: serving shard {shard} g{gen} failed: {e}");
            } else {
                served += 1;
            }
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_specs_parse_and_reject_typos() {
        assert_eq!(parse_chaos("kill:2@1"), Some(Chaos { mode: ChaosMode::Kill(2), shard: 1 }));
        assert_eq!(parse_chaos("stall:0@0"), Some(Chaos { mode: ChaosMode::Stall(0), shard: 0 }));
        assert_eq!(parse_chaos("truncate@2"), Some(Chaos { mode: ChaosMode::Truncate, shard: 2 }));
        assert_eq!(
            parse_chaos("corrupt:1@0"),
            Some(Chaos { mode: ChaosMode::Corrupt(1), shard: 0 })
        );
        assert_eq!(parse_chaos("dup@0"), Some(Chaos { mode: ChaosMode::Dup, shard: 0 }));
        assert_eq!(parse_chaos("stale@1"), Some(Chaos { mode: ChaosMode::Stale, shard: 1 }));
        // Typos disarm rather than crash a real sweep.
        assert_eq!(parse_chaos("kill@1"), None, "kill requires a count");
        assert_eq!(parse_chaos("truncate:1@2"), None, "truncate takes no count");
        assert_eq!(parse_chaos("kill:x@1"), None);
        assert_eq!(parse_chaos("kill:1"), None, "shard is mandatory");
        assert_eq!(parse_chaos(""), None);
    }

    #[test]
    fn request_filenames_parse() {
        assert_eq!(parse_request_filename("shard-3.g1.jsonl"), Some((3, 1)));
        assert_eq!(parse_request_filename("shard-0.g0.jsonl"), Some((0, 0)));
        assert_eq!(parse_request_filename("shard-0.g0.jsonl.tmp"), None);
        assert_eq!(parse_request_filename("manifest.jsonl"), None);
    }
}
